#!/bin/sh
# Repo-wide checks: formatting, vet, build, tests (with the race
# detector). CI runs the same steps; run this locally before pushing.
#
# QUICK=1 passes -short to go test, which skips the slow fault-sweep
# tests (internal/exp TestFaultSweepFull); the default runs everything,
# including the cross-backend conformance suites under -race.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Thread-count invariance: the epoch runner must produce byte-identical
# per-batch sample digests at Threads=1,2,8 (the test runs all three and
# diffs the digest streams; -race also sweeps the fan-out for races).
# Also part of the full suite below — run first so a determinism break
# fails loudly and early.
go test -race -run 'TestEpochThreadInvariance|TestEpochScalingInvariance' ./internal/core ./internal/exp

if [ "${QUICK:-0}" = "1" ]; then
    go test -race -short ./...
else
    go test -race ./...
fi
