#!/bin/sh
# Repo-wide checks: formatting, vet, build, tests (with the race
# detector). CI runs the same steps; run this locally before pushing.
#
# QUICK=1 passes -short to go test, which skips the slow fault-sweep
# tests (internal/exp TestFaultSweepFull); the default runs everything,
# including the cross-backend conformance suites under -race.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Thread-count invariance: the epoch runner must produce byte-identical
# per-batch sample digests at Threads=1,2,8 (the test runs all three and
# diffs the digest streams; -race also sweeps the fan-out for races),
# and every sampling strategy must hold the same contract at
# Threads=1,2,4. Shard conformance rides in the same gate: router
# responses over 2 and 4 shards (including injected shard faults) must
# be digest-identical to a single-node run. Also part of the full suite
# below — run first so a determinism break fails loudly and early.
go test -race -run 'TestEpochThreadInvariance|TestEpochScalingInvariance|TestStrategyThreadInvariance' ./internal/core ./internal/exp
go test -race -run 'TestRouterMatchesSingleNode|TestRouterShardFaultStillIdentical' ./internal/shard
go test -race -run 'TestShardConformance' ./internal/serve
# Training rides in the same gate: after 3 epochs the loss curve and
# the final model weights must be BIT-identical at 1 vs 4 worker
# threads (fixed-order gradient reduction over the in-order batch
# stream; DESIGN.md §13).
go test -race -run 'TestTrainThreadInvariance|TestTrainOverlappedMatchesSerialized' ./internal/train

if [ "${QUICK:-0}" = "1" ]; then
    go test -race -short ./...
else
    go test -race ./...
fi

# io_uring knob-ablation sweep: entries/s, syscalls-per-batch, and
# device bytes per fast-path knob combination (fixed buffers, registered
# files, SQPOLL, O_DIRECT, bounded depth), with byte identity enforced
# across every combination. Written as benchdata/BENCH_uring.json so
# runs are diffable across commits; QUICK=1 keeps only the plain+fixed
# smoke pair.
uring_quick=""
if [ "${QUICK:-0}" = "1" ]; then
    uring_quick="-bench-uring-quick"
fi
go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 \
    -threads 4 -targets 2048 -batch 256 \
    -bench-uring benchdata/BENCH_uring.json $uring_quick >/dev/null
echo "wrote benchdata/BENCH_uring.json"

# Feature-store conformance + ablation (DESIGN.md §10): sweep the
# hot-node feature cache budget on a temp-generated featureful graph.
# The sweep itself enforces the contract — byte-identical digest
# stream at every budget, monotone non-increasing device feature
# bytes, exactly zero at an unlimited budget — and writes
# benchdata/BENCH_features.json. QUICK=1 keeps the budget endpoints.
feat_quick=""
if [ "${QUICK:-0}" = "1" ]; then
    feat_quick="-bench-features-quick"
fi
go run ./cmd/epoch -nodes 20000 -edges 300000 -feature-dim 16 \
    -threads 4 -targets 2048 -batch 256 \
    -bench-features benchdata/BENCH_features.json $feat_quick >/dev/null
echo "wrote benchdata/BENCH_features.json"

# Sampling-strategy sweep (DESIGN.md §11): run the same epoch workload
# under each strategy (uniform, weighted, walk), enforcing per-strategy
# digest identity between 1-thread and multi-thread runs before
# emitting the point. Written as benchdata/BENCH_strategy.json; QUICK=1
# keeps the uniform+walk pair (skips the alias-table build).
strat_quick=""
if [ "${QUICK:-0}" = "1" ]; then
    strat_quick="-bench-strategy-quick"
fi
go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 \
    -threads 4 -targets 2048 -batch 256 \
    -bench-strategy benchdata/BENCH_strategy.json $strat_quick >/dev/null
echo "wrote benchdata/BENCH_strategy.json"

# Training pipeline sweep (DESIGN.md §13): GraphSAGE training on the
# checked-in labeled dataset through {overlapped, serialized} ×
# {feature cache off, full}. The sweep enforces bit-identical final
# weights and loss curves across all four points, and (full mode) that
# the overlapped pipeline's end-to-end throughput strictly beats the
# serialized reference. Written as benchdata/BENCH_train.json; QUICK=1
# drops to a 1-epoch smoke run (determinism checks only — a 1-epoch
# run has no stable timing signal).
train_flags="-train-epochs 3"
if [ "${QUICK:-0}" = "1" ]; then
    train_flags="-train-epochs 1 -bench-train-quick"
fi
go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 \
    -threads 4 -targets 8192 -batch 256 \
    -bench-train benchdata/BENCH_train.json $train_flags >/dev/null
echo "wrote benchdata/BENCH_train.json"

# Bench summary: epoch throughput (entries/s, bytes/s) and hot-neighbor
# cache hit rate at budgets 0 and 64 MiB on the checked-in dataset,
# written as benchdata/BENCH_epoch.json so runs are diffable across
# commits. Skipped with QUICK=1.
if [ "${QUICK:-0}" != "1" ]; then
    go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 \
        -threads 4 -targets 2048 -batch 256 \
        -bench-json benchdata/BENCH_epoch.json >/dev/null
    echo "wrote benchdata/BENCH_epoch.json"

    # Serving load smoke: the closed-loop offered-load sweep against an
    # in-process server (throughput, p50/p99, rejection rate per client
    # count). CI uploads the JSON as an artifact.
    go run ./cmd/serve -data benchdata/bench/ogbn-papers-div20000 \
        -backend pool -threads 4 -batch 256 \
        -bench-json benchdata/BENCH_serve.json -bench-quick >/dev/null
    echo "wrote benchdata/BENCH_serve.json"

    # Shard sweep (DESIGN.md §12): partition the dataset at 1/2/4
    # shards, digest-check every count against the single-node baseline
    # (a mismatch aborts the sweep), then measure routed throughput.
    # QUICK=1 skips the sweep — the conformance tests in the gate above
    # still cover digest identity.
    go run ./cmd/serve -data benchdata/bench/ogbn-papers-div20000 \
        -backend pool -threads 4 -batch 256 \
        -bench-shard-json benchdata/BENCH_shard.json >/dev/null
    echo "wrote benchdata/BENCH_shard.json"
fi
