#!/bin/sh
# Repo-wide checks: formatting, vet, build, tests (with the race
# detector). CI runs exactly this script; run it locally before
# pushing.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
