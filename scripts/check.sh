#!/bin/sh
# Repo-wide checks: formatting, vet, build, tests (with the race
# detector). CI runs the same steps; run this locally before pushing.
#
# QUICK=1 passes -short to go test, which skips the slow fault-sweep
# tests (internal/exp TestFaultSweepFull); the default runs everything,
# including the cross-backend conformance suites under -race.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
if [ "${QUICK:-0}" = "1" ]; then
    go test -race -short ./...
else
    go test -race ./...
fi
