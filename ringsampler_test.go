package ringsampler

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestEndToEnd drives the public API exactly as the package doc shows:
// generate, open, sample.
func TestEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if err := GenerateDataset(dir, "rmat", 2_000, 30_000, 3); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	cfg := DefaultConfig()
	cfg.Seed = 7
	s, err := NewSampler(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	batch, err := w.SampleBatch([]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Layers) != len(cfg.Fanouts) {
		t.Fatalf("got %d layers, want %d", len(batch.Layers), len(cfg.Fanouts))
	}
	if batch.TotalSampled() == 0 {
		t.Fatal("end-to-end sample was empty")
	}
}

// TestGenerateDeterministicBytes: generating the same dataset twice
// produces byte-identical files — the property the checked-in
// benchmark data relies on.
func TestGenerateDeterministicBytes(t *testing.T) {
	root := t.TempDir()
	a, b := filepath.Join(root, "a"), filepath.Join(root, "b")
	if err := GenerateDataset(a, "rmat", 1_000, 10_000, 42); err != nil {
		t.Fatal(err)
	}
	if err := GenerateDataset(b, "rmat", 1_000, 10_000, 42); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"edges.dat", "offsets.idx", "manifest.json"} {
		fa, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fa, fb) {
			t.Fatalf("%s differs between identical generations", name)
		}
	}
}

func TestGenerateRejectsUnknownKind(t *testing.T) {
	if err := GenerateDataset(t.TempDir(), "smallworld", 10, 10, 1); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}
