package ringsampler

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestEndToEnd drives the public API exactly as the package doc shows:
// generate, open, sample.
func TestEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if err := GenerateDataset(dir, "rmat", 2_000, 30_000, 3); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	cfg := DefaultConfig()
	cfg.Seed = 7
	s, err := NewSampler(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	batch, err := w.SampleBatch([]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Layers) != len(cfg.Fanouts) {
		t.Fatalf("got %d layers, want %d", len(batch.Layers), len(cfg.Fanouts))
	}
	if batch.TotalSampled() == 0 {
		t.Fatal("end-to-end sample was empty")
	}
}

// TestGenerateDeterministicBytes: generating the same dataset twice
// produces byte-identical files — the property the checked-in
// benchmark data relies on.
func TestGenerateDeterministicBytes(t *testing.T) {
	root := t.TempDir()
	a, b := filepath.Join(root, "a"), filepath.Join(root, "b")
	if err := GenerateDataset(a, "rmat", 1_000, 10_000, 42); err != nil {
		t.Fatal(err)
	}
	if err := GenerateDataset(b, "rmat", 1_000, 10_000, 42); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"edges.dat", "offsets.idx", "manifest.json"} {
		fa, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fa, fb) {
			t.Fatalf("%s differs between identical generations", name)
		}
	}
}

// TestRunEpochPublicAPI drives the root epoch entry point: batches
// arrive in order through the handler and the digests are identical at
// different thread counts.
func TestRunEpochPublicAPI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if err := GenerateDataset(dir, "rmat", 2_000, 30_000, 3); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	targets := make([]uint32, 200)
	for i := range targets {
		targets[i] = uint32(i * 7 % 2_000)
	}
	run := func(threads int) *EpochStats {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.BatchSize = 32
		cfg.Threads = threads
		s, err := NewSampler(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		st, err := RunEpoch(s, targets, func(i int, b *Batch) error {
			if i != next {
				t.Fatalf("batch %d delivered out of order (want %d)", i, next)
			}
			next++
			if b.TotalSampled() == 0 {
				t.Fatalf("batch %d sampled nothing", i)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != st.Batches {
			t.Fatalf("handler saw %d batches, want %d", next, st.Batches)
		}
		return st
	}
	a, b := run(1), run(4)
	if len(a.Digests) != len(b.Digests) {
		t.Fatalf("batch counts differ: %d vs %d", len(a.Digests), len(b.Digests))
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			t.Fatalf("batch %d digest differs between 1 and 4 threads", i)
		}
	}
}

func TestGenerateRejectsUnknownKind(t *testing.T) {
	if err := GenerateDataset(t.TempDir(), "smallworld", 10, 10, 1); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}
