// Benchmarks mirroring the paper's evaluation, one per table/figure.
// Each benchmark runs its experiment at a reduced scale per iteration
// and reports the modeled epoch time as the "paper-facing" metric
// (modeled-s/op) next to Go's wall-clock numbers. For full-resolution
// tables, run cmd/benchrunner instead.
package ringsampler

import (
	"fmt"
	"path/filepath"
	"testing"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/exp"
	"ringsampler/internal/simrun"
	"ringsampler/internal/uring"
)

// benchDivisor scales the paper's datasets down far enough for tight
// benchmark loops; benchOpts matches.
const benchDivisor = 20_000

func benchOpts() exp.Options {
	return exp.Options{
		Divisor:   benchDivisor,
		Targets:   512,
		BatchSize: 128,
		Threads:   8,
	}
}

// benchData prepares (once) and returns the benchmark dataset root.
var benchRoot = filepath.Join("benchdata", "bench")

func prepared(b *testing.B, name string) *exp.Prepared {
	b.Helper()
	p, err := exp.Prepare(benchRoot, name, benchDivisor, false)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1Preprocess measures the full preprocessing pipeline
// (generate -> external sort -> edge file + offset index) behind
// Table 1's datasets.
func BenchmarkTable1Preprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), "t1")
		if err := GenerateDataset(dir, "rmat", 5550, 80_000, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Systems runs one modeled epoch per system on the scaled
// ogbn-papers dataset (Figure 4's leftmost group).
func BenchmarkFig4Systems(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, sys := range exp.Fig4Systems {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				res := exp.RunSystem(ds, sys, benchOpts(), 0, core.DefaultFanouts)
				if res.Err != nil && !res.OOM {
					b.Fatal(res.Err)
				}
				modeled = res.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s/op")
		})
	}
}

// BenchmarkFig5Memory runs RingSampler's modeled epoch across the
// Figure 5 budgets.
func BenchmarkFig5Memory(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, gb := range exp.Fig5Budgets {
		label := "unlimited"
		budget := int64(0)
		if gb > 0 {
			label = fmt.Sprintf("%gGB", gb)
			budget = simrun.GBytes(gb)
		}
		b.Run(label, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				res := exp.RunSystem(ds, "RingSampler", benchOpts(), budget, core.DefaultFanouts)
				if res.Err != nil && !res.OOM {
					b.Fatal(res.Err)
				}
				modeled = res.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s/op")
		})
	}
}

// BenchmarkFig6Inference runs the on-demand, batch-size-1 sampling
// workload behind the Figure 6 latency CDF.
func BenchmarkFig6Inference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6(benchRoot, benchOpts(), 500)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Milestones) != 4 {
			b.Fatal("missing milestones")
		}
		b.ReportMetric(res.Milestones[3].TimeSec, "modeled-p99-s")
	}
}

// BenchmarkFig7Hops sweeps the sampling depth (Figure 7) for
// RingSampler.
func BenchmarkFig7Hops(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, fanouts := range exp.Fig7Fanouts {
		fanouts := fanouts
		b.Run(fmt.Sprintf("%dhop", len(fanouts)), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				res := exp.RunSystem(ds, "RingSampler", benchOpts(), 0, fanouts)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				modeled = res.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s/op")
		})
	}
}

// BenchmarkFig8Threads sweeps the modeled thread count (Figure 8).
func BenchmarkFig8Threads(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, threads := range []int{1, 4, 16, 64} {
		threads := threads
		b.Run(fmt.Sprintf("%dthreads", threads), func(b *testing.B) {
			o := benchOpts()
			o.Threads = threads
			var modeled float64
			for i := 0; i < b.N; i++ {
				res := exp.RunSystem(ds, "RingSampler", o, 0, core.DefaultFanouts)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				modeled = res.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s/op")
		})
	}
}

// BenchmarkRealEpochThreads measures the real engine's parallel epoch
// runner across thread counts — the real-I/O companion to the modeled
// BenchmarkFig8Threads. Output is thread-count-invariant by
// construction, so what varies across sub-benchmarks is purely
// throughput.
func BenchmarkRealEpochThreads(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "epoch")
	if err := GenerateDataset(dir, "rmat", 20_000, 300_000, 3); err != nil {
		b.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	targets := make([]uint32, 2048)
	for i := range targets {
		targets[i] = uint32(i * 37 % 20_000)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		b.Run(fmt.Sprintf("%dthreads", threads), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.BatchSize = 256
			cfg.Threads = threads
			s, err := NewSampler(ds, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var eps float64
			for i := 0; i < b.N; i++ {
				st, err := RunEpoch(s, targets, nil)
				if err != nil {
					b.Fatal(err)
				}
				eps = st.EntriesPerSec
			}
			b.ReportMetric(eps, "entries/s")
		})
	}
}

// BenchmarkAblationPipeline quantifies the async-vs-sync pipeline
// design choice (Figure 3b) under a tight budget.
func BenchmarkAblationPipeline(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, async := range []bool{true, false} {
		async := async
		name := "async"
		if !async {
			name = "sync"
		}
		b.Run(name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				o := benchOpts()
				cfg := core.SimConfig{
					Config:       core.DefaultConfig(),
					ScaleDivisor: benchDivisor,
					BudgetBytes:  simrun.GBytes(1),
					Targets:      o.Targets,
					WorkloadSeed: 1,
				}
				cfg.Config.BatchSize = o.BatchSize
				cfg.Config.Threads = o.Threads
				cfg.Config.AsyncPipeline = async
				res := core.RunSim(ds, device.NVMe(), cfg)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				modeled = res.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s/op")
		})
	}
}

// BenchmarkAblationOffset quantifies offset-based sampling against
// full-neighborhood fetching (the paper's core I/O-reduction claim).
func BenchmarkAblationOffset(b *testing.B) {
	p := prepared(b, "ogbn-papers")
	ds, err := p.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for _, offset := range []bool{true, false} {
		offset := offset
		name := "offset"
		if !offset {
			name = "full-fetch"
		}
		b.Run(name, func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				o := benchOpts()
				cfg := core.SimConfig{
					Config:       core.DefaultConfig(),
					ScaleDivisor: benchDivisor,
					BudgetBytes:  simrun.GBytes(1),
					Targets:      o.Targets,
					WorkloadSeed: 1,
				}
				cfg.Config.BatchSize = o.BatchSize
				cfg.Config.Threads = o.Threads
				cfg.Config.OffsetSampling = offset
				res := core.RunSim(ds, device.NVMe(), cfg)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				bytes = float64(res.DeviceBytes)
			}
			b.ReportMetric(bytes/(1<<20), "device-MB/op")
		})
	}
}

// BenchmarkRealSampleBatch measures the real engine end to end (real
// files, real rings) on each available backend.
func BenchmarkRealSampleBatch(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "real")
	if err := GenerateDataset(dir, "rmat", 20_000, 300_000, 3); err != nil {
		b.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()

	backends := []uring.Backend{uring.BackendPool}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	}
	targets := make([]uint32, 256)
	for i := range targets {
		targets[i] = uint32(i * 37 % 20_000)
	}
	for _, be := range backends {
		be := be
		b.Run(string(be), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Seed = 7
			s, err := core.New(ds, cfg, be)
			if err != nil {
				b.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ResetTimer()
			var sampled int64
			for i := 0; i < b.N; i++ {
				bs, err := w.SampleBatch(targets)
				if err != nil {
					b.Fatal(err)
				}
				sampled = bs.TotalSampled()
			}
			b.ReportMetric(float64(sampled), "entries/op")
		})
	}
}
