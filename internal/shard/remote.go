package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ringsampler/internal/core"
)

// Remote is the over-HTTP Engine: a client for the shard endpoints a
// serve.Server mounts when its dataset is sharded (POST
// /v1/shard/layer, POST /v1/shard/features, GET /v1/shard/info). It
// carries no graph state — the shard's storage, caches, and workers
// live in the remote process — which is what makes it interchangeable
// with Local behind the Engine seam.
type Remote struct {
	base string
	hc   *http.Client
	info Info
}

// NewRemote resolves the shard's identity from baseURL (e.g.
// "http://shard0:8080") and returns an engine speaking the shard
// protocol to it. hc nil uses http.DefaultClient; pass a client with
// timeouts in production.
func NewRemote(ctx context.Context, baseURL string, hc *http.Client) (*Remote, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	r := &Remote{base: strings.TrimRight(baseURL, "/"), hc: hc}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/shard/info", nil)
	if err != nil {
		return nil, err
	}
	if err := r.do(req, &r.info); err != nil {
		return nil, fmt.Errorf("shard: resolve %s: %w", baseURL, err)
	}
	return r, nil
}

// Info implements Engine (resolved once at construction).
func (r *Remote) Info() Info { return r.info }

// do runs req and decodes the JSON reply into out, surfacing non-2xx
// statuses with the server's error text.
func (r *Remote) do(req *http.Request, out any) error {
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

// post sends body as JSON and decodes the reply into out.
func (r *Remote) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.do(req, out)
}

// SampleLayer implements Engine over POST /v1/shard/layer.
func (r *Remote) SampleLayer(ctx context.Context, frontier []uint32, p core.LayerParams) (*core.Layer, uint64, error) {
	var resp LayerResponse
	err := r.post(ctx, "/v1/shard/layer", LayerRequest{
		Frontier: frontier,
		Layer:    p.Layer,
		Fanout:   p.Fanout,
		Strategy: p.Strategy,
		RNGState: EncodeState(p.RNGState),
	}, &resp)
	if err != nil {
		return nil, 0, err
	}
	state, err := ParseState(resp.RNGState)
	if err != nil {
		return nil, 0, err
	}
	return &core.Layer{Targets: resp.Targets, Starts: resp.Starts, Neighbors: resp.Neighbors}, state, nil
}

// Features implements Engine over POST /v1/shard/features.
func (r *Remote) Features(ctx context.Context, nodes []uint32) ([]byte, error) {
	var resp FeaturesResponse
	if err := r.post(ctx, "/v1/shard/features", FeaturesRequest{Nodes: nodes}, &resp); err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Stats implements Engine. A remote shard's ring counters live in its
// own process's /metrics; the client reports zeros rather than
// double-counting.
func (r *Remote) Stats() core.IOStats { return core.IOStats{} }

// Close implements Engine.
func (r *Remote) Close() error {
	r.hc.CloseIdleConnections()
	return nil
}
