package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// buildGraph generates the test graph once per test and returns its dir.
func buildGraph(t *testing.T, featureDim int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "shardtest", "rmat", 2000, 30_000, 11, gen.Options{FeatureDim: featureDim}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Fanouts = []int{6, 4}
	cfg.BatchSize = 128
	cfg.Threads = 1
	// Non-zero budgets so the shard-restricted caches and alias tables
	// are exercised, not just the raw ring path.
	cfg.CacheBudgetBytes = 64 << 10
	cfg.FeatureCacheBudgetBytes = 64 << 10
	return cfg
}

// openLocals partitions dir into n shards and returns Local engines
// over them (and the shard datasets, closed via t.Cleanup).
func openLocals(t *testing.T, dir string, n int, cfg core.Config) []Engine {
	t.Helper()
	dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "parts"), n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]Engine, n)
	for i, sdir := range dirs {
		sds, err := storage.Open(sdir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sds.Close() })
		scfg := cfg
		if !sds.HasFeatures() {
			scfg.FeatureCacheBudgetBytes = 0
		}
		eng, err := NewLocal(sds, scfg, uring.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		engines[i] = eng
	}
	return engines
}

// TestRouterMatchesSingleNode is the package-level determinism proof:
// for every strategy × features × shard count, the router-assembled
// chunks are Digest-identical (and structurally identical) to a single
// worker's batches over the unsharded dataset.
func TestRouterMatchesSingleNode(t *testing.T) {
	dir := buildGraph(t, 4)
	cfg := testConfig()

	full, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	s, err := core.New(full, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A deterministic target mix: hubs, tails, duplicates, zero-degree.
	rng := sample.NewRNG(99)
	targets := make([]uint32, 300)
	for i := range targets {
		targets[i] = rng.Uint32n(uint32(full.NumNodes()))
	}
	targets[7] = targets[8] // duplicate
	const seed = 12345

	for _, shards := range []int{1, 2, 4} {
		engines := openLocals(t, dir, shards, cfg)
		rt, err := NewRouter(engines)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		for _, strategy := range []string{core.StrategyUniform, core.StrategyWeighted, core.StrategyWalk} {
			for _, features := range []bool{false, true} {
				name := fmt.Sprintf("%dshards/%s/feat=%v", shards, strategy, features)
				for ci := 0; ci*cfg.BatchSize < len(targets); ci++ {
					lo := ci * cfg.BatchSize
					hi := min(lo+cfg.BatchSize, len(targets))
					chunkSeed := sample.Mix(seed, uint64(ci))
					want, err := w.SampleBatchOpts(targets[lo:hi], core.BatchOpts{
						Fanouts: cfg.Fanouts, Seed: chunkSeed, Features: features, Strategy: strategy,
					})
					if err != nil {
						t.Fatalf("%s chunk %d reference: %v", name, ci, err)
					}
					got, err := rt.SampleChunk(context.Background(), targets[lo:hi], cfg.Fanouts, chunkSeed, strategy, features)
					if err != nil {
						t.Fatalf("%s chunk %d router: %v", name, ci, err)
					}
					if g, w := got.Digest(), want.Digest(); g != w {
						t.Fatalf("%s chunk %d digest %016x != single-node %016x", name, ci, g, w)
					}
				}
			}
		}
	}
}

// TestRouterShardFaultStillIdentical injects a fault-wrapped ring on
// ONE shard (short reads, transient errnos, reordered completions) and
// asserts the router's output digests stay identical to the clean
// single-node run — the retry machinery absorbs the faults below the
// determinism contract.
func TestRouterShardFaultStillIdentical(t *testing.T) {
	dir := buildGraph(t, 4)
	cfg := testConfig()

	full, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	s, err := core.New(full, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "parts"), 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]Engine, 2)
	for i, sdir := range dirs {
		sds, err := storage.Open(sdir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sds.Close() })
		scfg := cfg
		if i == 1 {
			scfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
				return uring.NewFault(r, uring.FaultPlan{
					Seed: 5, ShortReadRate: 0.2, TransientRate: 0.1, DelayRate: 0.2, MaxDelay: 4,
				})
			}
		}
		eng, err := NewLocal(sds, scfg, uring.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		engines[i] = eng
	}
	rt, err := NewRouter(engines)
	if err != nil {
		t.Fatal(err)
	}

	rng := sample.NewRNG(42)
	targets := make([]uint32, 128)
	for i := range targets {
		targets[i] = rng.Uint32n(uint32(full.NumNodes()))
	}
	for _, strategy := range []string{core.StrategyUniform, core.StrategyWeighted, core.StrategyWalk} {
		want, err := w.SampleBatchOpts(targets, core.BatchOpts{
			Fanouts: cfg.Fanouts, Seed: 777, Features: true, Strategy: strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.SampleChunk(context.Background(), targets, cfg.Fanouts, 777, strategy, true)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if g, wd := got.Digest(), want.Digest(); g != wd {
			t.Fatalf("%s: faulty-shard digest %016x != clean single-node %016x", strategy, g, wd)
		}
	}
}

// TestNewRouterRejectsBadPartitions: gaps, duplicates, and
// wrong-declared positions are configuration errors caught up front.
func TestNewRouterRejectsBadPartitions(t *testing.T) {
	dir := buildGraph(t, 0)
	cfg := testConfig()
	cfg.FeatureCacheBudgetBytes = 0

	dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "parts"), 2)
	if err != nil {
		t.Fatal(err)
	}
	open := func(sdir string) Engine {
		sds, err := storage.Open(sdir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sds.Close() })
		eng, err := NewLocal(sds, cfg, uring.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}
	e0, e1 := open(dirs[0]), open(dirs[1])
	if _, err := NewRouter([]Engine{e0}); err == nil {
		t.Fatal("router accepted a partition with a missing shard")
	}
	if _, err := NewRouter([]Engine{e0, e0}); err == nil {
		t.Fatal("router accepted a duplicated shard")
	}
	if rt, err := NewRouter([]Engine{e1, e0}); err != nil {
		// Order-independence: engines may be listed in any order.
		t.Fatalf("router rejected out-of-order engine list: %v", err)
	} else if rt.Shards() != 2 {
		t.Fatalf("router has %d shards, want 2", rt.Shards())
	}

	if _, err := NewRouter(nil); err == nil {
		t.Fatal("router accepted zero engines")
	}
}
