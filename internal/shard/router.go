package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
)

// Router is the stateless scatter/gather front of a partition: it holds
// no graph bytes and no RNG — only the shard map — so any number of
// router replicas can front the same shards. Per chunk it seeds the
// draw stream exactly like a single node (Mix(seed, chunk) is applied
// by the caller, as in serve), scatters each layer's full frontier to
// the shards owning at least one frontier node, cross-checks the
// replicas' replayed layout, overlays owned spans, rebuilds the next
// frontier, and threads the RNG state forward.
type Router struct {
	engines []Engine // sorted by owned range
	infos   []Info
	// his[i] = infos[i].Hi, for binary-searching a node's owner.
	his        []int64
	numNodes   int64
	numEdges   int64
	featureDim int
}

// NewRouter validates that the engines form exactly one partition of
// the graph — contiguous owned ranges tiling [0, NumNodes), consistent
// global counts and feature width, each shard in its declared position
// — and returns a router over them. The router does not take ownership
// of the engines until Close is called.
func NewRouter(engines []Engine) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one engine")
	}
	r := &Router{engines: append([]Engine(nil), engines...)}
	sort.SliceStable(r.engines, func(i, j int) bool {
		return r.engines[i].Info().Lo < r.engines[j].Info().Lo
	})
	first := r.engines[0].Info()
	r.numNodes, r.numEdges, r.featureDim = first.NumNodes, first.NumEdges, first.FeatureDim
	next := int64(0)
	for i, e := range r.engines {
		info := e.Info()
		if info.NumNodes != r.numNodes || info.NumEdges != r.numEdges {
			return nil, fmt.Errorf("shard: engine %d global counts %d/%d disagree with %d/%d — shards of different graphs?",
				i, info.NumNodes, info.NumEdges, r.numNodes, r.numEdges)
		}
		if info.FeatureDim != r.featureDim {
			return nil, fmt.Errorf("shard: engine %d feature dim %d disagrees with %d", i, info.FeatureDim, r.featureDim)
		}
		if info.Total != len(r.engines) || info.Index != i {
			return nil, fmt.Errorf("shard: engine at position %d declares shard %d/%d, router has %d engines",
				i, info.Index, info.Total, len(r.engines))
		}
		if info.Lo != next || info.Hi < info.Lo {
			return nil, fmt.Errorf("shard: engine %d owns [%d,%d), want start %d (gap or overlap)", i, info.Lo, info.Hi, next)
		}
		next = info.Hi
		r.infos = append(r.infos, info)
		r.his = append(r.his, info.Hi)
	}
	if next != r.numNodes {
		return nil, fmt.Errorf("shard: partition covers [0,%d), graph has %d nodes", next, r.numNodes)
	}
	return r, nil
}

// NumNodes returns the global node count.
func (r *Router) NumNodes() int64 { return r.numNodes }

// NumEdges returns the global edge count.
func (r *Router) NumEdges() int64 { return r.numEdges }

// FeatureDim returns the per-node feature width (0: no features).
func (r *Router) FeatureDim() int { return r.featureDim }

// HasFeatures reports whether the partition serves features.
func (r *Router) HasFeatures() bool { return r.featureDim > 0 }

// Shards returns the number of engines.
func (r *Router) Shards() int { return len(r.engines) }

// Stats sums the engines' I/O counters (zeros from Remote engines).
func (r *Router) Stats() core.IOStats {
	var st core.IOStats
	for _, e := range r.engines {
		st.Add(e.Stats())
	}
	return st
}

// Close closes every engine.
func (r *Router) Close() error {
	var err error
	for _, e := range r.engines {
		if cerr := e.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// owner returns the index of the engine owning node v.
func (r *Router) owner(v uint32) int {
	return sort.Search(len(r.his), func(i int) bool { return r.his[i] > int64(v) })
}

// SampleChunk samples one chunk — the router-side equivalent of a
// worker's SampleBatchOpts with per-chunk seed already mixed in by the
// caller. The returned batch is byte-identical (Digest-equal) to the
// single-node batch for the same (targets, fanouts, seed, strategy,
// features).
func (r *Router) SampleChunk(ctx context.Context, targets []uint32, fanouts []int, seed uint64, strategy string, features bool) (*core.Batch, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("shard: sample chunk needs at least one fanout layer")
	}
	if strategy == "" {
		// Pin the default here rather than trusting each shard's engine
		// default: the shards and the frontier rule must agree on one
		// name.
		strategy = core.StrategyUniform
	}
	if !core.ValidStrategy(strategy) {
		return nil, fmt.Errorf("shard: unknown strategy %q", strategy)
	}
	for _, v := range targets {
		if int64(v) >= r.numNodes {
			return nil, fmt.Errorf("shard: target %d outside [0,%d)", v, r.numNodes)
		}
	}
	state := core.ChunkSeedState(seed)
	batch := &core.Batch{Layers: make([]core.Layer, len(fanouts))}
	frontier := append([]uint32(nil), targets...)
	for li, fanout := range fanouts {
		layer, nextState, err := r.sampleLayer(ctx, frontier, core.LayerParams{
			Layer: li, Fanout: fanout, Strategy: strategy, RNGState: state,
		})
		if err != nil {
			return nil, err
		}
		batch.Layers[li] = *layer
		state = nextState
		frontier, err = core.NextFrontierFor(strategy, layer, frontier)
		if err != nil {
			return nil, err
		}
	}
	if features {
		if r.featureDim == 0 {
			return nil, fmt.Errorf("shard: partition has no feature files")
		}
		nodes := core.FeatNodeUnion(batch)
		feats, err := r.fetchFeatures(ctx, nodes)
		if err != nil {
			return nil, err
		}
		batch.FeatNodes = nodes
		batch.Features = feats
		batch.FeatureDim = r.featureDim
	}
	return batch, nil
}

// callEngine runs fn once, retrying a single time on a non-context
// error: a faulty shard ring that broke a worker (the engine retires it
// and leases a fresh one), or a transient transport blip to a remote
// shard, heals without failing the request.
func callEngine(ctx context.Context, fn func() error) error {
	err := fn()
	if err == nil || ctx.Err() != nil {
		return err
	}
	return fn()
}

// sampleLayer scatters one layer's frontier to the shards owning at
// least one frontier node, verifies the replicas replayed the same
// stream, and overlays each node's span from its owner.
func (r *Router) sampleLayer(ctx context.Context, frontier []uint32, p core.LayerParams) (*core.Layer, uint64, error) {
	if len(frontier) == 0 {
		// An all-zero-degree frontier consumes no draws and samples
		// nothing; matches the worker's empty-layer layout.
		return &core.Layer{Starts: []int64{0}, Neighbors: []uint32{}}, p.RNGState, nil
	}
	owners := make([]int, len(frontier))
	involved := make([]bool, len(r.engines))
	for i, v := range frontier {
		owners[i] = r.owner(v)
		involved[owners[i]] = true
	}
	type result struct {
		layer *core.Layer
		state uint64
	}
	results := make([]*result, len(r.engines))
	errs := make([]error, len(r.engines))
	var wg sync.WaitGroup
	for ei := range r.engines {
		if !involved[ei] {
			continue
		}
		wg.Add(1)
		go func(ei int) {
			defer wg.Done()
			errs[ei] = callEngine(ctx, func() error {
				layer, state, err := r.engines[ei].SampleLayer(ctx, frontier, p)
				if err != nil {
					return err
				}
				results[ei] = &result{layer: layer, state: state}
				return nil
			})
		}(ei)
	}
	wg.Wait()
	var base *result
	for ei, res := range results {
		if errs[ei] != nil {
			return nil, 0, fmt.Errorf("shard %d layer %d: %w", ei, p.Layer, errs[ei])
		}
		if res == nil {
			continue
		}
		if base == nil {
			base = res
			continue
		}
		// Replay cross-check: every shard consumed the same stream over
		// the same frontier, so layouts and end states must agree bit for
		// bit. A mismatch means a corrupt shard (wrong offset index), not
		// a recoverable fault.
		if res.state != base.state || len(res.layer.Starts) != len(base.layer.Starts) {
			return nil, 0, fmt.Errorf("shard %d layer %d replay diverged (state %016x vs %016x)", ei, p.Layer, res.state, base.state)
		}
		for i := range base.layer.Starts {
			if res.layer.Starts[i] != base.layer.Starts[i] {
				return nil, 0, fmt.Errorf("shard %d layer %d replay diverged at starts[%d]", ei, p.Layer, i)
			}
		}
	}
	// Overlay: node i's span comes from its owning shard's replica.
	merged := base.layer
	out := &core.Layer{
		Targets:   merged.Targets,
		Starts:    merged.Starts,
		Neighbors: make([]uint32, len(merged.Neighbors)),
	}
	for i := range frontier {
		res := results[owners[i]]
		copy(out.Neighbors[out.Starts[i]:out.Starts[i+1]], res.layer.Neighbors[out.Starts[i]:out.Starts[i+1]])
	}
	return out, base.state, nil
}

// fetchFeatures scatters a sorted, deduplicated node set to owners and
// concatenates the returned records. Shards own contiguous node ranges
// and the set is ascending, so each shard's nodes form one contiguous
// segment and concatenation in shard order restores input order.
func (r *Router) fetchFeatures(ctx context.Context, nodes []uint32) ([]byte, error) {
	stride := int64(r.featureDim) * storage.FeatureElemBytes
	type seg struct {
		ei   int
		a, b int // nodes[a:b]
	}
	var segs []seg
	for a := 0; a < len(nodes); {
		ei := r.owner(nodes[a])
		b := a + 1
		for b < len(nodes) && int64(nodes[b]) < r.infos[ei].Hi {
			b++
		}
		segs = append(segs, seg{ei: ei, a: a, b: b})
		a = b
	}
	out := make([]byte, int64(len(nodes))*stride)
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for si, sg := range segs {
		wg.Add(1)
		go func(si int, sg seg) {
			defer wg.Done()
			errs[si] = callEngine(ctx, func() error {
				feats, err := r.engines[sg.ei].Features(ctx, nodes[sg.a:sg.b])
				if err != nil {
					return err
				}
				if int64(len(feats)) != int64(sg.b-sg.a)*stride {
					return fmt.Errorf("shard %d returned %d feature bytes, want %d", sg.ei, len(feats), int64(sg.b-sg.a)*stride)
				}
				copy(out[int64(sg.a)*stride:], feats)
				return nil
			})
		}(si, sg)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d features: %w", segs[si].ei, err)
		}
	}
	return out, nil
}

// MixChunkSeed is re-exported glue for callers assembling whole
// requests: chunk ci of a request seeded `seed` samples with
// Mix(seed, ci), the identical derivation the serve layer uses.
func MixChunkSeed(seed uint64, chunk int) uint64 {
	return sample.Mix(seed, uint64(chunk))
}
