// Package shard implements partitioned serving (DESIGN.md §12): the
// ShardEngine seam that makes a node-range shard of the graph —
// storage, caches, and ring workers bundled — interchangeable between
// in-process (Local) and over-HTTP (Remote) placement, and the
// stateless Router that scatters each sampling layer to owning shards,
// gathers the per-layer frontiers, and reassembles batches that are
// byte-identical to a single-node run.
//
// The determinism argument, in one paragraph: a chunk's draws are one
// rolling RNG stream, and how many values each frontier node consumes
// depends only on its degree — which every shard knows from the global
// offset index — never on its edge bytes. So every shard participating
// in a layer replays the whole frontier's draws (consuming the
// identical stream) and reads bytes only for the nodes it owns; the
// router overlays each node's span from its owning shard, rebuilds the
// next frontier with the strategy's pure frontier rule, and threads
// the RNG state into the next layer. Per-chunk seeding (Mix(seed,
// chunk)) is untouched, so the reassembled response digest equals the
// single-node digest bit for bit.
package shard

import (
	"context"
	"fmt"
	"strconv"

	"ringsampler/internal/core"
)

// Info identifies a shard: its position in the partition, its owned
// node range, and the global graph shape it serves a slice of.
type Info struct {
	// Index/Total place the shard in the partition; an unsharded
	// dataset serves as the sole shard of a 1-partition (0 of 1).
	Index int `json:"index"`
	Total int `json:"total"`
	// Lo/Hi is the owned node range [lo, hi).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// NumNodes/NumEdges are the GLOBAL graph counts.
	NumNodes int64 `json:"num_nodes"`
	NumEdges int64 `json:"num_edges"`
	// FeatureDim is the per-node f32 feature width (0: no features).
	FeatureDim int `json:"feature_dim,omitempty"`
}

// Engine is the shard seam: one node-range shard's storage + cache +
// worker bundle, answering per-layer sampling and feature fetches.
// Local (in-process) and Remote (HTTP) implementations are
// interchangeable — the router cannot tell them apart, which is the
// point of the interface.
//
// Implementations must be safe for concurrent use: the router fans one
// request's layers out while serving other requests.
type Engine interface {
	// Info returns the shard's identity. Constant over the engine's
	// lifetime (Remote resolves it once at construction).
	Info() Info
	// SampleLayer replays the frontier's draws from p.RNGState and
	// returns the layer — non-owned spans zero-filled — plus the RNG
	// state after the layer (see core.Worker.SampleLayer).
	SampleLayer(ctx context.Context, frontier []uint32, p core.LayerParams) (*core.Layer, uint64, error)
	// Features returns the owned nodes' raw f32 vectors back to back in
	// input order. Callers must send only owned nodes.
	Features(ctx context.Context, nodes []uint32) ([]byte, error)
	// Stats reports the engine's accumulated ring-level I/O counters.
	// Remote engines report zeros — the counters live in the shard
	// server's own /metrics.
	Stats() core.IOStats
	// Close releases the engine's workers/connections.
	Close() error
}

// Wire types for the shard HTTP protocol (served by internal/serve,
// spoken by Remote). RNG states cross the wire as %016x hex strings:
// they are full-range uint64s, and JSON numbers would corrupt anything
// above 2^53.

// LayerRequest is the body of POST /v1/shard/layer.
type LayerRequest struct {
	Frontier []uint32 `json:"frontier"`
	Layer    int      `json:"layer"`
	Fanout   int      `json:"fanout"`
	Strategy string   `json:"strategy,omitempty"`
	RNGState string   `json:"rng_state"`
}

// LayerResponse is its reply: the layer's CSR pieces plus the stream
// state after the layer.
type LayerResponse struct {
	Targets   []uint32 `json:"targets"`
	Starts    []int64  `json:"starts"`
	Neighbors []uint32 `json:"neighbors"`
	RNGState  string   `json:"rng_state"`
}

// FeaturesRequest is the body of POST /v1/shard/features.
type FeaturesRequest struct {
	Nodes []uint32 `json:"nodes"`
}

// FeaturesResponse carries the raw little-endian f32 records
// (base64-coded by encoding/json).
type FeaturesResponse struct {
	Features []byte `json:"features"`
}

// EncodeState renders an RNG state for the wire.
func EncodeState(s uint64) string { return fmt.Sprintf("%016x", s) }

// ParseState parses a wire RNG state.
func ParseState(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("shard: bad rng_state %q: %w", s, err)
	}
	return v, nil
}
