package shard

import (
	"context"
	"fmt"
	"sync"

	"ringsampler/internal/core"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Local is the in-process Engine: today's storage + cache + ring-worker
// bundle over one (possibly shard) dataset, behind the shard seam. It
// leases workers from a lazily grown free list — the same
// lease/retire-on-broken discipline as the serve pool, minus the
// micro-batching (the router already batches by chunk).
type Local struct {
	s    *core.Sampler
	info Info

	mu      sync.Mutex
	idle    []*core.Worker
	nextID  int
	retired core.IOStats
	closed  bool
}

// NewLocal opens a Local engine over ds with its own sampler (caches
// built per the config, restricted to owned nodes on a shard dataset).
// ds stays caller-owned and must outlive the engine.
func NewLocal(ds *storage.Dataset, cfg core.Config, backend uring.Backend) (*Local, error) {
	s, err := core.New(ds, cfg, backend)
	if err != nil {
		return nil, err
	}
	return NewLocalFrom(ds, s), nil
}

// NewLocalFrom wraps an existing sampler as a Local engine, sharing its
// caches and strategies — the serve layer's path, where the same
// sampler also backs the shard HTTP endpoints.
func NewLocalFrom(ds *storage.Dataset, s *core.Sampler) *Local {
	lo, hi := ds.ShardRange()
	total, index := ds.NumShards(), ds.ShardIndex()
	if total == 0 {
		// An unsharded dataset serves as the sole shard of a
		// 1-partition — what makes a single Local a valid "cluster".
		total = 1
	}
	return &Local{
		s: s,
		info: Info{
			Index: index, Total: total, Lo: lo, Hi: hi,
			NumNodes: ds.NumNodes(), NumEdges: ds.NumEdges(),
			FeatureDim: ds.FeatureDim(),
		},
	}
}

// Info implements Engine.
func (l *Local) Info() Info { return l.info }

// acquire leases an idle worker or creates one.
func (l *Local) acquire() (*core.Worker, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("shard: engine %d/%d closed", l.info.Index, l.info.Total)
	}
	if n := len(l.idle); n > 0 {
		w := l.idle[n-1]
		l.idle = l.idle[:n-1]
		l.mu.Unlock()
		return w, nil
	}
	id := l.nextID
	l.nextID++
	l.mu.Unlock()
	return l.s.NewWorker(id)
}

// release returns a worker to the free list, or retires it (folding its
// counters into the engine's) when a failed call left its rings
// unprovably empty.
func (l *Local) release(w *core.Worker) {
	if w == nil {
		return
	}
	l.mu.Lock()
	if w.Broken() || l.closed {
		l.retired.Add(w.IOStats())
		l.mu.Unlock()
		w.Close()
		return
	}
	l.idle = append(l.idle, w)
	l.mu.Unlock()
}

// SampleLayer implements Engine via core.Worker.SampleLayer.
func (l *Local) SampleLayer(ctx context.Context, frontier []uint32, p core.LayerParams) (*core.Layer, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	w, err := l.acquire()
	if err != nil {
		return nil, 0, err
	}
	layer, state, err := w.SampleLayer(frontier, p)
	l.release(w)
	return layer, state, err
}

// Features implements Engine via core.Worker.FetchFeatures.
func (l *Local) Features(ctx context.Context, nodes []uint32) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w, err := l.acquire()
	if err != nil {
		return nil, err
	}
	out, err := w.FetchFeatures(nodes)
	l.release(w)
	return out, err
}

// Stats implements Engine: retired plus idle workers' counters. Workers
// leased at the instant of the call are excluded until released, so a
// quiescent engine reports exact totals.
func (l *Local) Stats() core.IOStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.retired
	for _, w := range l.idle {
		st.Add(w.IOStats())
	}
	return st
}

// Sampler exposes the underlying sampler (cache introspection, shared
// serve wiring). Nil-safe only on a non-nil engine.
func (l *Local) Sampler() *core.Sampler { return l.s }

// Close retires every idle worker. Leased workers are retired as they
// are released.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	idle := l.idle
	l.idle = nil
	for _, w := range idle {
		l.retired.Add(w.IOStats())
	}
	l.mu.Unlock()
	var err error
	for _, w := range idle {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
