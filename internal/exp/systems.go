package exp

import (
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/memctl"
	"ringsampler/internal/storage"
)

// Fig4Systems are the eight systems of the paper's Figure 4, in its
// plotting order.
var Fig4Systems = []string{
	"RingSampler",
	"DGL-CPU",
	"DGL-UVA",
	"DGL-GPU",
	"gSampler-UVA",
	"gSampler-GPU",
	"SmartSSD",
	"Marius",
}

// Fig5Budgets are Figure 5's paper-scale memory budgets in GB; 0 means
// unlimited.
var Fig5Budgets = []float64{4, 8, 16, 32, 64, 0}

// Fig7Fanouts are Figure 7's hop sweeps.
var Fig7Fanouts = [][]int{
	{20},
	{20, 15},
	{20, 15, 10},
	{20, 15, 10, 5},
}

// Result is one system's modeled epoch.
type Result struct {
	System string
	// Stub marks systems whose numbers come from the placeholder
	// closed-form models below rather than a full baseline
	// implementation. RingSampler results are never stubs.
	Stub bool
	Err  error
	OOM  bool
	// ModeledSeconds is the epoch time; meaningless when OOM.
	ModeledSeconds float64
	DeviceBytes    int64
	Sampled        int64
}

// Seconds returns the modeled epoch time.
func (r Result) Seconds() float64 { return r.ModeledSeconds }

// Modeled paper-testbed capacities (paper §4.1), in paper-scale bytes.
const (
	hostMemBytes = 256 << 30
	gpuMemBytes  = 80 << 30
)

// Placeholder per-entry rates for the not-yet-implemented baselines.
// They put each system in the magnitude band the paper reports
// relative to RingSampler; the real models (in-memory CSR with layer
// barriers, GPU capacity/rate model, FPGA in-situ model, partition
// buffers) replace them as internal/baseline/* lands.
const (
	stubCPUEntrySec  = 300e-9 // DGL-CPU: in-memory CSR walk + barriers
	stubUVAEntrySec  = 600e-9 // UVA: per-entry PCIe random access
	stubGPUEntrySec  = 25e-9  // GPU-resident sampling
	stubKernelSec    = 12e-6  // GPU kernel launch per layer per batch
	stubFPGAEntrySec = 12e-6  // SmartSSD: FPGA compute ~40x below CPU
	stubSSDLinkBps   = 3.0e9  // SmartSSD internal flash->FPGA link
	stubMariusFactor = 16.0   // Marius epoch vs RingSampler (Fig 5 band)
)

// RunSystem runs one modeled epoch of `system` on the opened scaled
// dataset. RingSampler runs the honest virtual-time engine; every
// other system currently runs a labeled stub model (Result.Stub) that
// will be replaced by real baseline packages.
func RunSystem(ds *storage.Dataset, system string, o Options, budgetBytes int64, fanouts []int) Result {
	cfg := core.DefaultConfig()
	cfg.Fanouts = append([]int(nil), fanouts...)
	if o.BatchSize > 0 {
		cfg.BatchSize = o.BatchSize
	}
	if o.Threads > 0 {
		cfg.Threads = o.Threads
	}
	sc := core.SimConfig{
		Config:       cfg,
		ScaleDivisor: o.Divisor,
		BudgetBytes:  budgetBytes,
		Targets:      o.Targets,
		WorkloadSeed: 1,
	}
	if system == "RingSampler" {
		r := core.RunSim(ds, device.NVMe(), sc)
		return Result{
			System:         system,
			Err:            r.Err,
			OOM:            r.OOM,
			ModeledSeconds: r.ModeledSeconds,
			DeviceBytes:    r.DeviceBytes,
			Sampled:        r.Sampled,
		}
	}
	return runStub(ds, system, sc)
}

// runStub models the paper's baselines with documented placeholder
// closed forms. The workload statistics (sampled entries, full-fetch
// bytes) come from an honest unlimited-budget walk of the actual
// graph; only the per-system time/memory translation is stubbed.
func runStub(ds *storage.Dataset, system string, sc core.SimConfig) Result {
	res := Result{System: system, Stub: true}
	div := int64(sc.ScaleDivisor)
	if div <= 0 {
		div = 1
	}
	// Workload statistics, independent of any budget.
	stats := sc
	stats.BudgetBytes = 0
	w := core.RunSim(ds, device.NVMe(), stats)
	if w.Err != nil {
		res.Err = w.Err
		return res
	}
	res.Sampled = w.Sampled
	entries := float64(w.Sampled)
	layers := len(sc.Config.Fanouts)
	batches := (sc.Targets + sc.Config.BatchSize - 1) / sc.Config.BatchSize
	paperEdgeBytes := ds.NumEdges() * div * storage.EntryBytes

	budget := memctl.New(sc.BudgetBytes)
	oom := func(n int64) bool {
		if err := budget.Charge(n); err != nil {
			res.Err = err
			res.OOM = memctl.IsOOM(err)
			return true
		}
		return false
	}
	switch system {
	case "DGL-CPU":
		// In-memory CSR sampling; threads collaborate within a batch
		// with per-layer barriers.
		if paperEdgeBytes > hostMemBytes || oom(paperEdgeBytes) {
			res.OOM, res.Err = true, fmt.Errorf("exp: %s: graph exceeds host memory: %w", system, memctl.ErrOOM)
			return res
		}
		res.ModeledSeconds = entries * stubCPUEntrySec / float64(sc.Config.Threads)
	case "DGL-UVA", "gSampler-UVA":
		if paperEdgeBytes > hostMemBytes || oom(paperEdgeBytes) {
			res.OOM, res.Err = true, fmt.Errorf("exp: %s: graph exceeds host memory: %w", system, memctl.ErrOOM)
			return res
		}
		res.ModeledSeconds = entries*stubUVAEntrySec + float64(layers*batches)*stubKernelSec
	case "DGL-GPU", "gSampler-GPU":
		if paperEdgeBytes > gpuMemBytes {
			res.OOM, res.Err = true, fmt.Errorf("exp: %s: graph exceeds GPU memory: %w", system, memctl.ErrOOM)
			return res
		}
		res.ModeledSeconds = entries*stubGPUEntrySec + float64(layers*batches)*stubKernelSec
		if system == "DGL-GPU" {
			res.ModeledSeconds *= 1.3 // DGL's sampling kernels trail gSampler's
		}
	case "SmartSSD":
		// Full adjacency lists cross the device-internal link into
		// FPGA DRAM, then sample at FPGA rates.
		res.DeviceBytes = w.FullFetchBytes
		res.ModeledSeconds = float64(w.FullFetchBytes)/stubSSDLinkBps + entries*stubFPGAEntrySec
	case "Marius":
		// Partition-buffer out-of-core sampling: partitions resident
		// in memory, steep epoch cost from partition swaps. Swapped
		// partitions carry full adjacency lists across the device
		// boundary, so the full-fetch byte count of the workload walk
		// is the device traffic floor.
		if oom(paperEdgeBytes / 4) {
			return res
		}
		res.DeviceBytes = w.FullFetchBytes
		res.ModeledSeconds = w.ModeledSeconds * stubMariusFactor
	default:
		res.Err = fmt.Errorf("exp: unknown system %q", system)
	}
	return res
}
