package exp

import (
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// StrategyPoint is one sampling strategy of the strategy sweep: a
// fixed epoch workload drawn under that strategy, reported from the
// multi-threaded run after single- vs multi-thread digest identity
// has been verified.
type StrategyPoint struct {
	Strategy string
	Threads  int
	Stats    core.EpochStats
	// Digest is the folded per-batch digest stream — the sweep proves
	// it identical between the 1-thread and Threads-thread runs before
	// emitting the point, so a strategy that breaks the determinism
	// contract surfaces as an error, not a data point.
	Digest uint64
}

// StrategySweep runs one fixed epoch workload under each named
// strategy, enforcing the strategy determinism contract as it goes:
// every strategy's per-batch digest stream must be bit-identical
// between a 1-thread reference run and the o.Threads run (both
// reseeded per batch via Mix(seed, batchIndex)). Throughput and device
// traffic come from the multi-threaded run. An empty strategies list
// sweeps every known strategy.
func StrategySweep(ds *storage.Dataset, o Options, backend uring.Backend, strategies []string, seed uint64) ([]StrategyPoint, error) {
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: strategy sweep needs positive target count, got %d", o.Targets)
	}
	if len(strategies) == 0 {
		strategies = core.StrategyNames()
	}
	rng := sample.NewRNG(sample.Mix(seed, 0x57a7))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

	threads := o.Threads
	if threads <= 0 {
		threads = core.DefaultConfig().Threads
	}
	runs := []int{1, threads}
	if threads == 1 {
		runs = []int{1}
	}

	out := make([]StrategyPoint, 0, len(strategies))
	for _, name := range strategies {
		var ref []uint64
		var last *core.EpochStats
		for _, th := range runs {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Strategy = name
			cfg.Threads = th
			if o.BatchSize > 0 {
				cfg.BatchSize = o.BatchSize
			}
			s, err := core.New(ds, cfg, backend)
			if err != nil {
				return nil, fmt.Errorf("exp: strategy sweep %s at %d threads: %w", name, th, err)
			}
			st, err := s.RunEpoch(targets, nil)
			if err != nil {
				return nil, fmt.Errorf("exp: strategy sweep %s at %d threads: %w", name, th, err)
			}
			if ref == nil {
				ref = st.Digests
			} else {
				if len(ref) != len(st.Digests) {
					return nil, fmt.Errorf("exp: strategy %s produced %d batches at %d threads, reference has %d",
						name, len(st.Digests), th, len(ref))
				}
				for i := range ref {
					if ref[i] != st.Digests[i] {
						return nil, fmt.Errorf("exp: strategy %s violates thread-count invariance: batch %d digest differs at %d threads (%#x vs %#x)",
							name, i, th, st.Digests[i], ref[i])
					}
				}
			}
			last = st
		}
		var digest uint64
		for _, d := range last.Digests {
			digest = foldDigest(digest, d)
		}
		out = append(out, StrategyPoint{Strategy: name, Threads: threads, Stats: *last, Digest: digest})
	}
	return out, nil
}
