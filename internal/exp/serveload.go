package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ringsampler/internal/sample"
	"ringsampler/internal/serve"
	"ringsampler/internal/storage"
)

// ServeLoadConfig drives one closed-loop load sweep against the online
// sampling service: for each client count in Clients, a fresh server is
// started on a loopback listener and that many closed-loop clients
// (each issuing its next request the moment the previous one returns)
// hammer POST /v1/sample until every client has sent
// RequestsPerClient requests.
type ServeLoadConfig struct {
	// Serve is the server configuration under test (worker count, queue
	// bounds, batch window — the knobs the sweep is probing).
	Serve serve.Config
	// Clients are the offered-load points, in sweep order (a closed
	// loop's offered load is its concurrency).
	Clients []int
	// RequestsPerClient is how many requests each client issues per
	// point.
	RequestsPerClient int
	// TargetsPerRequest is the request size; Fanouts the per-layer
	// sample counts (empty: the server's configured fanouts).
	TargetsPerRequest int
	Fanouts           []int
	// Seed derives every request's targets and sampling seed.
	Seed uint64
}

// ServeLoadPoint is one offered-load point of the sweep.
type ServeLoadPoint struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Rejected int     `json:"rejected"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	// Throughput is successful responses per second; RejectionRate is
	// the 429 fraction of all requests.
	Throughput    float64 `json:"throughput_rps"`
	RejectionRate float64 `json:"rejection_rate"`
	// P50MS/P99MS are quantiles over successful requests only —
	// rejections return in microseconds and would drag the quantiles
	// into meaninglessness.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// ServeLoadResult is the machine-readable sweep summary
// (benchdata/BENCH_serve.json in CI).
type ServeLoadResult struct {
	Backend    string           `json:"backend"`
	Threads    int              `json:"threads"`
	QueueDepth int              `json:"queue_depth"`
	Targets    int              `json:"targets_per_request"`
	PerClient  int              `json:"requests_per_client"`
	Points     []ServeLoadPoint `json:"points"`
}

// ServeLoad runs the closed-loop sweep. Each point gets a fresh server
// so its /metrics and pool state never bleed into the next point. A
// request failing at the transport level (not an HTTP status) aborts
// the sweep — that is a harness bug, not an overload signal.
func ServeLoad(ds *storage.Dataset, cfg ServeLoadConfig) (*ServeLoadResult, error) {
	if len(cfg.Clients) == 0 {
		return nil, fmt.Errorf("exp: serve load sweep needs at least one client count")
	}
	if cfg.RequestsPerClient <= 0 {
		return nil, fmt.Errorf("exp: serve load sweep needs positive requests per client, got %d", cfg.RequestsPerClient)
	}
	if cfg.TargetsPerRequest <= 0 {
		return nil, fmt.Errorf("exp: serve load sweep needs positive targets per request, got %d", cfg.TargetsPerRequest)
	}
	res := &ServeLoadResult{
		Targets:   cfg.TargetsPerRequest,
		PerClient: cfg.RequestsPerClient,
	}
	for _, clients := range cfg.Clients {
		if clients <= 0 {
			return nil, fmt.Errorf("exp: client count %d must be positive", clients)
		}
		p, srvCfg, err := serveLoadPoint(ds, cfg, clients)
		if err != nil {
			return nil, fmt.Errorf("exp: serve load at %d clients: %w", clients, err)
		}
		res.Backend = string(srvCfg.Backend)
		res.Threads = srvCfg.Core.Threads
		res.QueueDepth = srvCfg.QueueDepth
		res.Points = append(res.Points, *p)
	}
	return res, nil
}

func serveLoadPoint(ds *storage.Dataset, cfg ServeLoadConfig, clients int) (*ServeLoadPoint, serve.Config, error) {
	srv, err := serve.New(ds, cfg.Serve)
	if err != nil {
		return nil, serve.Config{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, serve.Config{}, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + ln.Addr().String() + "/v1/sample"

	type clientTally struct {
		ok, rejected, errs int
		lats               []time.Duration
		err                error
	}
	tallies := make([]clientTally, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tl := &tallies[c]
			client := &http.Client{Timeout: 2 * time.Minute}
			rng := sample.NewRNG(sample.Mix(cfg.Seed, uint64(clients)<<20|uint64(c)))
			for r := 0; r < cfg.RequestsPerClient; r++ {
				targets := UniformTargets(&rng, ds.NumNodes(), cfg.TargetsPerRequest)
				body, err := json.Marshal(map[string]any{
					"targets": targets,
					"fanouts": cfg.Fanouts,
					"seed":    sample.Mix(cfg.Seed, uint64(c)<<32|uint64(r)),
				})
				if err != nil {
					tl.err = err
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					tl.err = err
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					tl.ok++
					tl.lats = append(tl.lats, time.Since(t0))
				case http.StatusTooManyRequests:
					tl.rejected++
				default:
					tl.errs++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	p := &ServeLoadPoint{Clients: clients, Seconds: elapsed}
	var lats []time.Duration
	for c := range tallies {
		tl := &tallies[c]
		if tl.err != nil {
			return nil, serve.Config{}, tl.err
		}
		p.OK += tl.ok
		p.Rejected += tl.rejected
		p.Errors += tl.errs
		lats = append(lats, tl.lats...)
	}
	p.Requests = clients * cfg.RequestsPerClient
	if elapsed > 0 {
		p.Throughput = float64(p.OK) / elapsed
	}
	if p.Requests > 0 {
		p.RejectionRate = float64(p.Rejected) / float64(p.Requests)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p.P50MS = quantileMS(lats, 0.50)
	p.P99MS = quantileMS(lats, 0.99)
	return p, srv.Config(), nil
}

// quantileMS is the nearest-rank quantile of a sorted latency slice,
// in milliseconds; 0 when empty.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return float64(sorted[i].Nanoseconds()) / 1e6
}
