package exp

import (
	"fmt"
	"time"

	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// UringMicroPoint is one ring configuration of the raw-read
// microbenchmark: no sampling, no frontier building — just batched
// reads through the ring, so the fast-path knobs and submission depth
// are measured in isolation from the (CPU-bound) sampling work that
// dilutes them at the epoch level.
type UringMicroPoint struct {
	// Name is "<combo>/depth<D>"; Active reflects capability downgrades.
	Name   string     `json:"name"`
	Knobs  UringKnobs `json:"knobs"`
	Active string     `json:"active"`
	Depth  int        `json:"depth"`

	Reads           int     `json:"reads"`
	ReadBytes       int     `json:"read_bytes"`
	ReadsPerSec     float64 `json:"reads_per_sec"`
	EntriesPerSec   float64 `json:"entries_per_sec"`
	MBPerSec        float64 `json:"mb_per_sec"`
	SyscallsPerRead float64 `json:"syscalls_per_read"`
}

// DefaultUringMicroCombos is the microbenchmark ladder: submission
// depth 1 (one syscall round-trip per read) up through deep batching,
// then the knob stack at full depth. Quick keeps the plain-vs-fixed
// pair at full depth.
func DefaultUringMicroCombos(quick bool) []UringKnobs {
	if quick {
		return []UringKnobs{{Depth: 256}, {Fixed: true, Depth: 256}}
	}
	return []UringKnobs{
		{Depth: 1},
		{Depth: 64},
		{Depth: 256},
		{Fixed: true, Depth: 256},
		{Fixed: true, RegFiles: true, Depth: 256},
		{Fixed: true, RegFiles: true, SQPoll: true, Depth: 256},
		{ODirect: true, Depth: 256},
		{Fixed: true, ODirect: true, Depth: 256},
	}
}

// UringMicro measures raw batched-read throughput through the ring for
// each knob combination: totalReads reads of readBytes each from
// deterministic offsets in the dataset's edge file, staged
// combo.Depth-deep per submission. Each combination runs reps times and
// reports its best repetition. Real-backend-only knobs are intersected
// with uring.Probe() (the Active field records what ran); pool/sim run
// their documented emulations. O_DIRECT combinations reopen the file
// with the probed alignment and align offsets and buffers accordingly.
func UringMicro(dir string, backend uring.Backend, combos []UringKnobs, readBytes, totalReads, reps int, seed uint64) ([]UringMicroPoint, error) {
	if readBytes <= 0 || totalReads <= 0 {
		return nil, fmt.Errorf("exp: uring micro needs positive read size and count")
	}
	if reps < 1 {
		reps = 1
	}
	caps := uring.Probe()
	if backend == uring.BackendIOURing && !caps.Ring {
		return nil, fmt.Errorf("exp: uring micro: io_uring unavailable (caps %s)", caps)
	}

	out := make([]UringMicroPoint, 0, len(combos))
	for _, k := range combos {
		depth := k.Depth
		if depth <= 0 {
			depth = 256
		}
		granted := k
		if backend == uring.BackendIOURing {
			granted.Fixed = k.Fixed && caps.ReadFixed
			granted.RegFiles = k.RegFiles && caps.RegisteredFiles
			granted.SQPoll = k.SQPoll && caps.SQPoll
		} else {
			granted.RegFiles = false
			granted.SQPoll = false
		}

		ds, err := storage.OpenWith(dir, storage.OpenOptions{Direct: k.ODirect})
		if err != nil {
			return nil, fmt.Errorf("exp: uring micro open %s: %w", k.Name(), err)
		}
		align := ds.DirectAlign()
		size := ds.NumEdges() * storage.EntryBytes
		if int64(readBytes) > size {
			ds.Close()
			return nil, fmt.Errorf("exp: uring micro: read size %d exceeds edge file (%d bytes)", readBytes, size)
		}

		arena := storage.AlignedSlice(depth*readBytes, 4096)
		opts := uring.Options{
			Entries:      depth,
			RegisterFile: granted.RegFiles,
			SQPoll:       granted.SQPoll,
		}
		if granted.Fixed {
			opts.FixedBuffers = [][]byte{arena}
		}

		var best *UringMicroPoint
		for rep := 0; rep < reps; rep++ {
			r, err := uring.NewWith(backend, ds.File(), opts)
			if err != nil {
				ds.Close()
				return nil, fmt.Errorf("exp: uring micro %s: %w", k.Name(), err)
			}
			p, err := microRun(r, granted, depth, readBytes, totalReads, size, align, arena, seed)
			r.Close()
			if err != nil {
				ds.Close()
				return nil, fmt.Errorf("exp: uring micro %s: %w", k.Name(), err)
			}
			if best == nil || p.ReadsPerSec > best.ReadsPerSec {
				best = p
			}
		}
		ds.Close()

		nameKnobs := k
		nameKnobs.Depth = 0
		best.Name = fmt.Sprintf("%s/depth%d", nameKnobs.Name(), depth)
		best.Knobs = k
		activeKnobs := granted
		activeKnobs.Depth = 0
		activeKnobs.ODirect = align > 0
		best.Active = activeKnobs.Name()
		out = append(out, *best)
	}
	return out, nil
}

func microRun(r uring.Ring, k UringKnobs, depth, readBytes int, totalReads int, size int64, align int, arena []byte, seed uint64) (*UringMicroPoint, error) {
	rng := sample.NewRNG(sample.Mix(seed, 0x31f0))
	maxOff := size - int64(readBytes)
	if align > 0 {
		maxOff = storage.AlignDown(maxOff, align)
	}
	var sysBefore uring.Syscalls
	if sr, ok := r.(uring.SyscallReporter); ok {
		sysBefore = sr.Syscalls()
	}

	start := time.Now()
	done := 0
	issued := 0
	for done < totalReads {
		staged := 0
		for issued < totalReads && staged < depth {
			off := int64(rng.Uint32n(uint32(maxOff + 1)))
			if align > 0 {
				off = storage.AlignDown(off, align)
			}
			dst := arena[staged*readBytes : (staged+1)*readBytes]
			var ok bool
			if k.Fixed {
				ok = r.PrepReadFixed(uint64(staged), off, dst, 0)
			} else {
				ok = r.PrepRead(uint64(staged), off, dst)
			}
			if !ok {
				break
			}
			issued++
			staged++
		}
		if _, err := r.Submit(); err != nil {
			return nil, err
		}
		got := 0
		for got < staged {
			cqes, err := r.Wait(staged - got)
			if err != nil {
				return nil, err
			}
			for _, c := range cqes {
				if c.Res != int32(readBytes) {
					return nil, fmt.Errorf("read %d returned %d, want %d", c.ID, c.Res, readBytes)
				}
			}
			got += len(cqes)
		}
		done += staged
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}

	p := &UringMicroPoint{
		Depth:         depth,
		Reads:         totalReads,
		ReadBytes:     readBytes,
		ReadsPerSec:   float64(totalReads) / secs,
		EntriesPerSec: float64(totalReads) * float64(readBytes/storage.EntryBytes) / secs,
		MBPerSec:      float64(totalReads) * float64(readBytes) / secs / (1 << 20),
	}
	if sr, ok := r.(uring.SyscallReporter); ok {
		after := sr.Syscalls()
		p.SyscallsPerRead = float64(after.Submits-sysBefore.Submits+after.Waits-sysBefore.Waits) / float64(totalReads)
	}
	return p, nil
}
