package exp

import (
	"fmt"
	"strings"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// UringKnobs is one requested combination of the io_uring fast-path
// knobs for the ablation sweep. The zero value is the plain path.
type UringKnobs struct {
	Fixed    bool `json:"fixed"`
	RegFiles bool `json:"reg_files"`
	SQPoll   bool `json:"sqpoll"`
	ODirect  bool `json:"odirect"`
	Depth    int  `json:"depth"`
}

// Name renders the combination compactly ("plain",
// "fixed+sqpoll+odirect", "fixed/depth64", ...).
func (k UringKnobs) Name() string {
	var parts []string
	if k.Fixed {
		parts = append(parts, "fixed")
	}
	if k.RegFiles {
		parts = append(parts, "regfiles")
	}
	if k.SQPoll {
		parts = append(parts, "sqpoll")
	}
	if k.ODirect {
		parts = append(parts, "odirect")
	}
	name := "plain"
	if len(parts) > 0 {
		name = strings.Join(parts, "+")
	}
	if k.Depth > 0 {
		name = fmt.Sprintf("%s/depth%d", name, k.Depth)
	}
	return name
}

// activeString renders what actually ran after capability downgrades,
// from the stats flags rather than the request.
func activeString(io core.IOStats) string {
	var parts []string
	if io.ActiveFixed {
		parts = append(parts, "fixed")
	}
	if io.ActiveRegFiles {
		parts = append(parts, "regfiles")
	}
	if io.ActiveSQPoll {
		parts = append(parts, "sqpoll")
	}
	if io.ActiveODirect {
		parts = append(parts, "odirect")
	}
	if len(parts) == 0 {
		return "plain"
	}
	return strings.Join(parts, "+")
}

// UringPoint is one knob combination of the ablation sweep.
type UringPoint struct {
	// Combo is the requested combination; Active is what actually ran
	// after capability downgrades (from the per-worker stats flags), so
	// the JSON is honest when a kernel grants less than was asked for.
	Combo  string     `json:"combo"`
	Knobs  UringKnobs `json:"knobs"`
	Active string     `json:"active"`

	EntriesPerSec float64 `json:"entries_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	Batches       int     `json:"batches"`

	// SubmitSyscalls/WaitSyscalls are the merged ring kernel crossings;
	// SyscallsPerBatch is their sum divided by the batch count — the
	// paper's submission-batching metric.
	SubmitSyscalls   int64   `json:"submit_syscalls"`
	WaitSyscalls     int64   `json:"wait_syscalls"`
	SyscallsPerBatch float64 `json:"syscalls_per_batch"`

	// DeviceBytes is BytesRead + AlignSlackBytes: what actually crossed
	// the storage boundary, including O_DIRECT alignment overhead.
	DeviceBytes int64 `json:"device_bytes"`
	FixedReads  int64 `json:"fixed_reads"`

	Digest uint64 `json:"digest"`
}

// DefaultUringCombos is the full knob-ablation ladder: each knob alone
// against plain, the cumulative stack, and a bounded-depth variant of
// the stack. Quick shrinks it to the plain-vs-fixed smoke pair.
func DefaultUringCombos(quick bool) []UringKnobs {
	if quick {
		return []UringKnobs{{}, {Fixed: true}}
	}
	return []UringKnobs{
		{},
		{Fixed: true},
		{RegFiles: true},
		{SQPoll: true},
		{ODirect: true},
		{Fixed: true, RegFiles: true},
		{Fixed: true, RegFiles: true, SQPoll: true},
		{Fixed: true, RegFiles: true, SQPoll: true, ODirect: true},
		{Fixed: true, RegFiles: true, SQPoll: true, ODirect: true, Depth: 64},
	}
}

// UringSweep runs one fixed epoch workload (o.Targets uniform targets,
// seeded sampling) through every knob combination on the given backend,
// reopening the dataset per combination so O_DIRECT variants measure
// the device rather than the page cache. Each combination runs reps
// times (minimum 1) and reports its best-throughput repetition — the
// standard defense against scheduler and page-cache noise on small
// workloads; syscall and byte counters come from the same repetition.
// Byte identity is enforced as it goes: every repetition of every
// combination must reproduce the first combination's folded digest, so
// a fast path that corrupts output surfaces as an error, never as a
// (fast) data point.
func UringSweep(dir string, o Options, backend uring.Backend, combos []UringKnobs, reps int, seed uint64) ([]UringPoint, error) {
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: uring sweep needs positive target count, got %d", o.Targets)
	}
	if len(combos) == 0 {
		return nil, fmt.Errorf("exp: uring sweep needs at least one knob combination")
	}
	if reps < 1 {
		reps = 1
	}

	out := make([]UringPoint, 0, len(combos))
	var refDigest uint64
	for i, k := range combos {
		ds, err := storage.OpenWith(dir, storage.OpenOptions{Direct: k.ODirect})
		if err != nil {
			return nil, fmt.Errorf("exp: uring sweep open %s: %w", k.Name(), err)
		}
		rng := sample.NewRNG(sample.Mix(seed, 0xe90c))
		targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.FixedBuffers = k.Fixed
		cfg.RegisteredFiles = k.RegFiles
		cfg.SQPoll = k.SQPoll
		cfg.Depth = k.Depth
		if o.Threads > 0 {
			cfg.Threads = o.Threads
		}
		if o.BatchSize > 0 {
			cfg.BatchSize = o.BatchSize
		}

		var best *core.EpochStats
		var digest uint64
		for rep := 0; rep < reps; rep++ {
			s, err := core.New(ds, cfg, backend)
			if err != nil {
				ds.Close()
				return nil, fmt.Errorf("exp: uring sweep %s: %w", k.Name(), err)
			}
			st, err := s.RunEpoch(targets, nil)
			if err != nil {
				ds.Close()
				return nil, fmt.Errorf("exp: uring sweep %s: %w", k.Name(), err)
			}
			var d uint64
			for _, bd := range st.Digests {
				d = foldDigest(d, bd)
			}
			if i == 0 && rep == 0 {
				refDigest = d
			} else if d != refDigest {
				ds.Close()
				return nil, fmt.Errorf("exp: knob combination %s changed the sampled bytes (digest %#x, plain %#x)",
					k.Name(), d, refDigest)
			}
			digest = d
			if best == nil || st.EntriesPerSec > best.EntriesPerSec {
				best = st
			}
		}
		ds.Close()

		p := UringPoint{
			Combo:          k.Name(),
			Knobs:          k,
			Active:         activeString(best.IO),
			EntriesPerSec:  best.EntriesPerSec,
			BytesPerSec:    best.BytesPerSec,
			Batches:        best.Batches,
			SubmitSyscalls: best.IO.SubmitSyscalls,
			WaitSyscalls:   best.IO.WaitSyscalls,
			DeviceBytes:    best.IO.BytesRead + best.IO.AlignSlackBytes,
			FixedReads:     best.IO.FixedReads,
			Digest:         digest,
		}
		if best.Batches > 0 {
			p.SyscallsPerBatch = float64(best.IO.SubmitSyscalls+best.IO.WaitSyscalls) / float64(best.Batches)
		}
		out = append(out, p)
	}
	return out, nil
}
