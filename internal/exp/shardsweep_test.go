package exp

import (
	"path/filepath"
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/serve"
	"ringsampler/internal/uring"
)

// TestShardSweepSmoke runs the sharded-serving sweep at smoke size:
// shard counts 1 and 2 over a small featureful graph. The sweep itself
// enforces digest conformance against the single-node baseline — any
// divergence is an error, so this test passing IS the conformance
// check at the exp layer.
func TestShardSweepSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "sweep", "rmat", 2_000, 30_000, 11, gen.Options{FeatureDim: 4}); err != nil {
		t.Fatal(err)
	}
	scfg := serve.DefaultConfig()
	scfg.Backend = uring.BackendPool
	scfg.Core.Threads = 2
	scfg.Core.BatchSize = 64
	scfg.Core.CacheBudgetBytes = 32 << 10
	scfg.Core.FeatureCacheBudgetBytes = 32 << 10

	res, err := ShardSweep(dir, ShardSweepConfig{
		Serve:             scfg,
		Shards:            []int{1, 2},
		Clients:           2,
		RequestsPerClient: 4,
		TargetsPerRequest: 96,
		Fanouts:           []int{6, 4},
		Seed:              17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("sweep has %d points, want 2", len(res.Points))
	}
	if !res.Features {
		t.Fatal("sweep did not detect the feature file")
	}
	for _, p := range res.Points {
		// strategies × {plain, features} requests, all digest-checked.
		if want := len(res.Strategies) * 2; p.ConformanceRequests != want {
			t.Fatalf("%d shards: %d conformance requests, want %d", p.Shards, p.ConformanceRequests, want)
		}
		if p.OK != p.Requests {
			t.Fatalf("%d shards: only %d/%d load requests succeeded", p.Shards, p.OK, p.Requests)
		}
		if p.Throughput <= 0 || p.P50MS <= 0 {
			t.Fatalf("%d shards: empty throughput stats: %+v", p.Shards, p)
		}
	}

	// The baseline must come first: starting at 2 shards has nothing to
	// conform against.
	if _, err := ShardSweep(dir, ShardSweepConfig{
		Serve: scfg, Shards: []int{2}, Clients: 1, RequestsPerClient: 1, TargetsPerRequest: 8, Seed: 1,
	}); err == nil {
		t.Fatal("sweep accepted a shard list without the 1-shard baseline")
	}
}
