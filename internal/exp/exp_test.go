package exp

import (
	"os"
	"path/filepath"
	"testing"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/sample"
	"ringsampler/internal/serve"
	"ringsampler/internal/simrun"
	"ringsampler/internal/uring"
)

// benchRoot is the checked-in benchmark dataset root, relative to this
// package directory.
const benchRoot = "../../benchdata/bench"

// TestPrepareReusesCheckedInDataset: the committed
// ogbn-papers-div20000 files must verify as-is — Prepare opens them
// without regenerating (the benchmarks depend on this to avoid a
// generation step on every run).
func TestPrepareReusesCheckedInDataset(t *testing.T) {
	edgePath := filepath.Join(benchRoot, "ogbn-papers-div20000", "edges.dat")
	before, err := os.Stat(edgePath)
	if err != nil {
		t.Fatalf("checked-in benchdata missing: %v", err)
	}
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Manifest.NumNodes != 5550 || p.Manifest.NumEdges != 80_000 {
		t.Fatalf("unexpected scaled counts: %+v", p.Manifest)
	}
	after, err := os.Stat(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("Prepare rewrote checked-in benchdata instead of reusing it")
	}

	// The prepared dataset must actually sample through the real engine.
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	s, err := core.New(ds, core.DefaultConfig(), uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r := sample.NewRNG(1)
	targets := make([]uint32, 32)
	for i := range targets {
		targets[i] = r.Uint32n(uint32(ds.NumNodes()))
	}
	b, err := w.SampleBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalSampled() == 0 {
		t.Fatal("checked-in dataset sampled nothing")
	}
}

func TestPrepareRejectsUnknownDataset(t *testing.T) {
	if _, err := Prepare(t.TempDir(), "no-such-graph", 1000, false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestAblationGuards pins the two headline ablation properties on the
// checked-in dataset at the benchmark configuration: offset-based
// sampling moves ≥10x fewer device bytes than full-neighborhood
// fetching, and the async pipeline beats the synchronous one.
func TestAblationGuards(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := core.SimConfig{
		Config:       core.DefaultConfig(),
		ScaleDivisor: 20_000,
		BudgetBytes:  simrun.GBytes(1),
		Targets:      512,
		WorkloadSeed: 1,
	}
	base.Config.BatchSize = 128
	base.Config.Threads = 8

	offset := core.RunSim(ds, device.NVMe(), base)
	if offset.Err != nil {
		t.Fatal(offset.Err)
	}
	syncCfg := base
	syncCfg.Config.AsyncPipeline = false
	syn := core.RunSim(ds, device.NVMe(), syncCfg)
	if syn.Err != nil {
		t.Fatal(syn.Err)
	}
	fullCfg := base
	fullCfg.Config.OffsetSampling = false
	full := core.RunSim(ds, device.NVMe(), fullCfg)
	if full.Err != nil {
		t.Fatal(full.Err)
	}

	if offset.Sampled != full.Sampled {
		t.Fatalf("modes sampled different totals: %d vs %d", offset.Sampled, full.Sampled)
	}
	ratio := float64(full.DeviceBytes) / float64(offset.DeviceBytes)
	if ratio < 10 {
		t.Fatalf("offset sampling moved only %.2fx fewer device bytes (%d vs %d), want ≥10x",
			ratio, offset.DeviceBytes, full.DeviceBytes)
	}
	if offset.ModeledSeconds >= syn.ModeledSeconds {
		t.Fatalf("async pipeline (%.6fs) not faster than sync (%.6fs)",
			offset.ModeledSeconds, syn.ModeledSeconds)
	}
}

// TestRunSystemLabels: RingSampler results are honest engine runs;
// every baseline is explicitly labeled a stub.
func TestRunSystemLabels(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Divisor: 20_000, Targets: 64, BatchSize: 32, Threads: 4}
	for _, sys := range Fig4Systems {
		r := RunSystem(ds, sys, o, 0, core.DefaultFanouts)
		if r.System != sys {
			t.Fatalf("result labeled %q, want %q", r.System, sys)
		}
		if sys == "RingSampler" {
			if r.Stub {
				t.Fatal("RingSampler result marked as stub")
			}
			if r.Err != nil {
				t.Fatalf("RingSampler: %v", r.Err)
			}
			if r.Seconds() <= 0 || r.DeviceBytes == 0 {
				t.Fatalf("RingSampler degenerate result: %+v", r)
			}
			continue
		}
		if !r.Stub {
			t.Fatalf("%s result not marked as stub", sys)
		}
		if r.Err != nil && !r.OOM {
			t.Fatalf("%s: unexpected error: %v", sys, r.Err)
		}
		// Out-of-core baselines move data across the device boundary;
		// a zero count means the stub forgot to model it.
		if (sys == "Marius" || sys == "SmartSSD") && r.Err == nil && r.DeviceBytes == 0 {
			t.Fatalf("%s reports zero device traffic", sys)
		}
	}
	if r := RunSystem(ds, "NoSuchSystem", o, 0, core.DefaultFanouts); r.Err == nil {
		t.Fatal("unknown system accepted")
	}
}

// TestFaultSweepQuick: one low-rate fault point on the checked-in
// dataset — the engine must absorb the injected faults and produce
// byte-identical samples. Fast enough to run everywhere.
func TestFaultSweepQuick(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Targets: 128, BatchSize: 64}
	points, err := FaultSweep(ds, o, uring.BackendPool, []float64{0.02}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want reference + 1 rate", len(points))
	}
	assertFaultPoints(t, points)
}

// TestFaultSweepFull: the full rate sweep (up to 20% per-request
// faults) across pool and sim backends. Slow by design; gated behind
// -short.
func TestFaultSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep skipped in -short mode")
	}
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Targets: 512, BatchSize: 128}
	rates := []float64{0.01, 0.05, 0.1, 0.2}
	backends := []uring.Backend{uring.BackendPool, uring.BackendSim}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			points, err := FaultSweep(ds, o, be, rates, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) != len(rates)+1 {
				t.Fatalf("got %d points, want %d", len(points), len(rates)+1)
			}
			assertFaultPoints(t, points)
			for _, pt := range points[1:] {
				if pt.Injected.Total() == 0 {
					t.Fatalf("rate %v injected nothing", pt.Rate)
				}
			}
		})
	}
}

func assertFaultPoints(t *testing.T, points []FaultPoint) {
	t.Helper()
	for _, pt := range points {
		t.Logf("rate %.2f: %.0f entries/s, io %+v, injected %+v",
			pt.Rate, pt.EntriesPerSec, pt.IO, pt.Injected)
		if !pt.Identical {
			t.Fatalf("rate %v corrupted the sampled output", pt.Rate)
		}
		if pt.Entries == 0 || pt.EntriesPerSec <= 0 {
			t.Fatalf("rate %v degenerate point: %+v", pt.Rate, pt)
		}
		if pt.Rate > 0 && pt.IO.Retries == 0 {
			t.Fatalf("rate %v: faults injected but no retries recorded", pt.Rate)
		}
	}
}

// TestEpochScalingInvariance: the real-engine thread sweep on the
// checked-in dataset — every thread count must reproduce the same
// per-batch digest stream (EpochScaling errors out otherwise), with
// sane stats at every point.
func TestEpochScalingInvariance(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Targets: 256, BatchSize: 64}
	points, err := EpochScaling(ds, o, uring.BackendPool, []int{1, 2, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for _, pt := range points {
		t.Logf("threads %d: %.0f entries/s, io %+v", pt.Threads, pt.Stats.EntriesPerSec, pt.Stats.IO)
		if pt.Stats.Sampled == 0 || pt.Stats.Batches != 4 {
			t.Fatalf("threads %d: degenerate stats %+v", pt.Threads, pt.Stats)
		}
		if pt.Digest != points[0].Digest {
			t.Fatalf("threads %d: folded digest differs", pt.Threads)
		}
	}
}

func TestFig6Milestones(t *testing.T) {
	o := Options{Divisor: 20_000, Targets: 8, BatchSize: 1, Threads: 1}
	res, err := Fig6(benchRoot, o, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 {
		t.Fatalf("Requests = %d, want 8", res.Requests)
	}
	if len(res.Milestones) != 4 {
		t.Fatalf("got %d milestones, want 4", len(res.Milestones))
	}
	prev := 0.0
	for _, m := range res.Milestones {
		if m.TimeSec < prev || m.TimeSec <= 0 {
			t.Fatalf("milestones not monotonically increasing: %+v", res.Milestones)
		}
		prev = m.TimeSec
	}
}

// TestCacheSweepAblation: the hot-neighbor cache budget sweep on the
// checked-in dataset. CacheSweep itself enforces digest invariance and
// monotone device bytes; the test additionally pins the endpoints — no
// cache traffic at budget 0, a fully-pinned edge file and zero device
// reads at an effectively unlimited budget — and that hit rate never
// drops as the budget grows.
func TestCacheSweepAblation(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Targets: 256, BatchSize: 64, Threads: 2}
	budgets := []int64{0, 64 << 10, 256 << 10, 1 << 30}
	points, err := CacheSweep(ds, o, uring.BackendPool, budgets, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(budgets) {
		t.Fatalf("got %d points, want %d", len(points), len(budgets))
	}
	for i, pt := range points {
		t.Logf("budget %d: pinned %d nodes / %d B, hit rate %.3f, device %d B",
			pt.BudgetBytes, pt.CacheNodes, pt.CacheBytes, pt.HitRate, pt.Stats.IO.BytesRead)
		if pt.Stats.Sampled == 0 || pt.Stats.Batches != 4 {
			t.Fatalf("budget %d: degenerate stats %+v", pt.BudgetBytes, pt.Stats)
		}
		if i > 0 && pt.HitRate < points[i-1].HitRate {
			t.Fatalf("hit rate fell from %.3f to %.3f as the budget grew", points[i-1].HitRate, pt.HitRate)
		}
	}
	first, last := points[0], points[len(points)-1]
	if first.CacheNodes != 0 || first.Stats.IO.CacheHits != 0 || first.Stats.IO.CacheBytes != 0 {
		t.Fatalf("budget 0 point has cache traffic: %+v", first.Stats.IO)
	}
	if last.Stats.IO.BytesRead != 0 || last.HitRate != 1 {
		t.Fatalf("unlimited-budget point still touched the device: %+v", last.Stats.IO)
	}
	if last.Stats.IO.BytesRead >= first.Stats.IO.BytesRead {
		t.Fatal("cache did not reduce device traffic")
	}

	// Decreasing budgets are a caller error, not a silent mis-sweep.
	if _, err := CacheSweep(ds, o, uring.BackendPool, []int64{1 << 20, 0}, 7); err == nil {
		t.Fatal("decreasing budget list accepted")
	}
}

// TestServeLoadQuick runs the closed-loop serving sweep at smoke-test
// scale: three offered-load points against the sim backend, each
// required to complete its full request budget with sane latency
// ordering.
func TestServeLoadQuick(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	scfg := serve.DefaultConfig()
	scfg.Backend = uring.BackendSim
	scfg.Core.Threads = 2
	scfg.Core.BatchSize = 64
	res, err := ServeLoad(ds, ServeLoadConfig{
		Serve:             scfg,
		Clients:           []int{1, 2, 4},
		RequestsPerClient: 4,
		TargetsPerRequest: 32,
		Fanouts:           []int{5, 5},
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("sweep has %d points, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.OK+p.Rejected+p.Errors != p.Requests {
			t.Fatalf("point %d clients: %d+%d+%d != %d requests", p.Clients, p.OK, p.Rejected, p.Errors, p.Requests)
		}
		if p.Errors != 0 {
			t.Fatalf("point %d clients: %d non-429 failures", p.Clients, p.Errors)
		}
		if p.OK == 0 || p.Throughput <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.P99MS < p.P50MS {
			t.Fatalf("p99 %.3fms below p50 %.3fms", p.P99MS, p.P50MS)
		}
	}
}
