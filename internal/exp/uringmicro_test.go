package exp

import (
	"testing"

	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// TestUringMicro: the raw-read microbenchmark on the pool backend with
// the quick combo pair. Every point must complete the requested read
// count, report positive throughput, and charge exactly one submit
// syscall per read on the pool (which preads at submit time).
func TestUringMicro(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	combos := DefaultUringMicroCombos(true)
	points, err := UringMicro(p.Dir, uring.BackendPool, combos, 512, 2048, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(combos) {
		t.Fatalf("got %d points, want %d", len(points), len(combos))
	}
	for i, pt := range points {
		t.Logf("%-24s %12.0f reads/s  %8.2f syscalls/read  active=%s",
			pt.Name, pt.ReadsPerSec, pt.SyscallsPerRead, pt.Active)
		if pt.Reads != 2048 || pt.ReadBytes != 512 || pt.ReadsPerSec <= 0 {
			t.Fatalf("%s: degenerate point %+v", pt.Name, pt)
		}
		if pt.Depth != 256 {
			t.Fatalf("%s: depth %d, want 256", pt.Name, pt.Depth)
		}
		// Pool submits one pread per staged read, so the syscall ratio
		// is exactly 1 regardless of depth.
		if pt.SyscallsPerRead != 1 {
			t.Fatalf("%s: %f syscalls/read on pool, want 1", pt.Name, pt.SyscallsPerRead)
		}
		wantFixed := combos[i].Fixed
		if containsKnob(pt.Active, "fixed") != wantFixed {
			t.Fatalf("%s: active %q, fixed requested %v", pt.Name, pt.Active, wantFixed)
		}
		for _, banned := range []string{"regfiles", "sqpoll"} {
			if containsKnob(pt.Active, banned) {
				t.Fatalf("%s: pool backend claims active %q", pt.Name, pt.Active)
			}
		}
	}
	if points[0].EntriesPerSec != points[0].ReadsPerSec*float64(512/storage.EntryBytes) {
		t.Fatalf("entries/s %f inconsistent with reads/s %f", points[0].EntriesPerSec, points[0].ReadsPerSec)
	}
}

func TestUringMicroGuards(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UringMicro(p.Dir, uring.BackendPool, DefaultUringMicroCombos(true), 0, 128, 1, 7); err == nil {
		t.Fatal("zero read size accepted")
	}
	if _, err := UringMicro(p.Dir, uring.BackendPool, DefaultUringMicroCombos(true), 1<<30, 128, 1, 7); err == nil {
		t.Fatal("read size larger than the edge file accepted")
	}
	if len(DefaultUringMicroCombos(false)) < 6 {
		t.Fatalf("full micro ladder too short: %v", DefaultUringMicroCombos(false))
	}
}
