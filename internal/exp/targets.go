package exp

import (
	"ringsampler/internal/sample"
)

// UniformTargets draws n uniform target nodes from [0, numNodes)
// through the caller's RNG stream. Every experiment workload routes
// target generation through here so the draw is 64-bit clean: the old
// per-site `rng.Uint32n(uint32(numNodes))` pattern silently truncated
// the node count before drawing, wrapping the target distribution on
// graphs at or above 2³² nodes. Uint64n consumes the exact RNG value
// Uint32n did for smaller counts and returns the same result, so
// every existing bench digest is unchanged; the cast back to uint32
// is safe because a drawn target is always < numNodes, and node IDs
// only exist within uint32 range.
func UniformTargets(rng *sample.RNG, numNodes int64, n int) []uint32 {
	targets := make([]uint32, n)
	num := uint64(numNodes)
	for i := range targets {
		targets[i] = uint32(rng.Uint64n(num))
	}
	return targets
}
