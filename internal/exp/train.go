package exp

import (
	"context"
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/train"
	"ringsampler/internal/uring"
)

// TrainOptions parameterizes a training sweep on top of the common
// experiment knobs. The model's FeatureDim and Classes always come from
// the dataset manifest — only the architecture and optimizer are free.
type TrainOptions struct {
	Options
	// Epochs per sweep point.
	Epochs int
	// Hidden is the GraphSAGE hidden width; Layers the model depth
	// (must not exceed the sampler fanout depth); LR the SGD step.
	Hidden int
	Layers int
	LR     float32
	// Quick skips the strict overlapped-beats-serialized throughput
	// assertion (timing on a 1-epoch smoke run is pure noise); the
	// determinism assertions always hold.
	Quick bool
}

// TrainPoint is one pipeline×cache configuration of the training sweep.
type TrainPoint struct {
	// Serialized: the no-overlap reference pipeline. FeatCache: whether
	// the hot-node feature cache was enabled (full budget) or off.
	Serialized bool  `json:"serialized"`
	FeatCache  bool  `json:"featCache"`
	CacheBytes int64 `json:"cacheBytes"`
	// Epochs holds the per-epoch training stats in order.
	Epochs []*train.EpochStats `json:"epochs"`
	// FinalLoss/FinalAccuracy/FinalDigest summarize the last epoch;
	// EntriesPerSec is the mean end-to-end throughput across epochs.
	FinalLoss     float64 `json:"finalLoss"`
	FinalAccuracy float64 `json:"finalAccuracy"`
	FinalDigest   string  `json:"finalDigest"`
	EntriesPerSec float64 `json:"entriesPerSec"`
}

// TrainSweep trains the same model over the same epoch workload through
// four pipeline configurations — {overlapped, serialized} × {feature
// cache off, full} — and verifies the training determinism contract as
// it goes: every point must finish with bit-identical weights, losses,
// and accuracies (the pipeline mode and the cache may change timings,
// never a single payload byte or gradient). In full (non-quick) runs it
// additionally asserts the point of the double-buffered design: the
// overlapped pipeline's end-to-end throughput strictly beats the
// serialized reference at the same cache setting.
func TrainSweep(ds *storage.Dataset, o TrainOptions, backend uring.Backend, seed uint64) ([]TrainPoint, error) {
	if !ds.HasFeatures() || !ds.HasLabels() {
		return nil, fmt.Errorf("exp: train sweep needs a dataset with features and labels")
	}
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: train sweep needs positive target count, got %d", o.Targets)
	}
	if o.Epochs <= 0 {
		return nil, fmt.Errorf("exp: train sweep needs positive epoch count, got %d", o.Epochs)
	}
	labels, err := ds.Labels()
	if err != nil {
		return nil, err
	}
	rng := sample.NewRNG(sample.Mix(seed, 0x7ea14))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

	modes := []struct {
		serialized bool
		featCache  bool
	}{
		{false, false},
		{true, false},
		{false, true},
		{true, true},
	}
	// Non-quick runs repeat each point and keep the best throughput —
	// training is deterministic, so reruns are free extra evidence for
	// the timing comparison (the weights must not move between reps) and
	// the best-of-N damps scheduler noise on the thin overlap margins.
	reps := 3
	if o.Quick {
		reps = 1
	}
	out := make([]TrainPoint, 0, len(modes))
	for _, mode := range modes {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.FetchFeatures = true
		if mode.featCache {
			cfg.FeatureCacheBudgetBytes = 1 << 30
		}
		if o.BatchSize > 0 {
			cfg.BatchSize = o.BatchSize
		}
		if o.Threads > 0 {
			cfg.Threads = o.Threads
		}
		var p TrainPoint
		for rep := 0; rep < reps; rep++ {
			s, err := core.New(ds, cfg, backend)
			if err != nil {
				return nil, fmt.Errorf("exp: train sweep: %w", err)
			}
			m, err := train.NewModel(train.Config{
				FeatureDim: ds.FeatureDim(),
				Hidden:     o.Hidden,
				Classes:    ds.NumClasses(),
				Layers:     o.Layers,
				LR:         o.LR,
				Seed:       seed,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: train sweep: %w", err)
			}
			tr := &train.Trainer{Model: m, Labels: labels}
			stats, err := tr.Run(context.Background(), s, targets, o.Epochs, mode.serialized)
			if err != nil {
				return nil, fmt.Errorf("exp: train sweep (serialized=%v featCache=%v): %w",
					mode.serialized, mode.featCache, err)
			}
			last := stats[len(stats)-1]
			var entries, secs float64
			for _, st := range stats {
				entries += float64(st.Sampled)
				secs += st.Seconds
			}
			var eps float64
			if secs > 0 {
				eps = entries / secs
			}
			if rep == 0 {
				p = TrainPoint{
					Serialized:    mode.serialized,
					FeatCache:     mode.featCache,
					Epochs:        stats,
					FinalLoss:     last.Loss,
					FinalAccuracy: last.Accuracy,
					FinalDigest:   last.WeightsDigest,
					EntriesPerSec: eps,
				}
				_, p.CacheBytes = s.FeatureCacheInfo()
				continue
			}
			if last.WeightsDigest != p.FinalDigest {
				return nil, fmt.Errorf("exp: train sweep rep %d retrained to different weights (serialized=%v featCache=%v): %s vs %s",
					rep, mode.serialized, mode.featCache, last.WeightsDigest, p.FinalDigest)
			}
			if eps > p.EntriesPerSec {
				p.EntriesPerSec = eps
			}
		}
		out = append(out, p)
	}

	// Determinism: every point trained through an identical batch stream
	// with fixed-order gradient reduction, so the full loss curve and
	// the final weights must agree bit for bit.
	ref := out[0]
	for _, p := range out[1:] {
		if p.FinalDigest != ref.FinalDigest {
			return nil, fmt.Errorf("exp: train sweep weights diverge: serialized=%v featCache=%v got %s, reference %s",
				p.Serialized, p.FeatCache, p.FinalDigest, ref.FinalDigest)
		}
		for e := range ref.Epochs {
			if p.Epochs[e].Loss != ref.Epochs[e].Loss || p.Epochs[e].Accuracy != ref.Epochs[e].Accuracy {
				return nil, fmt.Errorf("exp: train sweep loss curve diverges at epoch %d: serialized=%v featCache=%v",
					e, p.Serialized, p.FeatCache)
			}
		}
	}
	if !o.Quick {
		for _, fc := range []bool{false, true} {
			over, ser := findTrainPoint(out, false, fc), findTrainPoint(out, true, fc)
			if over.EntriesPerSec <= ser.EntriesPerSec {
				return nil, fmt.Errorf("exp: overlapped pipeline did not beat serialized (featCache=%v): %.0f vs %.0f entries/s",
					fc, over.EntriesPerSec, ser.EntriesPerSec)
			}
		}
	}
	return out, nil
}

func findTrainPoint(points []TrainPoint, serialized, featCache bool) *TrainPoint {
	for i := range points {
		if points[i].Serialized == serialized && points[i].FeatCache == featCache {
			return &points[i]
		}
	}
	return nil
}
