package exp

import (
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// EpochPoint is one thread count of the real-engine scaling sweep —
// the real-I/O companion to the modeled Figure 8 thread sweep.
type EpochPoint struct {
	Threads int
	Stats   core.EpochStats
	// Digest is the folded per-batch digest stream; identical across
	// every point of one sweep by construction (a mismatch aborts the
	// sweep as a determinism bug).
	Digest uint64
}

// EpochScaling runs one fixed epoch workload (o.Targets uniform target
// nodes in o.BatchSize mini-batches, sampling seeded by seed) through
// core.RunEpoch at each thread count on the real engine, and verifies
// thread-count invariance as it goes: every point must reproduce the
// first point's per-batch digest stream bit for bit. A divergence is a
// correctness bug and surfaces as an error, not a data point.
func EpochScaling(ds *storage.Dataset, o Options, backend uring.Backend, threads []int, seed uint64) ([]EpochPoint, error) {
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: epoch scaling needs positive target count, got %d", o.Targets)
	}
	if len(threads) == 0 {
		return nil, fmt.Errorf("exp: epoch scaling needs at least one thread count")
	}
	rng := sample.NewRNG(sample.Mix(seed, 0xe90c))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

	var ref []uint64
	out := make([]EpochPoint, 0, len(threads))
	for _, th := range threads {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Threads = th
		if o.BatchSize > 0 {
			cfg.BatchSize = o.BatchSize
		}
		s, err := core.New(ds, cfg, backend)
		if err != nil {
			return nil, fmt.Errorf("exp: epoch scaling at %d threads: %w", th, err)
		}
		st, err := s.RunEpoch(targets, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: epoch scaling at %d threads: %w", th, err)
		}
		if ref == nil {
			ref = st.Digests
		} else {
			if len(ref) != len(st.Digests) {
				return nil, fmt.Errorf("exp: %d threads produced %d batches, reference has %d",
					th, len(st.Digests), len(ref))
			}
			for i := range ref {
				if ref[i] != st.Digests[i] {
					return nil, fmt.Errorf("exp: thread-count invariance violated: batch %d digest differs at %d threads (%#x vs %#x)",
						i, th, st.Digests[i], ref[i])
				}
			}
		}
		var digest uint64
		for _, d := range st.Digests {
			digest = foldDigest(digest, d)
		}
		out = append(out, EpochPoint{Threads: th, Stats: *st, Digest: digest})
	}
	return out, nil
}
