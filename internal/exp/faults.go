package exp

import (
	"fmt"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// FaultPoint is one row of the fault-resilience sweep: the real engine
// sampling through a fault-injecting ring at one fault intensity.
// Identical reports whether the sampled neighborhoods were
// byte-identical to the fault-free run — the invariant the retry path
// exists to protect.
type FaultPoint struct {
	// Rate is the per-request fault intensity the plan was built from.
	Rate float64
	// Entries is the total sampled neighbor entries.
	Entries int64
	// Seconds is the wall-clock sampling time (real I/O, so this is a
	// measurement, not a modeled figure).
	Seconds float64
	// EntriesPerSec is the headline throughput.
	EntriesPerSec float64
	// IO is the worker's retry-path accounting.
	IO core.IOStats
	// Injected counts what the fault ring actually threw at the worker.
	Injected uring.FaultStats
	// Identical is true when the sampled output matches the fault-free
	// digest bit for bit.
	Identical bool
}

// faultPlanAt scales one intensity knob into a full plan: transient
// errnos and short reads at the headline rate, submission rejections
// and completion delays alongside.
func faultPlanAt(rate float64, seed uint64) uring.FaultPlan {
	return uring.FaultPlan{
		Seed:          seed,
		TransientRate: rate,
		ShortReadRate: rate,
		RejectRate:    rate / 2,
		DelayRate:     rate,
	}
}

// FaultSweep runs the same fixed sampling workload (o.Targets nodes in
// o.BatchSize batches, one worker, real engine on real files) once
// fault-free and once per rate with a seeded fault-injecting ring, and
// reports throughput plus retry accounting at each point. All sampling
// randomness is fixed, so every point must produce byte-identical
// neighborhoods; a non-Identical point is a correctness bug, not noise.
func FaultSweep(ds *storage.Dataset, o Options, backend uring.Backend, rates []float64, seed uint64) ([]FaultPoint, error) {
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: fault sweep needs positive target count, got %d", o.Targets)
	}
	refDigest, ref, err := faultRun(ds, o, backend, 0, seed)
	if err != nil {
		return nil, fmt.Errorf("exp: fault-free reference run: %w", err)
	}
	ref.Identical = true
	out := []FaultPoint{ref}
	for _, rate := range rates {
		digest, p, err := faultRun(ds, o, backend, rate, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: fault sweep at rate %v: %w", rate, err)
		}
		p.Identical = digest == refDigest
		out = append(out, p)
	}
	return out, nil
}

// faultRun executes one sweep point and returns the output digest.
func faultRun(ds *storage.Dataset, o Options, backend uring.Backend, rate float64, seed uint64) (uint64, FaultPoint, error) {
	cfg := core.DefaultConfig()
	if o.BatchSize > 0 {
		cfg.BatchSize = o.BatchSize
	}
	var faultRing uring.Ring
	if rate > 0 {
		// The default retry budget is sized for real-world transient
		// rates; at a 20% injected rate an 8-deep fault chain occurs
		// roughly once per ~1500 requests, so give the sweep enough
		// headroom that exhaustion probability is negligible (0.4^64)
		// at every swept intensity.
		cfg.MaxIORetries = 64
		cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
			fr, err := uring.NewFault(r, faultPlanAt(rate, sample.Mix(seed, uint64(workerID))))
			if err != nil {
				return nil, err
			}
			faultRing = fr
			return fr, nil
		}
	}
	s, err := core.New(ds, cfg, backend)
	if err != nil {
		return 0, FaultPoint{}, err
	}
	w, err := s.NewWorker(0)
	if err != nil {
		return 0, FaultPoint{}, err
	}
	defer w.Close()

	rng := sample.NewRNG(sample.Mix(seed, 0xfa))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)
	var digest uint64
	var entries int64
	start := time.Now()
	for at := 0; at < len(targets); at += cfg.BatchSize {
		end := at + cfg.BatchSize
		if end > len(targets) {
			end = len(targets)
		}
		b, err := w.SampleBatch(targets[at:end])
		if err != nil {
			return 0, FaultPoint{}, err
		}
		entries += b.TotalSampled()
		digest = foldDigest(digest, b.Digest())
	}
	secs := time.Since(start).Seconds()
	p := FaultPoint{
		Rate:    rate,
		Entries: entries,
		Seconds: secs,
		IO:      w.IOStats(),
	}
	if secs > 0 {
		p.EntriesPerSec = float64(entries) / secs
	}
	if faultRing != nil {
		p.Injected, _ = uring.Faults(faultRing)
	}
	return digest, p, nil
}

// foldDigest chains per-batch digests (core.Batch.Digest) into one
// stream digest, FNV-1a style so batch order matters.
func foldDigest(acc, d uint64) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < 8; i++ {
		acc = (acc ^ (d >> (8 * i) & 0xff)) * prime
	}
	return acc
}
