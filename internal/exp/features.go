package exp

import (
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// FeaturePoint is one memory budget of the feature-store ablation: a
// fixed epoch workload sampled with the feature stage on, under a
// growing hot-node feature cache budget. The tradeoff mirrors the
// hot-neighbor sweep — pinned feature bytes buy device feature traffic
// — but on the second budget axis and the second file.
type FeaturePoint struct {
	// BudgetBytes is the configured feature-cache budget;
	// CacheNodes/CacheBytes are what the sampler actually pinned.
	BudgetBytes int64
	CacheNodes  int
	CacheBytes  int64
	Stats       core.EpochStats
	// HitRate is FeatCacheHits/(FeatCacheHits+FeatCacheMisses); 0 when
	// the cache is off or the epoch fetched no features.
	HitRate float64
	// Digest is the folded per-batch digest stream (feature payloads
	// included); identical across every point of one sweep by
	// construction — a mismatch aborts the sweep as a cache-visibility
	// bug on the feature path.
	Digest uint64
}

// FeatureSweep runs one fixed epoch workload with the feature-fetch
// stage enabled at each feature-cache budget (which must be
// non-decreasing, so the degree-first prefix rule's superset guarantee
// applies point to point) and verifies the feature cache's two
// contracts as it goes: every point reproduces the first point's
// per-batch digest stream bit for bit — the cache may never change a
// single feature byte — and device feature bytes never increase with
// the budget. A violation surfaces as an error, not a data point.
func FeatureSweep(ds *storage.Dataset, o Options, backend uring.Backend, budgets []int64, seed uint64) ([]FeaturePoint, error) {
	if !ds.HasFeatures() {
		return nil, fmt.Errorf("exp: feature sweep needs a dataset with a feature file")
	}
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: feature sweep needs positive target count, got %d", o.Targets)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("exp: feature sweep needs at least one budget")
	}
	for i := 1; i < len(budgets); i++ {
		if budgets[i] < budgets[i-1] {
			return nil, fmt.Errorf("exp: feature sweep budgets must be non-decreasing, got %d after %d",
				budgets[i], budgets[i-1])
		}
	}
	rng := sample.NewRNG(sample.Mix(seed, 0xfea75))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

	var ref []uint64
	prevDevice := int64(-1)
	out := make([]FeaturePoint, 0, len(budgets))
	for _, budget := range budgets {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.FetchFeatures = true
		cfg.FeatureCacheBudgetBytes = budget
		if o.BatchSize > 0 {
			cfg.BatchSize = o.BatchSize
		}
		if o.Threads > 0 {
			cfg.Threads = o.Threads
		}
		s, err := core.New(ds, cfg, backend)
		if err != nil {
			return nil, fmt.Errorf("exp: feature sweep at budget %d: %w", budget, err)
		}
		st, err := s.RunEpoch(targets, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: feature sweep at budget %d: %w", budget, err)
		}
		if ref == nil {
			ref = st.Digests
		} else {
			if len(ref) != len(st.Digests) {
				return nil, fmt.Errorf("exp: budget %d produced %d batches, reference has %d",
					budget, len(st.Digests), len(ref))
			}
			for i := range ref {
				if ref[i] != st.Digests[i] {
					return nil, fmt.Errorf("exp: feature cache changed the payload: batch %d digest differs at budget %d (%#x vs %#x)",
						i, budget, st.Digests[i], ref[i])
				}
			}
		}
		if prevDevice >= 0 && st.IO.FeatBytesRead > prevDevice {
			return nil, fmt.Errorf("exp: device feature bytes grew with the cache budget: %d bytes at budget %d, %d at the previous point",
				st.IO.FeatBytesRead, budget, prevDevice)
		}
		prevDevice = st.IO.FeatBytesRead
		var digest uint64
		for _, d := range st.Digests {
			digest = foldDigest(digest, d)
		}
		p := FeaturePoint{BudgetBytes: budget, Stats: *st, Digest: digest}
		p.CacheNodes, p.CacheBytes = s.FeatureCacheInfo()
		if lookups := st.IO.FeatCacheHits + st.IO.FeatCacheMisses; lookups > 0 {
			p.HitRate = float64(st.IO.FeatCacheHits) / float64(lookups)
		}
		out = append(out, p)
	}
	return out, nil
}
