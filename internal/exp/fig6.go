package exp

import (
	"fmt"
	"math"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/sample"
)

// Milestone is one point of the Figure 6 latency CDF: by TimeSec,
// Count requests (the Quantile fraction) had completed.
type Milestone struct {
	Quantile float64
	Count    int
	TimeSec  float64
}

// Fig6Result is the on-demand inference sampling workload: a stream of
// single-target requests (mini-batch size 1) served sequentially by
// one modeled worker, with completion-time milestones at P50/P90/P95/
// P99 (paper §4.4).
type Fig6Result struct {
	Requests   int
	Milestones []Milestone
}

var fig6Quantiles = []float64{0.50, 0.90, 0.95, 0.99}

// Fig6 prepares the scaled ogbn-papers dataset under root and runs the
// inference workload with `requests` single-node requests.
func Fig6(root string, o Options, requests int) (*Fig6Result, error) {
	if requests <= 0 {
		return nil, fmt.Errorf("exp: fig6 needs a positive request count, got %d", requests)
	}
	p, err := Prepare(root, "ogbn-papers", o.Divisor, false)
	if err != nil {
		return nil, err
	}
	ds, err := p.Open()
	if err != nil {
		return nil, err
	}
	defer ds.Close()

	cfg := core.DefaultConfig()
	cfg.BatchSize = 1
	cfg.Threads = 1
	dev := device.NVMe()
	wl := sample.NewRNG(sample.Mix(6, 0))
	numNodes := uint32(ds.NumNodes())
	completions := make([]float64, requests)
	var clock float64
	for i := 0; i < requests; i++ {
		sc := core.SimConfig{
			Config:       cfg,
			ScaleDivisor: o.Divisor,
			Targets:      1,
			WorkloadSeed: sample.Mix(uint64(i+1), uint64(wl.Uint32n(numNodes))),
		}
		r := core.RunSim(ds, dev, sc)
		if r.Err != nil {
			return nil, fmt.Errorf("exp: fig6 request %d: %w", i, r.Err)
		}
		clock += r.ModeledSeconds
		completions[i] = clock
	}
	res := &Fig6Result{Requests: requests}
	for _, q := range fig6Quantiles {
		idx := int(math.Ceil(q*float64(requests))) - 1
		if idx < 0 {
			idx = 0
		}
		res.Milestones = append(res.Milestones, Milestone{
			Quantile: q,
			Count:    idx + 1,
			TimeSec:  completions[idx],
		})
	}
	return res, nil
}
