package exp

import (
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// TestFeatureSweepAblation: the feature-store budget sweep on a small
// featureful graph. FeatureSweep itself enforces digest invariance and
// monotone non-increasing device feature bytes; this test checks the
// endpoints — budget 0 serves everything from the device, and an
// unlimited budget pins every node and reaches zero device feature
// traffic.
func TestFeatureSweepAblation(t *testing.T) {
	dir := t.TempDir()
	if _, err := gen.GenerateWith(dir, "feat", "rmat", 3_000, 40_000, 5, gen.Options{FeatureDim: 8}); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := Options{Targets: 256, BatchSize: 64, Threads: 2}
	budgets := []int64{0, 32 << 10, 128 << 10, 1 << 30}
	points, err := FeatureSweep(ds, o, uring.BackendPool, budgets, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(budgets) {
		t.Fatalf("got %d points, want %d", len(points), len(budgets))
	}
	for _, pt := range points {
		t.Logf("budget %d: pinned %d nodes / %d B, hit rate %.3f, device feature bytes %d",
			pt.BudgetBytes, pt.CacheNodes, pt.CacheBytes, pt.HitRate, pt.Stats.IO.FeatBytesRead)
		if pt.Stats.Sampled == 0 || pt.Stats.Batches != 4 {
			t.Fatalf("budget %d: degenerate stats %+v", pt.BudgetBytes, pt.Stats)
		}
		if pt.Digest != points[0].Digest {
			t.Fatalf("folded digest differs across budgets: %#x vs %#x", pt.Digest, points[0].Digest)
		}
	}
	first, last := points[0], points[len(points)-1]
	if first.CacheNodes != 0 || first.Stats.IO.FeatCacheHits != 0 || first.Stats.IO.FeatCacheBytes != 0 {
		t.Fatalf("budget 0 point has feature-cache traffic: %+v", first.Stats.IO)
	}
	if first.Stats.IO.FeatBytesRead == 0 {
		t.Fatal("budget 0 point read no feature bytes — the stage did not run")
	}
	if last.CacheNodes != int(ds.NumNodes()) {
		t.Fatalf("unlimited budget pinned %d of %d nodes", last.CacheNodes, ds.NumNodes())
	}
	if last.Stats.IO.FeatBytesRead != 0 || last.HitRate != 1 {
		t.Fatalf("unlimited-budget point still touched the device: %+v", last.Stats.IO)
	}
	// The feature cache must leave edge traffic alone: adjacency device
	// bytes are identical at every point.
	for _, pt := range points {
		if pt.Stats.IO.BytesRead != first.Stats.IO.BytesRead {
			t.Fatalf("feature budget changed EDGE device bytes: %d vs %d",
				pt.Stats.IO.BytesRead, first.Stats.IO.BytesRead)
		}
	}

	if _, err := FeatureSweep(ds, o, uring.BackendPool, []int64{1 << 20, 0}, 7); err == nil {
		t.Fatal("decreasing budget list accepted")
	}

	// An edge-only dataset cannot run the feature sweep.
	plainDir := t.TempDir()
	if _, err := gen.Generate(plainDir, "plain", "rmat", 500, 4_000, 5); err != nil {
		t.Fatal(err)
	}
	plain, err := storage.Open(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := FeatureSweep(plain, o, uring.BackendPool, budgets, 7); err == nil {
		t.Fatal("edge-only dataset accepted")
	}
}
