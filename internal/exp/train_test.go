package exp

import (
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// TestTrainSweepQuick: the training benchmark sweep on a small labeled
// graph in quick mode (determinism assertions only — a tiny in-memory
// run carries no meaningful timing signal). TrainSweep itself enforces
// bit-identical weights and loss curves across all four pipeline×cache
// points; the test checks the sweep's shape and that training moved.
func TestTrainSweepQuick(t *testing.T) {
	dir := t.TempDir()
	if _, err := gen.GenerateWith(dir, "trainexp", "rmat", 2_500, 35_000, 21,
		gen.Options{FeatureDim: 8, NumClasses: 4}); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	o := TrainOptions{
		Options: Options{Targets: 256, BatchSize: 64, Threads: 2},
		Epochs:  2, Hidden: 8, Layers: 2, LR: 0.5, Quick: true,
	}
	points, err := TrainSweep(ds, o, uring.BackendPool, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		t.Logf("serialized=%v featCache=%v: loss %.4f acc %.3f %.0f entries/s digest %s",
			p.Serialized, p.FeatCache, p.FinalLoss, p.FinalAccuracy, p.EntriesPerSec, p.FinalDigest)
		if len(p.Epochs) != o.Epochs {
			t.Fatalf("point has %d epochs, want %d", len(p.Epochs), o.Epochs)
		}
		if p.FinalDigest != points[0].FinalDigest {
			t.Fatalf("weights digest differs across points: %s vs %s", p.FinalDigest, points[0].FinalDigest)
		}
		if p.FinalLoss <= 0 || p.EntriesPerSec <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.FeatCache && p.CacheBytes == 0 {
			t.Fatal("featCache point pinned no bytes")
		}
		if !p.FeatCache && p.CacheBytes != 0 {
			t.Fatalf("cache-off point pinned %d bytes", p.CacheBytes)
		}
	}
	for _, p := range points[1:] {
		if p.Epochs[1].Loss != points[0].Epochs[1].Loss {
			t.Fatal("loss curve differs across points")
		}
	}
	// Training across both epochs improved on the first epoch's loss.
	if points[0].Epochs[1].Loss >= points[0].Epochs[0].Loss {
		t.Fatalf("loss did not decrease: %.4f -> %.4f",
			points[0].Epochs[0].Loss, points[0].Epochs[1].Loss)
	}

	// An unlabeled dataset is rejected up front.
	plainDir := t.TempDir()
	if _, err := gen.GenerateWith(plainDir, "plain", "rmat", 500, 4_000, 5, gen.Options{FeatureDim: 8}); err != nil {
		t.Fatal(err)
	}
	plain, err := storage.Open(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := TrainSweep(plain, o, uring.BackendPool, 7); err == nil {
		t.Fatal("unlabeled dataset accepted")
	}
}
