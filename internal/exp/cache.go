package exp

import (
	"fmt"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// CachePoint is one memory budget of the hot-neighbor cache ablation —
// the paper's Fig-5-style memory/I-O tradeoff run on the real engine:
// a fixed epoch workload sampled under a growing cache budget, trading
// pinned memory for device traffic without moving a single sampled
// byte.
type CachePoint struct {
	// BudgetBytes is the configured cache budget; CacheNodes/CacheBytes
	// are what the sampler actually pinned under it.
	BudgetBytes int64
	CacheNodes  int
	CacheBytes  int64
	Stats       core.EpochStats
	// HitRate is CacheHits/(CacheHits+CacheMisses); 0 when the cache is
	// off or the epoch made no lookups.
	HitRate float64
	// Digest is the folded per-batch digest stream; identical across
	// every point of one sweep by construction (a mismatch aborts the
	// sweep as a cache-visibility bug).
	Digest uint64
}

// CacheSweep runs one fixed epoch workload through core.RunEpoch at
// each cache budget (which must be non-decreasing, so the prefix rule's
// superset guarantee applies point to point) and verifies the cache's
// two contracts as it goes: every point reproduces the first point's
// per-batch digest stream bit for bit, and device bytes never increase
// with the budget. A violation surfaces as an error, not a data point.
func CacheSweep(ds *storage.Dataset, o Options, backend uring.Backend, budgets []int64, seed uint64) ([]CachePoint, error) {
	if o.Targets <= 0 {
		return nil, fmt.Errorf("exp: cache sweep needs positive target count, got %d", o.Targets)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("exp: cache sweep needs at least one budget")
	}
	for i := 1; i < len(budgets); i++ {
		if budgets[i] < budgets[i-1] {
			return nil, fmt.Errorf("exp: cache sweep budgets must be non-decreasing, got %d after %d",
				budgets[i], budgets[i-1])
		}
	}
	rng := sample.NewRNG(sample.Mix(seed, 0xcac4e))
	targets := UniformTargets(&rng, ds.NumNodes(), o.Targets)

	var ref []uint64
	prevDevice := int64(-1)
	out := make([]CachePoint, 0, len(budgets))
	for _, budget := range budgets {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.CacheBudgetBytes = budget
		if o.BatchSize > 0 {
			cfg.BatchSize = o.BatchSize
		}
		if o.Threads > 0 {
			cfg.Threads = o.Threads
		}
		s, err := core.New(ds, cfg, backend)
		if err != nil {
			return nil, fmt.Errorf("exp: cache sweep at budget %d: %w", budget, err)
		}
		st, err := s.RunEpoch(targets, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: cache sweep at budget %d: %w", budget, err)
		}
		if ref == nil {
			ref = st.Digests
		} else {
			if len(ref) != len(st.Digests) {
				return nil, fmt.Errorf("exp: budget %d produced %d batches, reference has %d",
					budget, len(st.Digests), len(ref))
			}
			for i := range ref {
				if ref[i] != st.Digests[i] {
					return nil, fmt.Errorf("exp: cache changed the samples: batch %d digest differs at budget %d (%#x vs %#x)",
						i, budget, st.Digests[i], ref[i])
				}
			}
		}
		if prevDevice >= 0 && st.IO.BytesRead > prevDevice {
			return nil, fmt.Errorf("exp: device bytes grew with the cache budget: %d bytes at budget %d, %d at the previous point",
				st.IO.BytesRead, budget, prevDevice)
		}
		prevDevice = st.IO.BytesRead
		var digest uint64
		for _, d := range st.Digests {
			digest = foldDigest(digest, d)
		}
		p := CachePoint{BudgetBytes: budget, Stats: *st, Digest: digest}
		p.CacheNodes, p.CacheBytes = s.CacheInfo()
		if lookups := st.IO.CacheHits + st.IO.CacheMisses; lookups > 0 {
			p.HitRate = float64(st.IO.CacheHits) / float64(lookups)
		}
		out = append(out, p)
	}
	return out, nil
}
