// Package exp is the experiment harness behind the benchmark suite:
// dataset preparation at any scale divisor, per-system modeled epoch
// runs (Figure 4/5/7/8), and the inference latency workload (Figure 6).
package exp

import (
	"fmt"
	"hash/fnv"
	"path/filepath"

	"ringsampler/internal/gen"
	"ringsampler/internal/graph"
	"ringsampler/internal/storage"
)

// Options are the common knobs of a scaled experiment run.
type Options struct {
	// Divisor scales the paper's dataset sizes and memory budgets.
	Divisor int
	// Targets is the epoch's target-node count.
	Targets int
	// BatchSize is the mini-batch size.
	BatchSize int
	// Threads is the modeled worker count.
	Threads int
}

// paperDataset holds the full-scale |V| and |E| of a paper Table 1
// dataset; Prepare divides both by the scale divisor.
type paperDataset struct {
	Nodes, Edges int64
}

// Every prepared dataset carries node features and training labels at
// these shapes, so the feature-store and training benchmarks run on the
// same checked-in graph as the structural ones. Baked into verify():
// an older feature-less checkout fails verification and regenerates.
const (
	benchFeatureDim = 16
	benchNumClasses = 8
)

var paperDatasets = map[string]paperDataset{
	"ogbn-papers": {Nodes: 111_000_000, Edges: 1_600_000_000},
	"friendster":  {Nodes: 65_000_000, Edges: 3_600_000_000},
	"yahoo":       {Nodes: 1_400_000_000, Edges: 6_600_000_000},
	"synthetic":   {Nodes: 134_000_000, Edges: 8_200_000_000},
}

// Prepared is a verified on-disk scaled dataset.
type Prepared struct {
	Dir      string
	Manifest graph.Manifest
}

// Open opens the prepared dataset for sampling.
func (p *Prepared) Open() (*storage.Dataset, error) {
	return storage.Open(p.Dir)
}

// Prepare returns the scaled dataset `name-div<divisor>` under root,
// reusing checked-in files whenever they verify against their
// manifest (node/edge counts and exact file sizes). Only when the
// directory is missing, fails verification, or regen is forced does it
// rebuild — deterministically, so a rebuilt dataset is byte-identical
// to the checked-in one.
func Prepare(root, name string, divisor int, regen bool) (*Prepared, error) {
	spec, ok := paperDatasets[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown dataset %q", name)
	}
	if divisor <= 0 {
		return nil, fmt.Errorf("exp: divisor must be positive, got %d", divisor)
	}
	nodes := spec.Nodes / int64(divisor)
	edges := spec.Edges / int64(divisor)
	if nodes <= 0 || edges <= 0 {
		return nil, fmt.Errorf("exp: divisor %d collapses %s to %d nodes / %d edges", divisor, name, nodes, edges)
	}
	dir := filepath.Join(root, fmt.Sprintf("%s-div%d", name, divisor))
	if !regen {
		if man, err := verify(dir, name, nodes, edges); err == nil {
			return &Prepared{Dir: dir, Manifest: man}, nil
		}
	}
	opts := gen.Options{FeatureDim: benchFeatureDim, NumClasses: benchNumClasses}
	if _, err := gen.GenerateWith(dir, name, "rmat", nodes, edges, datasetSeed(name, divisor), opts); err != nil {
		return nil, fmt.Errorf("exp: generate %s: %w", dir, err)
	}
	man, err := verify(dir, name, nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("exp: freshly generated dataset fails verification: %w", err)
	}
	return &Prepared{Dir: dir, Manifest: man}, nil
}

// verify opens the dataset (storage.Open validates file sizes and
// offset-index consistency) and checks it is the graph Prepare would
// build: right name, right scaled counts.
func verify(dir, name string, nodes, edges int64) (graph.Manifest, error) {
	ds, err := storage.Open(dir)
	if err != nil {
		return graph.Manifest{}, err
	}
	defer ds.Close()
	man := ds.Manifest()
	if man.Name != name {
		return man, fmt.Errorf("exp: dataset %s is %q, want %q", dir, man.Name, name)
	}
	if man.NumNodes != nodes || man.NumEdges != edges {
		return man, fmt.Errorf("exp: dataset %s has %d nodes / %d edges, want %d / %d",
			dir, man.NumNodes, man.NumEdges, nodes, edges)
	}
	if man.FeatureDim != benchFeatureDim || man.NumClasses != benchNumClasses {
		return man, fmt.Errorf("exp: dataset %s has featureDim %d / numClasses %d, want %d / %d",
			dir, man.FeatureDim, man.NumClasses, benchFeatureDim, benchNumClasses)
	}
	return man, nil
}

// datasetSeed derives the deterministic generation seed for a scaled
// dataset, so every checkout regenerates identical bytes.
func datasetSeed(name string, divisor int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s-div%d", name, divisor)
	return h.Sum64()
}
