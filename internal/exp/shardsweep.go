package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/serve"
	"ringsampler/internal/shard"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// ShardSweepConfig drives the sharded-serving sweep: for each shard
// count the dataset is partitioned (count 1 runs today's single-node
// server), a front end is booted on a loopback listener, and two
// phases run — a sequential conformance pass asserting every shard
// count returns digest-identical responses for a fixed request matrix,
// then a closed-loop throughput measurement.
type ShardSweepConfig struct {
	// Serve configures both the single-node server and, via its Core,
	// every shard engine and the router front end.
	Serve serve.Config
	// Shards are the partition sizes to sweep, e.g. {1, 2, 4}.
	Shards []int
	// Clients is the closed-loop concurrency of the throughput phase;
	// RequestsPerClient how many requests each client issues.
	Clients           int
	RequestsPerClient int
	// TargetsPerRequest is the request size; Fanouts the per-layer
	// sample counts (empty: the server's configured fanouts).
	TargetsPerRequest int
	Fanouts           []int
	// Seed derives the conformance matrix and every load request.
	Seed uint64
}

// ShardSweepPoint is one shard count's results.
type ShardSweepPoint struct {
	Shards int `json:"shards"`
	// Conformance: how many matrix requests were digest-checked against
	// the 1-shard baseline (the sweep errors out on any mismatch, so a
	// written point always passed).
	ConformanceRequests int `json:"conformance_requests"`
	// Throughput phase.
	OK         int     `json:"ok"`
	Requests   int     `json:"requests"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"throughput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// ShardSweepResult is the machine-readable sweep summary
// (benchdata/BENCH_shard.json in CI).
type ShardSweepResult struct {
	Backend    string            `json:"backend"`
	Threads    int               `json:"threads"`
	Clients    int               `json:"clients"`
	PerClient  int               `json:"requests_per_client"`
	Targets    int               `json:"targets_per_request"`
	Strategies []string          `json:"strategies"`
	Features   bool              `json:"features"`
	Points     []ShardSweepPoint `json:"points"`
}

// frontend is what both serve.Server and serve.RouterServer offer the
// sweep — boot on a listener, drain on the way out.
type frontend interface {
	Serve(net.Listener) error
	Shutdown(context.Context) error
}

// ShardSweep runs the sweep over the dataset in dir. It needs the
// directory rather than an open dataset because each shard count > 1
// physically partitions the files into a temporary directory. Any
// conformance divergence is an error, not a data point: a sharded
// deployment that answers differently from a single node is broken,
// not slow.
func ShardSweep(dir string, cfg ShardSweepConfig) (*ShardSweepResult, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("exp: shard sweep needs at least one shard count")
	}
	if cfg.Shards[0] != 1 {
		return nil, fmt.Errorf("exp: shard sweep needs shard count 1 first (the conformance baseline), got %v", cfg.Shards)
	}
	if cfg.Clients <= 0 || cfg.RequestsPerClient <= 0 || cfg.TargetsPerRequest <= 0 {
		return nil, fmt.Errorf("exp: shard sweep needs positive clients/requests/targets, got %d/%d/%d",
			cfg.Clients, cfg.RequestsPerClient, cfg.TargetsPerRequest)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	hasFeatures := ds.HasFeatures()
	numNodes := ds.NumNodes()
	ds.Close()

	strategies := []string{core.StrategyUniform, core.StrategyWeighted, core.StrategyWalk}
	res := &ShardSweepResult{
		Clients:    cfg.Clients,
		PerClient:  cfg.RequestsPerClient,
		Targets:    cfg.TargetsPerRequest,
		Strategies: strategies,
		Features:   hasFeatures,
	}

	// The fixed conformance matrix: strategies × features over one
	// deterministic target set.
	rng := sample.NewRNG(sample.Mix(cfg.Seed, 0xC0))
	matrixTargets := UniformTargets(&rng, numNodes, cfg.TargetsPerRequest)
	featureCases := []bool{false}
	if hasFeatures {
		featureCases = append(featureCases, true)
	}

	baseline := map[string]string{} // "strategy/features" -> digest
	for _, n := range cfg.Shards {
		if n < 1 {
			return nil, fmt.Errorf("exp: shard count %d must be positive", n)
		}
		point, err := shardSweepPoint(dir, cfg, n, numNodes, strategies, featureCases, matrixTargets, baseline)
		if err != nil {
			return nil, fmt.Errorf("exp: shard sweep at %d shards: %w", n, err)
		}
		res.Backend = string(cfg.Serve.Backend)
		res.Threads = cfg.Serve.Core.Threads
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

// shardSweepPoint boots the front end for one shard count, runs the
// conformance matrix (filling baseline at count 1, checking against it
// after), then the closed-loop throughput phase.
func shardSweepPoint(dir string, cfg ShardSweepConfig, n int, numNodes int64, strategies []string, featureCases []bool, matrixTargets []uint32, baseline map[string]string) (*ShardSweepPoint, error) {
	be := cfg.Serve.Backend
	if be == "" {
		if uring.Probe().Ring {
			be = uring.BackendIOURing
		} else {
			be = uring.BackendPool
		}
		cfg.Serve.Backend = be
	}

	var fe frontend
	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	if n == 1 {
		ds, err := storage.Open(dir)
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { ds.Close() })
		srv, err := serve.New(ds, cfg.Serve)
		if err != nil {
			closeAll()
			return nil, err
		}
		fe = srv
	} else {
		tmp, err := os.MkdirTemp("", "ringsampler-shards-")
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { os.RemoveAll(tmp) })
		dirs, err := gen.Partition(dir, tmp, n)
		if err != nil {
			closeAll()
			return nil, err
		}
		engines := make([]shard.Engine, len(dirs))
		for i, sdir := range dirs {
			sds, err := storage.Open(sdir)
			if err != nil {
				closeAll()
				return nil, err
			}
			closers = append(closers, func() { sds.Close() })
			scfg := cfg.Serve.Core
			if !sds.HasFeatures() {
				scfg.FeatureCacheBudgetBytes = 0
			}
			eng, err := shard.NewLocal(sds, scfg, be)
			if err != nil {
				closeAll()
				return nil, err
			}
			engines[i] = eng
		}
		// The router server owns the engines; the datasets stay ours.
		srv, err := serve.NewRouter(engines, cfg.Serve)
		if err != nil {
			for _, e := range engines {
				e.Close()
			}
			closeAll()
			return nil, err
		}
		fe = srv
	}
	defer closeAll()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go fe.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	}()
	url := "http://" + ln.Addr().String() + "/v1/sample"
	client := &http.Client{Timeout: 2 * time.Minute}

	// Phase A: conformance. Digest equality against the 1-shard
	// baseline, per strategy × features.
	point := &ShardSweepPoint{Shards: n}
	for _, strat := range strategies {
		for _, features := range featureCases {
			key := fmt.Sprintf("%s/features=%v", strat, features)
			digest, err := postForDigest(client, url, map[string]any{
				"targets":  matrixTargets,
				"fanouts":  cfg.Fanouts,
				"seed":     sample.Mix(cfg.Seed, 0xD1),
				"strategy": strat,
				"features": features,
			})
			if err != nil {
				return nil, fmt.Errorf("conformance %s: %w", key, err)
			}
			if n == 1 {
				baseline[key] = digest
			} else if digest != baseline[key] {
				return nil, fmt.Errorf("conformance %s: %d-shard digest %s != single-node %s",
					key, n, digest, baseline[key])
			}
			point.ConformanceRequests++
		}
	}

	// Phase B: closed-loop throughput. Every client re-posts the moment
	// its previous request returns; offered load is the concurrency.
	type tally struct {
		ok   int
		lats []time.Duration
		err  error
	}
	tallies := make([]tally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tl := &tallies[c]
			hc := &http.Client{Timeout: 2 * time.Minute}
			rng := sample.NewRNG(sample.Mix(cfg.Seed, uint64(n)<<32|uint64(c)))
			for r := 0; r < cfg.RequestsPerClient; r++ {
				targets := UniformTargets(&rng, numNodes, cfg.TargetsPerRequest)
				body, err := json.Marshal(map[string]any{
					"targets": targets,
					"fanouts": cfg.Fanouts,
					"seed":    sample.Mix(cfg.Seed, uint64(c)<<32|uint64(r)),
				})
				if err != nil {
					tl.err = err
					return
				}
				t0 := time.Now()
				resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					tl.err = err
					return
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					tl.ok++
					tl.lats = append(tl.lats, time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lats []time.Duration
	for c := range tallies {
		tl := &tallies[c]
		if tl.err != nil {
			return nil, tl.err
		}
		point.OK += tl.ok
		lats = append(lats, tl.lats...)
	}
	point.Requests = cfg.Clients * cfg.RequestsPerClient
	point.Seconds = elapsed
	if elapsed > 0 {
		point.Throughput = float64(point.OK) / elapsed
	}
	sortDurations(lats)
	point.P50MS = quantileMS(lats, 0.50)
	point.P99MS = quantileMS(lats, 0.99)
	return point, nil
}

// postForDigest posts one request and returns the response digest.
func postForDigest(client *http.Client, url string, req map[string]any) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Digest string `json:"digest"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
	return out.Digest, nil
}

// sortDurations is a tiny helper so the quantile code reads clearly.
func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
