package exp

import (
	"testing"

	"ringsampler/internal/uring"
)

// TestUringSweepAblation: the full knob ladder on the checked-in
// dataset through the pool backend — every combination must reproduce
// the plain digest (the sweep enforces it), report positive throughput,
// and be honest in its Active string about which knobs actually ran
// (pool emulates fixed buffers, ignores regfiles/sqpoll, and O_DIRECT
// depends on the filesystem).
func TestUringSweepAblation(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	combos := DefaultUringCombos(false)
	o := Options{Targets: 256, BatchSize: 64, Threads: 2}
	points, err := UringSweep(p.Dir, o, uring.BackendPool, combos, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(combos) {
		t.Fatalf("got %d points, want %d", len(points), len(combos))
	}
	if points[0].Combo != "plain" || points[0].Active != "plain" {
		t.Fatalf("first point is %q (active %q), want plain", points[0].Combo, points[0].Active)
	}
	for _, pt := range points {
		t.Logf("%-40s %10.0f entries/s  %6.1f syscalls/batch  %8d device B  active=%s",
			pt.Combo, pt.EntriesPerSec, pt.SyscallsPerBatch, pt.DeviceBytes, pt.Active)
		if pt.EntriesPerSec <= 0 || pt.Batches != 4 {
			t.Fatalf("%s: degenerate point %+v", pt.Combo, pt)
		}
		if pt.Digest != points[0].Digest {
			t.Fatalf("%s: digest %#x differs from plain %#x", pt.Combo, pt.Digest, points[0].Digest)
		}
		if pt.SyscallsPerBatch <= 0 {
			t.Fatalf("%s: zero syscalls per batch", pt.Combo)
		}
		if pt.Knobs.Fixed && pt.FixedReads == 0 {
			t.Fatalf("%s: fixed requested (pool emulates) but zero fixed reads", pt.Combo)
		}
		if !pt.Knobs.Fixed && pt.FixedReads != 0 {
			t.Fatalf("%s: fixed off but %d fixed reads", pt.Combo, pt.FixedReads)
		}
		// Pool never runs the real-only knobs, whatever was requested.
		for _, banned := range []string{"regfiles", "sqpoll"} {
			if containsKnob(pt.Active, banned) {
				t.Fatalf("%s: pool backend claims active %q", pt.Combo, pt.Active)
			}
		}
		if containsKnob(pt.Active, "odirect") && pt.DeviceBytes <= points[0].DeviceBytes {
			t.Fatalf("%s: O_DIRECT active but device bytes %d carry no alignment slack over plain's %d",
				pt.Combo, pt.DeviceBytes, points[0].DeviceBytes)
		}
	}
}

func containsKnob(active, knob string) bool {
	for _, part := range splitPlus(active) {
		if part == knob {
			return true
		}
	}
	return false
}

func splitPlus(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func TestUringSweepGuards(t *testing.T) {
	p, err := Prepare(benchRoot, "ogbn-papers", 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UringSweep(p.Dir, Options{Targets: 0}, uring.BackendPool, DefaultUringCombos(true), 1, 7); err == nil {
		t.Fatal("zero targets accepted")
	}
	if _, err := UringSweep(p.Dir, Options{Targets: 16}, uring.BackendPool, nil, 1, 7); err == nil {
		t.Fatal("empty combo list accepted")
	}
	if len(DefaultUringCombos(true)) != 2 {
		t.Fatalf("quick combos = %v, want plain+fixed", DefaultUringCombos(true))
	}
}
