package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/shard"
)

// RouterServer is the scatter/gather front end of a sharded
// deployment: the same POST /v1/sample API as Server, answered by
// fanning each chunk's layers out to the partition's shard engines
// through a shard.Router instead of a local worker pool. It holds no
// graph bytes and no RNG, so any number of router replicas can front
// the same shards; the response for (targets, fanouts, seed, strategy)
// is byte-identical — digest included — to a single-node Server over
// the unpartitioned dataset (DESIGN.md §12).
//
// The serving knobs reused from Config: MaxTargetsPerRequest,
// MaxFanoutLayers, MaxFanout, Default/MaxTimeout, Core.BatchSize (the
// chunking granularity of the determinism contract), Core.Fanouts and
// Core.Strategy (request defaults). Queue/batch-window knobs do not
// apply — chunks go straight to the shards, which do their own worker
// leasing — so queue metrics read zero.
type RouterServer struct {
	cfg Config
	rt  *shard.Router
	met *metrics

	http     *http.Server
	draining atomic.Bool
	handlers sync.WaitGroup
	// baseCtx force-cancels every in-flight request when a drain
	// deadline expires.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	shutOnce   sync.Once
	shutErr    error
}

// NewRouter validates that the engines tile the graph (shard.NewRouter
// does the partition checks) and returns a serving front end over
// them. The engines are owned by the router server from here on:
// Shutdown closes them.
func NewRouter(engines []shard.Engine, cfg Config) (*RouterServer, error) {
	if len(cfg.Core.Fanouts) == 0 {
		cfg.Core.Fanouts = core.DefaultConfig().Fanouts
	}
	if cfg.Core.BatchSize == 0 {
		cfg.Core.BatchSize = core.DefaultConfig().BatchSize
	}
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !core.ValidStrategy(cfg.Core.Strategy) {
		return nil, fmt.Errorf("serve: unknown default strategy %q", cfg.Core.Strategy)
	}
	rt, err := shard.NewRouter(engines)
	if err != nil {
		return nil, err
	}
	s := &RouterServer{cfg: cfg, rt: rt, met: newMetrics()}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", s.handleSample)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.http = &http.Server{Handler: mux}
	return s, nil
}

// Config returns the effective (default-filled) config.
func (s *RouterServer) Config() Config { return s.cfg }

// Router exposes the underlying scatter/gather router.
func (s *RouterServer) Router() *shard.Router { return s.rt }

// IOStats sums the engines' ring-level counters (zeros from remote
// engines — their counters live in their own servers' /metrics).
func (s *RouterServer) IOStats() core.IOStats { return s.rt.Stats() }

// Serve accepts connections on ln until Shutdown; returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *RouterServer) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// Shutdown drains gracefully, force-canceling in-flight requests when
// ctx expires first, then closes the shard engines. Safe to call once;
// later calls return the first result.
func (s *RouterServer) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		err := s.http.Shutdown(ctx)
		if err != nil {
			s.cancelBase()
			s.http.Close()
		}
		s.handlers.Wait()
		if cerr := s.rt.Close(); err == nil {
			err = cerr
		}
		s.cancelBase()
		s.shutErr = err
	})
	return s.shutErr
}

func (s *RouterServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *RouterServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.rt.Stats(), 0, 0)
}

func (s *RouterServer) badRequest(w http.ResponseWriter, msg string) {
	s.met.badRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func (s *RouterServer) handleSample(w http.ResponseWriter, r *http.Request) {
	s.handlers.Add(1)
	defer s.handlers.Done()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	var req sampleRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, "malformed JSON: "+err.Error())
		return
	}
	fanouts, timeout, verr := s.cfg.validateSample(r, &req, s.rt.NumNodes(), s.rt.HasFeatures())
	if verr != nil {
		s.badRequest(w, verr.Error())
		return
	}
	// Resolve the default here, before the strategy name fans out to the
	// shards: every shard must replay under the same explicit name.
	strategy := req.Strategy
	if strategy == "" {
		strategy = s.cfg.Core.Strategy
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	t0 := time.Now()
	s.met.requests.Add(1)
	if req.Features {
		s.met.featureRequests.Add(1)
	}

	// Same chunking as the pooled server: chunk ci samples under
	// Mix(seed, ci). Chunks are independent whole pipelines, so they
	// fan out concurrently; each one scatters its layers to the shards.
	chunkSize := s.cfg.Core.BatchSize
	numChunks := (len(req.Targets) + chunkSize - 1) / chunkSize
	batches := make([]*core.Batch, numChunks)
	errs := make([]error, numChunks)
	var wg sync.WaitGroup
	for ci := 0; ci < numChunks; ci++ {
		lo := ci * chunkSize
		hi := min(lo+chunkSize, len(req.Targets))
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			batches[ci], errs[ci] = s.rt.SampleChunk(ctx, req.Targets[lo:hi], fanouts,
				shard.MixChunkSeed(req.Seed, ci), strategy, req.Features)
		}(ci, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			failCanceled(w, ctx, s.met)
			return
		}
		s.met.sampleErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "sampling failed: " + err.Error()})
		return
	}

	resp := buildResponse(batches, t0)
	s.met.responsesOK.Add(1)
	s.met.requestLat.Observe(time.Since(t0).Nanoseconds())
	writeJSON(w, http.StatusOK, resp)
}
