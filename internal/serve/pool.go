package serve

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"ringsampler/internal/core"
)

// errNoWorker surfaces when a pool slot cannot obtain a ring-backed
// worker (creation failed and the lazy retry failed too). The request
// fails; the slot stays alive and retries on the next job.
var errNoWorker = errors.New("serve: no worker available in this pool slot")

// group is one micro-batch: the jobs a dispatch window coalesced,
// executed back to back on a single leased worker.
type group []*job

// pool is a fixed set of OS-thread-pinned core workers reused across
// requests. Workers are leased per micro-batch rather than owned per
// epoch: a slot picks up a group, runs every job on its private worker,
// and goes back for more. A worker whose ring cannot be proven empty
// after a failed batch (core.ErrWorkerBroken semantics) is retired —
// its IOStats merged into the aggregate, never dropped — and replaced
// with a fresh worker on a fresh ring.
type pool struct {
	s      *core.Sampler
	met    *metrics
	groups chan group
	wg     sync.WaitGroup

	mu      sync.Mutex
	live    []core.IOStats // latest per-slot snapshot
	retired core.IOStats   // merged stats of every retired/closed worker
	nextID  int
}

func newPool(s *core.Sampler, met *metrics, workers int) *pool {
	p := &pool{
		s:      s,
		met:    met,
		groups: make(chan group),
		live:   make([]core.IOStats, workers),
		nextID: workers,
	}
	p.wg.Add(workers)
	for slot := 0; slot < workers; slot++ {
		go p.run(slot)
	}
	return p
}

// Stats returns the pool's merged ring-level I/O counters: every live
// worker's latest snapshot plus everything retired workers accumulated
// before they were replaced (including the StaleDrained counts from
// the quarantines that broke them).
func (p *pool) Stats() core.IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.retired
	for _, ws := range p.live {
		s.Add(ws)
	}
	return s
}

// wait blocks until every slot has exited (the groups channel must be
// closed first) and final worker stats are merged.
func (p *pool) wait() { p.wg.Wait() }

// newWorker allocates a worker with a pool-unique id. The id only
// names the worker in stats — sampling output never depends on it
// because every job reseeds the RNG explicitly.
func (p *pool) newWorker() (*core.Worker, error) {
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	p.mu.Unlock()
	return p.s.NewWorker(id)
}

// publish snapshots a live worker's stats so /metrics stays current
// without per-job locking (one lock per group).
func (p *pool) publish(slot int, w *core.Worker) {
	if w == nil {
		return
	}
	st := w.IOStats()
	p.mu.Lock()
	p.live[slot] = st
	p.mu.Unlock()
}

// retire merges a broken worker's counters into the aggregate, closes
// it, and returns a replacement (nil when replacement creation fails;
// the slot then retries lazily on the next job).
func (p *pool) retire(slot int, w *core.Worker) *core.Worker {
	p.mu.Lock()
	p.retired.Add(w.IOStats())
	p.live[slot] = core.IOStats{}
	p.mu.Unlock()
	w.Close()
	p.met.workersRetired.Add(1)
	nw, err := p.newWorker()
	if err != nil {
		return nil
	}
	return nw
}

// run is one pool slot: pin the OS thread (rings and the Go scheduler
// interact badly when a ring migrates threads), create a private
// worker, and serve micro-batches until the groups channel closes.
func (p *pool) run(slot int) {
	defer p.wg.Done()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	w, _ := p.s.NewWorker(slot)
	for g := range p.groups {
		for _, j := range g {
			p.met.queueDepth.Add(-1)
			if j.ctx.Err() != nil {
				// The request already died (deadline, client gone, or a
				// rejected sibling chunk) — don't burn device time on it.
				p.met.canceledJobs.Add(1)
				j.finish(nil, j.ctx.Err())
				continue
			}
			if w == nil {
				w, _ = p.newWorker()
			}
			if w == nil {
				j.finish(nil, errNoWorker)
				continue
			}
			p.met.queueWait.Observe(time.Since(j.enq).Nanoseconds())
			t0 := time.Now()
			b, err := w.SampleBatchOpts(j.targets, core.BatchOpts{Fanouts: j.fanouts, Seed: j.seed, Features: j.features, Strategy: j.strategy})
			p.met.sampleLat.Observe(time.Since(t0).Nanoseconds())
			j.finish(b, err)
			if err != nil && w.Broken() {
				// PR 4's quarantine path: a ring that could not be proven
				// empty is never reused — retire the worker, keep its
				// stats, lease a fresh one.
				w = p.retire(slot, w)
			}
		}
		p.publish(slot, w)
	}
	if w != nil {
		p.mu.Lock()
		p.retired.Add(w.IOStats())
		p.live[slot] = core.IOStats{}
		p.mu.Unlock()
		w.Close()
	}
}
