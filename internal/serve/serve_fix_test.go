package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringsampler/internal/sample"
	"ringsampler/internal/uring"
)

// TestCheckTargets64BitRange is the regression test for the admission
// range check: the node count must be compared in 64 bits. The old
// code narrowed NumNodes to uint32 first, so a manifest with 2^32+5
// nodes validated targets against 5 — rejecting almost every valid
// target on a graph too large to open in a test, which is why this
// pins the extracted helper against a mocked manifest count.
func TestCheckTargets64BitRange(t *testing.T) {
	huge := int64(1)<<32 + 5 // uint32(huge) == 5
	for _, v := range []uint32{0, 4, 5, 10, 1 << 31, ^uint32(0)} {
		if err := checkTargets([]uint32{v}, huge); err != nil {
			t.Fatalf("target %d rejected on a %d-node graph: %v (truncated comparison?)", v, huge, err)
		}
	}
	if err := checkTargets([]uint32{9, 10}, 10); err == nil {
		t.Fatal("target 10 accepted on a 10-node graph")
	}
	if err := checkTargets([]uint32{9}, 10); err != nil {
		t.Fatalf("target 9 rejected on a 10-node graph: %v", err)
	}
}

// TestServeNegativeTimeoutRejected: a negative timeout_ms is a client
// bug and must be a 400, not a silent substitution of the default.
func TestServeNegativeTimeoutRejected(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendSim
	cfg.Core.Threads = 1
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 10 * time.Second}

	st, data := postSample(t, client, base, sampleRequest{
		Targets: []uint32{1, 2, 3}, Fanouts: []int{5}, Seed: 1, TimeoutMS: -50,
	})
	if st != http.StatusBadRequest {
		t.Fatalf("timeout_ms=-50: status %d, want 400: %s", st, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "timeout_ms") {
		t.Fatalf("error %q does not mention timeout_ms", er.Error)
	}
	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_io_reads_total"); got != 0 {
		t.Fatalf("rejected request reached the engine: %v reads", got)
	}
}

// TestServeForcedShutdownQueueGaugeZero forces a drain (expired
// deadline) while a slow 1-worker server is saturated with multi-chunk
// requests and asserts the queue_depth gauge lands back at exactly
// zero: every admitted job's increment must be released by the pool,
// or by the shutdown abandonment sweep — the leak this PR fixes.
func TestServeForcedShutdownQueueGaugeZero(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 1
	cfg.Core.BatchSize = 16
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &slowRing{Ring: r, delay: 10 * time.Millisecond}, nil
	}
	cfg.QueueDepth = 4096
	cfg.MaxBatchTargets = 16 // one job per micro-batch
	cfg.BatchWindow = time.Millisecond
	srv, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Saturate: 8 concurrent requests × 4 chunks on a worker that needs
	// tens of milliseconds per job, so the queue is deep when the drain
	// deadline (shorter than one job) expires.
	client := &http.Client{Timeout: 60 * time.Second}
	var wg sync.WaitGroup
	var responded atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := sample.NewRNG(sample.Mix(29, uint64(i)))
			targets := make([]uint32, 64)
			for j := range targets {
				targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
			}
			body, _ := json.Marshal(sampleRequest{Targets: targets, Fanouts: []int{6, 4}, Seed: uint64(i)})
			resp, err := client.Post(base+"/v1/sample", "application/json", strings.NewReader(string(body)))
			if err != nil {
				// A forced drain may sever the connection mid-request;
				// the invariant under test is gauge accounting, not
				// client-visible status.
				return
			}
			resp.Body.Close()
			responded.Add(1)
		}(i)
	}
	time.Sleep(15 * time.Millisecond) // let requests be admitted

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		srv.Shutdown(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("forced shutdown hung")
	}
	wg.Wait() // no handler may be left hanging on an abandoned chunk

	if got := srv.met.queueDepth.Load(); got != 0 {
		t.Fatalf("queue_depth gauge = %d after forced shutdown, want 0 (leaked job increments)", got)
	}
	if got := srv.met.inflight.Load(); got != 0 {
		t.Fatalf("inflight gauge = %d after forced shutdown, want 0", got)
	}
	t.Logf("%d/8 requests saw a response during the forced drain", responded.Load())
}

// TestServeNoWorkerCleanError covers the errNoWorker path: when worker
// creation fails (here: the ring wrap refuses), a request must fail
// with a clean 500 naming the condition — never hang — the slot must
// stay alive, and once creation works again the SAME server must serve
// correctly through the lazily retried worker.
func TestServeNoWorkerCleanError(t *testing.T) {
	ds := testDataset(t)
	var refuse atomic.Bool
	refuse.Store(true) // broken from boot: the slot's initial worker also fails
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendSim
	cfg.Core.Threads = 1
	cfg.Core.BatchSize = 64
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		if refuse.Load() {
			return nil, errors.New("injected: ring construction refused")
		}
		return r, nil
	}
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 15 * time.Second}

	req := sampleRequest{Targets: []uint32{1, 2, 3, 4}, Fanouts: []int{6, 4}, Seed: 9}
	st, data := postSample(t, client, base, req)
	if st != http.StatusInternalServerError {
		t.Fatalf("no-worker request: status %d, want 500: %s", st, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "no worker available") {
		t.Fatalf("error %q does not surface the no-worker condition", er.Error)
	}

	// Creation works again: the pool slot must lazily acquire a worker
	// on the next job — no restart, no dead slot.
	refuse.Store(false)
	st, data = postSample(t, client, base, req)
	if st != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", st, data)
	}
	want := referenceBatches(t, ds, cfg.Core, cfg.Backend, req, cfg.Core.BatchSize)
	assertResponseMatches(t, "post-recovery request", data, want)

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_errors_total"); got != 1 {
		t.Fatalf("errors_total = %v, want 1", got)
	}
	if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != 1 {
		t.Fatalf("responses_ok_total = %v, want 1", got)
	}
}
