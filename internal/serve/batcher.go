package serve

import (
	"context"
	"sync"
	"time"

	"ringsampler/internal/core"
)

// job is one engine mini-batch of one request: a chunk of at most
// Core.BatchSize of the request's targets, with the chunk-derived RNG
// seed (sample.Mix(request seed, chunk index)). Chunks from different
// requests coalesce into micro-batches, but each job reseeds the
// worker's RNG, so its samples are a pure function of (dataset,
// targets, fanouts, seed) — never of what else rode the same batch.
type job struct {
	ctx      context.Context
	targets  []uint32
	fanouts  []int
	seed     uint64
	features bool   // run the feature stage for this chunk
	strategy string // draw strategy (validated at admission; "" = server default)
	enq      time.Time
	chunk    int
	req      *request
}

func (j *job) finish(b *core.Batch, err error) { j.req.jobDone(j.chunk, b, err) }

// request tracks the fan-out/fan-in of one API call across its chunk
// jobs: results land by chunk index, the first error wins, and done
// closes when the last job reports in. The first error also cancels
// the request's job context, so sibling chunks still queued behind it
// are skipped by the pool (dead-context check) instead of burning
// worker time on a response that is already doomed.
type request struct {
	// cancel kills the context the request's jobs carry. May be nil in
	// tests that construct requests directly.
	cancel context.CancelFunc

	mu      sync.Mutex
	batches []*core.Batch
	err     error
	remain  int
	done    chan struct{}
}

func newRequest(chunks int, cancel context.CancelFunc) *request {
	return &request{
		cancel:  cancel,
		batches: make([]*core.Batch, chunks),
		remain:  chunks,
		done:    make(chan struct{}),
	}
}

func (r *request) jobDone(chunk int, b *core.Batch, err error) {
	r.mu.Lock()
	first := err != nil && r.err == nil
	if first {
		r.err = err
	}
	r.batches[chunk] = b
	r.remain--
	last := r.remain == 0
	r.mu.Unlock()
	if first && r.cancel != nil {
		// First error wins and is already recorded, so canceling the
		// siblings here can never replace it with context.Canceled.
		r.cancel()
	}
	if last {
		close(r.done)
	}
}

// result returns the assembled batches or the first error. Only valid
// after done is closed (no more writers).
func (r *request) result() ([]*core.Batch, error) {
	if r.err != nil {
		return nil, r.err
	}
	return r.batches, nil
}

// dispatch is the micro-batching loop: it pulls admitted jobs off the
// bounded queue and coalesces them into a group, flushing when the
// group reaches MaxBatchTargets targets or when BatchWindow elapses
// since the group's first job — whichever comes first. Flushes block
// on the pool when every worker is busy; that is the backpressure that
// fills the queue and trips admission control.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	defer close(s.pool.groups)
	var (
		g        group
		gTargets int
		timer    *time.Timer
		timeCh   <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
		}
		timeCh = nil
		if len(g) == 0 {
			return
		}
		s.met.dispatched.Add(1)
		s.met.batchJobs.Observe(int64(len(g)))
		s.met.batchTargets.Observe(int64(gTargets))
		s.pool.groups <- g
		g = nil
		gTargets = 0
	}
	add := func(j *job) {
		if len(g) == 0 {
			timer = time.NewTimer(s.cfg.BatchWindow)
			timeCh = timer.C
		}
		g = append(g, j)
		gTargets += len(j.targets)
		if gTargets >= s.cfg.MaxBatchTargets {
			flush()
		}
	}
	for {
		select {
		case j := <-s.queue:
			add(j)
		case <-timeCh:
			flush()
		case <-s.quit:
			// Drain: hand every already-admitted job to the pool (workers
			// skip the ones whose requests are dead), then stop. Jobs
			// enqueued after this loop empties the channel are abandoned —
			// their handlers unblock through their canceled contexts.
			for {
				select {
				case j := <-s.queue:
					add(j)
				default:
					flush()
					return
				}
			}
		}
	}
}
