package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/shard"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// startRouterServer boots a RouterServer over engines on a loopback
// listener. Shutdown (which closes the engines) is registered as
// cleanup.
func startRouterServer(t *testing.T, engines []shard.Engine, cfg Config) (*RouterServer, string) {
	t.Helper()
	srv, err := NewRouter(engines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, "http://" + ln.Addr().String()
}

// openShard opens one shard dataset with cleanup.
func openShard(t *testing.T, dir string) *storage.Dataset {
	t.Helper()
	sds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sds.Close() })
	return sds
}

// TestShardConformance is the end-to-end conformance gate: the same
// /v1/sample requests against (a) a single-node server over the full
// dataset, (b) a router over 2 shards — one reached over live HTTP
// (Remote), one in-process (Local) with a fault-injected ring — and
// (c) a router over 4 shard servers, all Remote. Every response must
// be byte-identical to the single-node one (and to a direct core run)
// across strategies × features, digests included. Mixing Local and
// Remote in one partition is the interchangeability proof for the
// Engine seam; the faulty shard proves faults are absorbed below the
// determinism contract.
func TestShardConformance(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "conform", "rmat", 2_000, 30_000, 11, gen.Options{FeatureDim: testFeatureDim}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 2
	cfg.Core.BatchSize = 64
	cfg.Core.Fanouts = []int{6, 4}
	cfg.Core.CacheBudgetBytes = 32 << 10
	cfg.Core.FeatureCacheBudgetBytes = 32 << 10
	cfg.BatchWindow = time.Millisecond

	ds := openShard(t, dir)
	_, singleBase := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 60 * time.Second}

	rng := sample.NewRNG(61)
	targets := make([]uint32, 150) // 3 chunks
	for i := range targets {
		targets[i] = rng.Uint32n(uint32(ds.NumNodes()))
	}
	targets[3] = targets[4] // duplicates must survive scatter/gather

	type combo struct {
		strategy string
		features bool
	}
	var combos []combo
	for _, st := range []string{core.StrategyUniform, core.StrategyWeighted, core.StrategyWalk} {
		for _, f := range []bool{false, true} {
			combos = append(combos, combo{st, f})
		}
	}
	request := func(c combo) sampleRequest {
		return sampleRequest{Targets: targets, Fanouts: []int{6, 4}, Seed: 909, Strategy: c.strategy, Features: c.features}
	}

	// Single-node baselines, checked against the direct core reference.
	baseline := make(map[combo]string)
	for _, c := range combos {
		st, data := postSample(t, client, singleBase, request(c))
		if st != http.StatusOK {
			t.Fatalf("single-node %+v: status %d: %s", c, st, data)
		}
		want := referenceBatches(t, ds, cfg.Core, cfg.Backend, request(c), cfg.Core.BatchSize)
		assertResponseMatches(t, fmt.Sprintf("single-node %+v", c), data, want)
		var resp sampleResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		baseline[c] = resp.Digest
	}

	checkRouter := func(label, routerBase string) {
		t.Helper()
		for _, c := range combos {
			st, data := postSample(t, client, routerBase, request(c))
			if st != http.StatusOK {
				t.Fatalf("%s %+v: status %d: %s", label, c, st, data)
			}
			want := referenceBatches(t, ds, cfg.Core, cfg.Backend, request(c), cfg.Core.BatchSize)
			assertResponseMatches(t, fmt.Sprintf("%s %+v", label, c), data, want)
			var resp sampleResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Digest != baseline[c] {
				t.Fatalf("%s %+v: digest %s != single-node %s", label, c, resp.Digest, baseline[c])
			}
		}
	}

	// 2 shards: shard 0 behind a live shard server over HTTP (Remote),
	// shard 1 in-process (Local) with a fault-wrapped ring.
	{
		dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "p2"), 2)
		if err != nil {
			t.Fatal(err)
		}
		sds0 := openShard(t, dirs[0])
		_, shardBase := startServer(t, sds0, cfg)
		remote, err := shard.NewRemote(context.Background(), shardBase, client)
		if err != nil {
			t.Fatal(err)
		}
		if got := remote.Info(); got.Index != 0 || got.Total != 2 {
			t.Fatalf("remote shard identity %+v, want shard 0/2", got)
		}

		sds1 := openShard(t, dirs[1])
		faultCfg := cfg.Core
		faultCfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
			return uring.NewFault(r, uring.FaultPlan{
				Seed: 5, ShortReadRate: 0.2, TransientRate: 0.1, DelayRate: 0.2, MaxDelay: 4,
			})
		}
		local, err := shard.NewLocal(sds1, faultCfg, uring.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		rs, routerBase := startRouterServer(t, []shard.Engine{remote, local}, cfg)
		checkRouter("2-shard router (remote+faulty local)", routerBase)
		if rs.Router().Shards() != 2 {
			t.Fatalf("router has %d shards, want 2", rs.Router().Shards())
		}

		// Router observability: /metrics counts the requests, /healthz is live.
		body := scrapeMetrics(t, client, routerBase)
		if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != float64(len(combos)) {
			t.Fatalf("router responses_ok_total = %v, want %d", got, len(combos))
		}
		// The shard server's own metrics must show shard-protocol traffic.
		sbody := scrapeMetrics(t, client, shardBase)
		if got := metricValue(t, sbody, "ringsampler_serve_shard_calls_total"); got <= 0 {
			t.Fatalf("shard server served %v shard calls, want > 0", got)
		}
	}

	// 4 shards, every engine Remote over its own shard server.
	{
		dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "p4"), 4)
		if err != nil {
			t.Fatal(err)
		}
		engines := make([]shard.Engine, len(dirs))
		for i, sdir := range dirs {
			sds := openShard(t, sdir)
			_, shardBase := startServer(t, sds, cfg)
			remote, err := shard.NewRemote(context.Background(), shardBase, client)
			if err != nil {
				t.Fatal(err)
			}
			engines[i] = remote
		}
		_, routerBase := startRouterServer(t, engines, cfg)
		checkRouter("4-shard router (all remote)", routerBase)
	}
}

// TestShardServerEndpoints: a shard server refuses whole-graph
// /v1/sample (the request would silently miss every non-owned edge)
// and validates shard-protocol bodies before touching a worker.
func TestShardServerEndpoints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "endp", "rmat", 1_000, 10_000, 7, gen.Options{FeatureDim: 3}); err != nil {
		t.Fatal(err)
	}
	dirs, err := gen.Partition(dir, filepath.Join(t.TempDir(), "p"), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 1
	sds := openShard(t, dirs[1])
	_, base := startServer(t, sds, cfg)
	client := &http.Client{Timeout: 15 * time.Second}

	// Whole-graph sampling on a shard is a 400 naming the condition.
	st, data := postSample(t, client, base, sampleRequest{Targets: []uint32{1}, Fanouts: []int{4}, Seed: 1})
	if st != http.StatusBadRequest {
		t.Fatalf("/v1/sample on a shard: status %d, want 400: %s", st, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "shard") || !strings.Contains(er.Error, "router") {
		t.Fatalf("shard rejection %q names neither the shard nor the router", er.Error)
	}

	// /v1/shard/info reports the manifest's identity.
	resp, err := client.Get(base + "/v1/shard/info")
	if err != nil {
		t.Fatal(err)
	}
	var info shard.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lo, hi := sds.ShardRange()
	if info.Index != 1 || info.Total != 2 || info.Lo != lo || info.Hi != hi || info.NumNodes != sds.NumNodes() {
		t.Fatalf("shard info %+v disagrees with the dataset (range [%d,%d))", info, lo, hi)
	}

	post := func(path string, body any) (int, []byte) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+path, "application/json", strings.NewReader(string(buf)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []byte
		out = make([]byte, 0, 512)
		b := make([]byte, 512)
		for {
			n, rerr := resp.Body.Read(b)
			out = append(out, b[:n]...)
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, out
	}

	// Shard-protocol validation: bad RNG state, implicit strategy, and
	// non-owned feature nodes are all 400s.
	for name, tc := range map[string]struct {
		path string
		body any
	}{
		"bad rng state": {"/v1/shard/layer", shard.LayerRequest{
			Frontier: []uint32{uint32(lo)}, Fanout: 4, Strategy: core.StrategyUniform, RNGState: "not-hex"}},
		"empty strategy": {"/v1/shard/layer", shard.LayerRequest{
			Frontier: []uint32{uint32(lo)}, Fanout: 4, RNGState: shard.EncodeState(1)}},
		"non-owned feature node": {"/v1/shard/features", shard.FeaturesRequest{Nodes: []uint32{uint32(lo) - 1}}},
	} {
		st, data := post(tc.path, tc.body)
		if st != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, st, data)
		}
	}

	// A well-formed layer call answers with the full frontier layout and
	// a threaded RNG state.
	frontier := []uint32{0, uint32(lo), uint32(hi - 1)} // node 0 is non-owned: zero-filled span
	st, data = post("/v1/shard/layer", shard.LayerRequest{
		Frontier: frontier, Fanout: 4, Strategy: core.StrategyUniform,
		RNGState: shard.EncodeState(core.ChunkSeedState(33)),
	})
	if st != http.StatusOK {
		t.Fatalf("layer call: status %d: %s", st, data)
	}
	var lresp shard.LayerResponse
	if err := json.Unmarshal(data, &lresp); err != nil {
		t.Fatal(err)
	}
	if len(lresp.Starts) != len(frontier)+1 {
		t.Fatalf("layer has %d starts for a %d-node frontier", len(lresp.Starts), len(frontier))
	}
	if _, err := shard.ParseState(lresp.RNGState); err != nil {
		t.Fatalf("layer response carries a bad RNG state: %v", err)
	}
}
