package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"ringsampler/internal/core"
)

// hist is a lock-free fixed-bucket histogram rendered in Prometheus
// cumulative form. Buckets are powers of two in the histogram's native
// unit (nanoseconds for durations, plain counts for sizes); a scale
// factor applied at render time converts bounds to the exported unit
// (seconds for durations). Observations above the last bound land in
// the +Inf bucket.
type hist struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the extra slot is +Inf
	sum    atomic.Int64
}

func newHist(bounds []int64) *hist {
	return &hist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. Linear bucket search: bucket counts are
// small (≤ 24) and the slice is cache-resident, so this beats a binary
// search at serving rates.
func (h *hist) Observe(v int64) {
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count returns the number of observations.
func (h *hist) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// durBounds covers [1µs, ~8.4s] in power-of-two steps — the same
// log2-µs shape as core.LatencyHist, expressed in nanoseconds.
func durBounds() []int64 {
	out := make([]int64, 24)
	for i := range out {
		out[i] = int64(time.Microsecond) << i
	}
	return out
}

// sizeBounds covers [1, 65536] in power-of-two steps.
func sizeBounds() []int64 {
	out := make([]int64, 17)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// metrics is the serving layer's observability surface, exported in
// Prometheus text format by GET /metrics. Everything is atomic: the
// hot path never takes a lock to count.
type metrics struct {
	// Admission / request lifecycle counters.
	requests         atomic.Int64 // requests admitted past validation
	featureRequests  atomic.Int64 // admitted requests that asked for features
	responsesOK      atomic.Int64 // 200s served
	rejectedFull     atomic.Int64 // 429: bounded queue was full
	rejectedDraining atomic.Int64 // 503: server was draining
	badRequests      atomic.Int64 // 400: validation failures
	deadlineExceeded atomic.Int64 // 504: per-request deadline fired
	canceledJobs     atomic.Int64 // jobs skipped because their request died
	sampleErrors     atomic.Int64 // 500: engine-level sampling failures
	shardCalls       atomic.Int64 // shard-protocol calls served (/v1/shard/*)

	// Pipeline gauges and counters.
	queueDepth     atomic.Int64 // jobs admitted but not yet picked up
	inflight       atomic.Int64 // requests currently being handled
	dispatched     atomic.Int64 // micro-batches flushed to the pool
	workersRetired atomic.Int64 // broken workers retired and replaced

	// Batch-shape and per-stage latency histograms.
	batchTargets *hist // targets per micro-batch
	batchJobs    *hist // jobs per micro-batch
	queueWait    *hist // ns: enqueue → worker pickup
	sampleLat    *hist // ns: one job's sampling time
	requestLat   *hist // ns: admission → response, successful requests
}

func newMetrics() *metrics {
	return &metrics{
		batchTargets: newHist(sizeBounds()),
		batchJobs:    newHist(sizeBounds()),
		queueWait:    newHist(durBounds()),
		sampleLat:    newHist(durBounds()),
		requestLat:   newHist(durBounds()),
	}
}

func writeMetric(w io.Writer, name, typ, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHist renders h as a Prometheus histogram with cumulative
// buckets; scale converts the native unit to the exported one
// (1e-9 for ns → s, 1 for counts).
func writeHist(w io.Writer, name, help string, h *hist, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(float64(b)*scale), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.sum.Load())*scale))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// write renders the full metrics surface: serving-layer counters and
// histograms plus the pool's merged ring-level IOStats (live workers
// and retired ones — retirement never drops counters).
func (m *metrics) write(w io.Writer, ioStats core.IOStats, workers, queueCap int) {
	writeMetric(w, "ringsampler_serve_requests_total", "counter", "Requests admitted past validation.", m.requests.Load())
	writeMetric(w, "ringsampler_serve_feature_requests_total", "counter", "Admitted requests that asked for feature payloads.", m.featureRequests.Load())
	writeMetric(w, "ringsampler_serve_responses_ok_total", "counter", "Requests answered 200.", m.responsesOK.Load())
	writeMetric(w, "ringsampler_serve_rejected_total", "counter", "Requests fast-failed 429 because the admission queue was full.", m.rejectedFull.Load())
	writeMetric(w, "ringsampler_serve_rejected_draining_total", "counter", "Requests refused 503 while draining.", m.rejectedDraining.Load())
	writeMetric(w, "ringsampler_serve_bad_requests_total", "counter", "Requests rejected 400 by validation.", m.badRequests.Load())
	writeMetric(w, "ringsampler_serve_deadline_exceeded_total", "counter", "Requests that hit their deadline (504).", m.deadlineExceeded.Load())
	writeMetric(w, "ringsampler_serve_canceled_jobs_total", "counter", "Jobs skipped because their request was already dead.", m.canceledJobs.Load())
	writeMetric(w, "ringsampler_serve_errors_total", "counter", "Requests failed 500 by an engine error.", m.sampleErrors.Load())
	writeMetric(w, "ringsampler_serve_shard_calls_total", "counter", "Shard-protocol calls served (/v1/shard/layer and /v1/shard/features).", m.shardCalls.Load())

	writeMetric(w, "ringsampler_serve_queue_depth", "gauge", "Jobs admitted but not yet picked up by a worker.", m.queueDepth.Load())
	writeMetric(w, "ringsampler_serve_queue_capacity", "gauge", "Bounded admission queue capacity (jobs).", int64(queueCap))
	writeMetric(w, "ringsampler_serve_inflight_requests", "gauge", "Requests currently being handled.", m.inflight.Load())
	writeMetric(w, "ringsampler_serve_workers", "gauge", "Size of the pinned worker pool.", int64(workers))
	writeMetric(w, "ringsampler_serve_batches_total", "counter", "Micro-batches dispatched to the worker pool.", m.dispatched.Load())
	writeMetric(w, "ringsampler_serve_workers_retired_total", "counter", "Broken workers retired and replaced.", m.workersRetired.Load())

	writeHist(w, "ringsampler_serve_batch_targets", "Target nodes per dispatched micro-batch.", m.batchTargets, 1)
	writeHist(w, "ringsampler_serve_batch_jobs", "Jobs per dispatched micro-batch.", m.batchJobs, 1)
	writeHist(w, "ringsampler_serve_queue_wait_seconds", "Time from admission to worker pickup.", m.queueWait, 1e-9)
	writeHist(w, "ringsampler_serve_sample_seconds", "Per-job engine sampling time.", m.sampleLat, 1e-9)
	writeHist(w, "ringsampler_serve_request_seconds", "End-to-end latency of successful requests.", m.requestLat, 1e-9)

	writeMetric(w, "ringsampler_io_reads_total", "counter", "Ring read requests completed in full.", ioStats.Reads)
	writeMetric(w, "ringsampler_io_bytes_read_total", "counter", "Bytes read from the device.", ioStats.BytesRead)
	writeMetric(w, "ringsampler_io_retries_total", "counter", "Ring read resubmissions.", ioStats.Retries)
	writeMetric(w, "ringsampler_io_short_reads_total", "counter", "Completions that returned fewer bytes than requested.", ioStats.ShortReads)
	writeMetric(w, "ringsampler_io_transient_errors_total", "counter", "Completions that returned -EINTR/-EAGAIN.", ioStats.TransientErrs)
	writeMetric(w, "ringsampler_io_stale_drained_total", "counter", "Stale completions drained while quarantining failed batches.", ioStats.StaleDrained)
	writeMetric(w, "ringsampler_io_cache_hits_total", "counter", "Hot-neighbor cache hits.", ioStats.CacheHits)
	writeMetric(w, "ringsampler_io_cache_misses_total", "counter", "Hot-neighbor cache misses.", ioStats.CacheMisses)
	writeMetric(w, "ringsampler_io_cache_bytes_total", "counter", "Bytes served from the hot-neighbor cache.", ioStats.CacheBytes)
	writeMetric(w, "ringsampler_io_feat_reads_total", "counter", "Feature-file ring reads completed in full.", ioStats.FeatReads)
	writeMetric(w, "ringsampler_io_feat_bytes_read_total", "counter", "Feature bytes read from the device.", ioStats.FeatBytesRead)
	writeMetric(w, "ringsampler_io_feat_cache_hits_total", "counter", "Hot-node feature cache hits.", ioStats.FeatCacheHits)
	writeMetric(w, "ringsampler_io_feat_cache_misses_total", "counter", "Hot-node feature cache misses.", ioStats.FeatCacheMisses)
	writeMetric(w, "ringsampler_io_feat_cache_bytes_total", "counter", "Feature bytes served from the cache.", ioStats.FeatCacheBytes)
}
