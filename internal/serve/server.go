// Package serve is the online sampling service in front of the core
// engine: a long-running HTTP server that coalesces many small
// concurrent sampling requests into the micro-batches the per-thread
// ring workers are built for (paper Fig 3a), with admission control in
// front of them.
//
// The shape follows what DiskGNN and Jiang et al. argue for disk-based
// GNN serving: a single coalescing/admission layer in front of a fixed
// worker pool, never a worker per connection — uncoordinated concurrent
// samplers destroy disk throughput, and a bounded queue that fast-fails
// beats one that queues unboundedly.
//
//	POST /v1/sample  — {"targets":[...],"fanouts":[...],"seed":N,"strategy":"..."} → layered samples
//	GET  /healthz    — liveness (503 while draining)
//	GET  /metrics    — Prometheus text: queue depth, batch-size histogram,
//	                   per-stage latency, ring IOStats, rejection counts
//
// The optional "strategy" field selects the draw strategy per request
// (DESIGN.md §11: "uniform", "weighted", "walk"; empty means the
// server default). Unknown names are rejected 400 at admission,
// before any work is queued.
//
// Determinism contract: the response to (targets, fanouts, seed,
// strategy) is byte-identical to a direct single-threaded core run —
// the request is sharded into Core.BatchSize chunks and chunk i is
// sampled with RNG seed sample.Mix(seed, i), exactly how
// core.RunEpoch seeds its mini-batches — regardless of which
// micro-batch the chunks were coalesced into or which pooled worker
// ran them.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
	"ringsampler/internal/shard"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// maxBodyBytes bounds how much request JSON a client can make the
// server buffer.
const maxBodyBytes = 8 << 20

// Config controls the serving layer. Zero values for the serving knobs
// select the documented defaults; Core carries the engine config
// (Core.Threads is the worker-pool size, Core.BatchSize the chunking
// granularity of the determinism contract).
type Config struct {
	// Core is the engine configuration behind the pool.
	Core core.Config
	// Backend selects the ring backend; empty picks io_uring when the
	// environment supports it, the portable pread pool otherwise.
	Backend uring.Backend
	// QueueDepth bounds the admission queue in jobs (chunks). A full
	// queue fast-fails new requests with 429 instead of queuing
	// unboundedly. Default 256.
	QueueDepth int
	// BatchWindow is how long the dispatcher waits for more jobs after
	// a group's first job before flushing a partial micro-batch.
	// Default 2ms.
	BatchWindow time.Duration
	// MaxBatchTargets flushes a micro-batch as soon as it holds this
	// many targets. Default Core.BatchSize.
	MaxBatchTargets int
	// MaxTargetsPerRequest rejects oversized requests with 400.
	// Default 4 × Core.BatchSize.
	MaxTargetsPerRequest int
	// MaxFanoutLayers / MaxFanout bound per-request fanout shapes
	// (frontier explosion guard). Defaults 8 and 256.
	MaxFanoutLayers int
	MaxFanout       int
	// DefaultTimeout is the per-request deadline when the client sends
	// none; MaxTimeout caps client-requested deadlines. Defaults 10s
	// and 60s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

// DefaultConfig returns the serving defaults over the engine defaults.
func DefaultConfig() Config {
	return Config{
		Core:           core.DefaultConfig(),
		QueueDepth:     256,
		BatchWindow:    2 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     60 * time.Second,
	}
}

func (c *Config) fillDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatchTargets == 0 {
		c.MaxBatchTargets = c.Core.BatchSize
	}
	if c.MaxTargetsPerRequest == 0 {
		c.MaxTargetsPerRequest = 4 * c.Core.BatchSize
	}
	if c.MaxFanoutLayers == 0 {
		c.MaxFanoutLayers = 8
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 256
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.Backend == "" {
		if uring.Probe().Ring {
			c.Backend = uring.BackendIOURing
		} else {
			c.Backend = uring.BackendPool
		}
	}
}

func (c *Config) validate() error {
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: queue depth %d must be positive", c.QueueDepth)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("serve: batch window %v must be non-negative", c.BatchWindow)
	}
	if c.MaxBatchTargets < 1 {
		return fmt.Errorf("serve: max batch targets %d must be positive", c.MaxBatchTargets)
	}
	if c.MaxTargetsPerRequest < 1 {
		return fmt.Errorf("serve: max targets per request %d must be positive", c.MaxTargetsPerRequest)
	}
	return nil
}

// Server is the running service: sampler + worker pool + dispatcher +
// HTTP front end. Create with New, serve with Serve, stop with
// Shutdown.
type Server struct {
	cfg  Config
	ds   *storage.Dataset
	s    *core.Sampler
	met  *metrics
	pool *pool
	// local answers the shard protocol (/v1/shard/*) over the same
	// sampler, so this server can serve as one shard of a partition —
	// or as the sole shard of a 1-partition — behind a router.
	local *shard.Local

	queue        chan *job
	quit         chan struct{}
	dispatchDone chan struct{}

	http     *http.Server
	draining atomic.Bool
	// handlers tracks in-flight HTTP handlers. Shutdown waits on it
	// before stopping the dispatcher, so no handler can enqueue a job
	// after the dispatcher's final drain — the hole that used to leak
	// the queue_depth gauge on a forced drain.
	handlers sync.WaitGroup
	// baseCtx force-cancels every in-flight request when a drain
	// deadline expires.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	shutOnce   sync.Once
	shutErr    error
}

// New validates the config, builds the sampler (hot cache included when
// budgeted), and starts the worker pool and dispatcher. The server is
// live once Serve is called on a listener.
func New(ds *storage.Dataset, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sampler, err := core.New(ds, cfg.Core, cfg.Backend)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		ds:           ds,
		s:            sampler,
		met:          newMetrics(),
		queue:        make(chan *job, cfg.QueueDepth),
		quit:         make(chan struct{}),
		dispatchDone: make(chan struct{}),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.pool = newPool(sampler, s.met, cfg.Core.Threads)
	s.local = shard.NewLocalFrom(ds, sampler)
	go s.dispatch()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", s.handleSample)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/shard/info", s.handleShardInfo)
	mux.HandleFunc("POST /v1/shard/layer", s.handleShardLayer)
	mux.HandleFunc("POST /v1/shard/features", s.handleShardFeatures)
	s.http = &http.Server{Handler: mux}
	return s, nil
}

// Config returns the server's effective (default-filled) config.
func (s *Server) Config() Config { return s.cfg }

// IOStats returns the merged ring-level I/O counters: the pool's
// workers (retired included) plus any workers the shard endpoints
// leased.
func (s *Server) IOStats() core.IOStats {
	st := s.pool.Stats()
	st.Add(s.local.Stats())
	return st
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// Shutdown drains gracefully: stop admitting, let in-flight requests
// finish through the pipeline, then stop the dispatcher and workers.
// When ctx expires first, outstanding requests are force-canceled and
// connections closed — workers still never die mid-batch. Safe to call
// once; later calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		// Drain HTTP first: Shutdown waits for active handlers, and every
		// handler waits for its jobs, so the queue empties through the
		// workers before the pipeline is stopped.
		err := s.http.Shutdown(ctx)
		if err != nil {
			// Deadline expired mid-drain: cancel every in-flight request
			// (handlers unblock via their contexts) and force connections
			// closed.
			s.cancelBase()
			s.http.Close()
		}
		// Every handler that could enqueue jobs did handlers.Add before
		// its draining check; once Wait returns, no new job can enter the
		// queue, so stopping the dispatcher cannot strand a later one.
		s.handlers.Wait()
		close(s.quit)
		<-s.dispatchDone
		// Abandonment sweep: anything still queued was admitted without a
		// consumer left to run it. Release each job's queue_depth
		// increment and report it, so the gauge provably returns to zero
		// and no request waits forever on a chunk nobody will run.
		for {
			select {
			case j := <-s.queue:
				s.met.queueDepth.Add(-1)
				s.met.canceledJobs.Add(1)
				j.finish(nil, context.Canceled)
				continue
			default:
			}
			break
		}
		s.pool.wait()
		s.local.Close()
		s.cancelBase()
		s.shutErr = err
	})
	return s.shutErr
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.IOStats(), s.cfg.Core.Threads, s.cfg.QueueDepth)
}

// sampleRequest is the POST /v1/sample body.
type sampleRequest struct {
	// Targets are the nodes to sample neighborhoods for.
	Targets []uint32 `json:"targets"`
	// Fanouts are the per-layer sample counts, outermost first; empty
	// uses the server's configured fanouts.
	Fanouts []int `json:"fanouts,omitempty"`
	// Seed drives the request's sampling randomness; equal requests
	// with equal seeds get byte-identical responses.
	Seed uint64 `json:"seed"`
	// Strategy names the draw strategy for this request ("uniform",
	// "weighted", "walk"); empty uses the server's configured default.
	// Unknown names are rejected with 400 before any work is queued.
	Strategy string `json:"strategy,omitempty"`
	// Features runs the feature stage per batch: each response batch
	// carries the deduplicated node union and its raw f32 feature
	// vectors (base64 in JSON). Also settable via the ?features=true
	// query parameter. Requires a dataset with a feature file (400
	// otherwise).
	Features bool `json:"features,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline
	// (capped at the server's MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type layerJSON struct {
	Targets   []uint32 `json:"targets"`
	Starts    []int64  `json:"starts"`
	Neighbors []uint32 `json:"neighbors"`
}

type batchJSON struct {
	Layers []layerJSON `json:"layers"`
	// Feature payload (present only when the request asked for
	// features): the batch's deduplicated node union, the per-node
	// vector width, and the raw little-endian f32 vectors back to back
	// in FeatNodes order — []byte, so encoding/json renders base64.
	FeatNodes  []uint32 `json:"feat_nodes,omitempty"`
	FeatureDim int      `json:"feature_dim,omitempty"`
	Features   []byte   `json:"features,omitempty"`
	Digest     string   `json:"digest"`
}

// sampleResponse is the POST /v1/sample reply: one batch per
// Core.BatchSize chunk of the request's targets (a request at or under
// the chunk size gets exactly one).
type sampleResponse struct {
	Batches []batchJSON `json:"batches"`
	// Digest folds the per-batch digests (FNV-style), hex-encoded —
	// uint64s don't survive JSON number precision.
	Digest    string  `json:"digest"`
	Sampled   int64   `json:"sampled_entries"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.met.badRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

// checkTargets validates every target against the graph's node count.
// The comparison is deliberately 64-bit: narrowing NumNodes to uint32
// first would make a manifest with ≥ 2^32 nodes wrap, and targets
// would be accepted or rejected against the count's low 32 bits.
func checkTargets(targets []uint32, numNodes int64) error {
	for i, v := range targets {
		if int64(v) >= numNodes {
			return fmt.Errorf("target[%d] = %d out of range (graph has %d nodes)", i, v, numNodes)
		}
	}
	return nil
}

// validateSample is the admission validation shared by the pooled
// server and the router front end. It resolves the ?features query
// flag into req, and returns the effective fanouts and per-request
// timeout — or the message for a 400.
func (c *Config) validateSample(r *http.Request, req *sampleRequest, numNodes int64, hasFeatures bool) ([]int, time.Duration, error) {
	if len(req.Targets) == 0 {
		return nil, 0, fmt.Errorf("request needs at least one target")
	}
	if len(req.Targets) > c.MaxTargetsPerRequest {
		return nil, 0, fmt.Errorf("request has %d targets, limit %d", len(req.Targets), c.MaxTargetsPerRequest)
	}
	if err := checkTargets(req.Targets, numNodes); err != nil {
		return nil, 0, err
	}
	if q := r.URL.Query().Get("features"); q != "" {
		on, err := strconv.ParseBool(q)
		if err != nil {
			return nil, 0, fmt.Errorf("features query parameter must be a boolean: %v", err)
		}
		req.Features = req.Features || on
	}
	if req.Features && !hasFeatures {
		return nil, 0, fmt.Errorf("features requested but the dataset has no feature file")
	}
	fanouts := req.Fanouts
	if len(fanouts) == 0 {
		fanouts = c.Core.Fanouts
	}
	if len(fanouts) > c.MaxFanoutLayers {
		return nil, 0, fmt.Errorf("%d fanout layers, limit %d", len(fanouts), c.MaxFanoutLayers)
	}
	for i, f := range fanouts {
		if f < 1 || f > c.MaxFanout {
			return nil, 0, fmt.Errorf("fanout[%d] = %d out of range [1,%d]", i, f, c.MaxFanout)
		}
	}
	if !core.ValidStrategy(req.Strategy) {
		return nil, 0, fmt.Errorf("unknown strategy %q (known: %v)", req.Strategy, core.StrategyNames())
	}
	if req.TimeoutMS < 0 {
		// A negative timeout is a client bug, not a request for the
		// default — rejecting beats silently substituting one.
		return nil, 0, fmt.Errorf("timeout_ms %d must be non-negative", req.TimeoutMS)
	}
	timeout := c.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > c.MaxTimeout {
			timeout = c.MaxTimeout
		}
	}
	return fanouts, timeout, nil
}

// buildResponse assembles the wire response from ordered batches —
// shared by the pooled server and the router, which is what keeps the
// two response formats (and digests) identical by construction.
func buildResponse(batches []*core.Batch, t0 time.Time) sampleResponse {
	resp := sampleResponse{Batches: make([]batchJSON, len(batches))}
	var folded uint64
	for i, b := range batches {
		bj := batchJSON{Layers: make([]layerJSON, len(b.Layers))}
		for li := range b.Layers {
			l := &b.Layers[li]
			bj.Layers[li] = layerJSON{Targets: l.Targets, Starts: l.Starts, Neighbors: l.Neighbors}
		}
		if b.FeatureDim > 0 {
			bj.FeatNodes = b.FeatNodes
			bj.FeatureDim = b.FeatureDim
			bj.Features = b.Features
		}
		d := b.Digest()
		bj.Digest = fmt.Sprintf("%016x", d)
		folded = folded*0x100000001b3 ^ d
		resp.Sampled += b.TotalSampled()
		resp.Batches[i] = bj
	}
	resp.Digest = fmt.Sprintf("%016x", folded)
	resp.ElapsedMS = float64(time.Since(t0).Nanoseconds()) / 1e6
	return resp
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.handlers.Add(1)
	defer s.handlers.Done()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	if s.ds.IsSharded() {
		s.badRequest(w, fmt.Sprintf("dataset is shard %d/%d: whole-graph sampling needs a router over the full partition (this server answers /v1/shard/*)",
			s.ds.ShardIndex(), s.ds.NumShards()))
		return
	}
	var req sampleRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, "malformed JSON: "+err.Error())
		return
	}
	fanouts, timeout, verr := s.cfg.validateSample(r, &req, s.ds.NumNodes(), s.ds.HasFeatures())
	if verr != nil {
		s.badRequest(w, verr.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// A forced drain cancels every in-flight request through baseCtx.
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()
	// Jobs carry a child of the handler context: the first failing
	// chunk cancels it (request.jobDone), so sibling chunks are skipped
	// by the pool — while the handler keeps waiting on rq.done and
	// reports the real error, not its own cancellation.
	jobCtx, jobCancel := context.WithCancel(ctx)
	defer jobCancel()

	t0 := time.Now()
	s.met.requests.Add(1)
	if req.Features {
		s.met.featureRequests.Add(1)
	}

	// Shard into the engine's mini-batch granularity. Chunk i samples
	// under sample.Mix(seed, i) — the same derivation core.RunEpoch
	// uses per batch — which is what makes the response independent of
	// coalescing, worker identity, and pool size.
	chunkSize := s.cfg.Core.BatchSize
	numChunks := (len(req.Targets) + chunkSize - 1) / chunkSize
	rq := newRequest(numChunks, jobCancel)
	for ci := 0; ci < numChunks; ci++ {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > len(req.Targets) {
			hi = len(req.Targets)
		}
		j := &job{
			ctx:      jobCtx,
			targets:  req.Targets[lo:hi],
			fanouts:  fanouts,
			seed:     sample.Mix(req.Seed, uint64(ci)),
			features: req.Features,
			strategy: req.Strategy,
			enq:      time.Now(),
			chunk:    ci,
			req:      rq,
		}
		select {
		case s.queue <- j:
			s.met.queueDepth.Add(1)
		default:
			// Admission control: the bounded queue is full — fast-fail
			// rather than queue unboundedly. Cancel the request context
			// so chunks already admitted are skipped, not sampled.
			cancel()
			s.met.rejectedFull.Add(1)
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "sampling queue full, retry later"})
			return
		}
	}

	select {
	case <-rq.done:
	case <-ctx.Done():
		s.failCanceled(w, ctx)
		return
	}
	batches, err := rq.result()
	if err != nil {
		// Jobs can also surface the request's own cancellation.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.failCanceled(w, ctx)
			return
		}
		s.met.sampleErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "sampling failed: " + err.Error()})
		return
	}

	resp := buildResponse(batches, t0)
	s.met.responsesOK.Add(1)
	s.met.requestLat.Observe(time.Since(t0).Nanoseconds())
	writeJSON(w, http.StatusOK, resp)
}

// Shard protocol handlers: this server as one engine of a partition.
// They answer over the same sampler (caches shared with the pool) but
// lease workers per call through the shard.Local engine instead of
// riding the micro-batching queue — layer calls are already
// router-batched and must not coalesce with anything.

func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.local.Info())
}

func (s *Server) handleShardLayer(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	var req shard.LayerRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, "malformed JSON: "+err.Error())
		return
	}
	state, err := shard.ParseState(req.RNGState)
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	if req.Layer < 0 || req.Fanout < 1 || req.Fanout > s.cfg.MaxFanout {
		s.badRequest(w, fmt.Sprintf("layer %d / fanout %d out of range (fanout limit %d)", req.Layer, req.Fanout, s.cfg.MaxFanout))
		return
	}
	if len(req.Frontier) == 0 {
		s.badRequest(w, "layer request needs a non-empty frontier")
		return
	}
	if req.Strategy == "" || !core.ValidStrategy(req.Strategy) {
		// The router must pin an explicit strategy: resolving "" against
		// this shard's local default could disagree with its peers.
		s.badRequest(w, fmt.Sprintf("shard layer requests need an explicit strategy (known: %v), got %q", core.StrategyNames(), req.Strategy))
		return
	}
	if err := checkTargets(req.Frontier, s.ds.NumNodes()); err != nil {
		s.badRequest(w, err.Error())
		return
	}
	s.met.shardCalls.Add(1)
	layer, nextState, err := s.local.SampleLayer(r.Context(), req.Frontier, core.LayerParams{
		Layer: req.Layer, Fanout: req.Fanout, Strategy: req.Strategy, RNGState: state,
	})
	if err != nil {
		s.met.sampleErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "shard layer failed: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, shard.LayerResponse{
		Targets:   layer.Targets,
		Starts:    layer.Starts,
		Neighbors: layer.Neighbors,
		RNGState:  shard.EncodeState(nextState),
	})
}

func (s *Server) handleShardFeatures(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	var req shard.FeaturesRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, "malformed JSON: "+err.Error())
		return
	}
	if !s.ds.HasFeatures() {
		s.badRequest(w, "shard has no feature file")
		return
	}
	if len(req.Nodes) == 0 {
		s.badRequest(w, "features request needs at least one node")
		return
	}
	lo, hi := s.ds.ShardRange()
	for i, v := range req.Nodes {
		if int64(v) < lo || int64(v) >= hi {
			s.badRequest(w, fmt.Sprintf("nodes[%d] = %d outside this shard's range [%d,%d)", i, v, lo, hi))
			return
		}
	}
	s.met.shardCalls.Add(1)
	feats, err := s.local.Features(r.Context(), req.Nodes)
	if err != nil {
		s.met.sampleErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "shard features failed: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, shard.FeaturesResponse{Features: feats})
}

// failCanceled maps a dead request context to its status: 504 for a
// deadline, 503 for everything else (client gone, forced drain).
func (s *Server) failCanceled(w http.ResponseWriter, ctx context.Context) {
	failCanceled(w, ctx, s.met)
}

func failCanceled(w http.ResponseWriter, ctx context.Context, m *metrics) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		m.deadlineExceeded.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request canceled"})
}
