package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

func testDataset(t *testing.T) *storage.Dataset {
	t.Helper()
	dir := t.TempDir()
	if _, err := gen.Generate(dir, "tiny", "rmat", 2_000, 30_000, 11); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// testFeatureDataset is testDataset plus a per-node f32 feature file,
// for the feature-serving paths.
const testFeatureDim = 6

func testFeatureDataset(t *testing.T) *storage.Dataset {
	t.Helper()
	dir := t.TempDir()
	if _, err := gen.GenerateWith(dir, "tiny", "rmat", 2_000, 30_000, 11,
		gen.Options{FeatureDim: testFeatureDim}); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// startServer boots srv on a loopback listener and returns its base
// URL. Shutdown is registered as cleanup (idempotent, so tests that
// shut down explicitly are fine).
func startServer(t *testing.T, ds *storage.Dataset, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, "http://" + ln.Addr().String()
}

func postSample(t *testing.T, client *http.Client, base string, req sampleRequest) (int, []byte) {
	t.Helper()
	return postSamplePath(t, client, base, "/v1/sample", req)
}

// postSamplePath posts to an explicit path (so tests can exercise the
// ?features=true query-parameter form of the feature switch).
func postSamplePath(t *testing.T, client *http.Client, base, path string, req sampleRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// referenceBatches computes what the determinism contract promises for
// one request: a direct single-threaded core run, chunked at the
// engine batch size, chunk i seeded sample.Mix(seed, i).
func referenceBatches(t *testing.T, ds *storage.Dataset, coreCfg core.Config, backend uring.Backend, req sampleRequest, chunkSize int) []*core.Batch {
	t.Helper()
	cfg := coreCfg
	cfg.WrapRing = nil
	s, err := core.New(ds, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fanouts := req.Fanouts
	if len(fanouts) == 0 {
		fanouts = cfg.Fanouts
	}
	var out []*core.Batch
	for ci := 0; ci*chunkSize < len(req.Targets); ci++ {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > len(req.Targets) {
			hi = len(req.Targets)
		}
		b, err := w.SampleBatchOpts(req.Targets[lo:hi], core.BatchOpts{
			Fanouts:  fanouts,
			Seed:     sample.Mix(req.Seed, uint64(ci)),
			Features: req.Features,
			Strategy: req.Strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func assertResponseMatches(t *testing.T, label string, data []byte, want []*core.Batch) {
	t.Helper()
	var resp sampleResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("%s: bad response JSON: %v", label, err)
	}
	if len(resp.Batches) != len(want) {
		t.Fatalf("%s: got %d batches, want %d", label, len(resp.Batches), len(want))
	}
	var folded uint64
	for bi, wb := range want {
		gb := resp.Batches[bi]
		if len(gb.Layers) != len(wb.Layers) {
			t.Fatalf("%s: batch %d has %d layers, want %d", label, bi, len(gb.Layers), len(wb.Layers))
		}
		for li := range wb.Layers {
			wl, gl := &wb.Layers[li], &gb.Layers[li]
			if len(gl.Targets) != len(wl.Targets) || len(gl.Starts) != len(wl.Starts) || len(gl.Neighbors) != len(wl.Neighbors) {
				t.Fatalf("%s: batch %d layer %d shapes differ", label, bi, li)
			}
			for i := range wl.Targets {
				if gl.Targets[i] != wl.Targets[i] {
					t.Fatalf("%s: batch %d layer %d target %d differs", label, bi, li, i)
				}
			}
			for i := range wl.Starts {
				if gl.Starts[i] != wl.Starts[i] {
					t.Fatalf("%s: batch %d layer %d start %d differs", label, bi, li, i)
				}
			}
			for i := range wl.Neighbors {
				if gl.Neighbors[i] != wl.Neighbors[i] {
					t.Fatalf("%s: batch %d layer %d neighbor %d differs: %d vs %d",
						label, bi, li, i, gl.Neighbors[i], wl.Neighbors[i])
				}
			}
		}
		if wb.FeatureDim > 0 {
			// Feature payload: node union, dim, and raw f32 bytes must all
			// be byte-identical to the direct core run.
			if gb.FeatureDim != wb.FeatureDim {
				t.Fatalf("%s: batch %d feature dim %d, want %d", label, bi, gb.FeatureDim, wb.FeatureDim)
			}
			if len(gb.FeatNodes) != len(wb.FeatNodes) {
				t.Fatalf("%s: batch %d has %d feature nodes, want %d", label, bi, len(gb.FeatNodes), len(wb.FeatNodes))
			}
			for i := range wb.FeatNodes {
				if gb.FeatNodes[i] != wb.FeatNodes[i] {
					t.Fatalf("%s: batch %d feature node %d differs: %d vs %d",
						label, bi, i, gb.FeatNodes[i], wb.FeatNodes[i])
				}
			}
			if !bytes.Equal(gb.Features, wb.Features) {
				t.Fatalf("%s: batch %d feature payload differs from the reference (%d vs %d bytes)",
					label, bi, len(gb.Features), len(wb.Features))
			}
		} else if gb.FeatureDim != 0 || len(gb.FeatNodes) != 0 || len(gb.Features) != 0 {
			t.Fatalf("%s: batch %d carries a feature payload the reference does not", label, bi)
		}
		d := wb.Digest()
		if gb.Digest != fmt.Sprintf("%016x", d) {
			t.Fatalf("%s: batch %d digest %s != reference %016x", label, bi, gb.Digest, d)
		}
		folded = folded*0x100000001b3 ^ d
	}
	if resp.Digest != fmt.Sprintf("%016x", folded) {
		t.Fatalf("%s: folded digest %s != reference %016x", label, resp.Digest, folded)
	}
}

// scrapeMetric fetches /metrics and returns the value of the exactly
// named series (no labels).
func scrapeMetrics(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return 0
}

// TestServeE2EDeterminism fires 80 concurrent requests with mixed
// fanouts, seeds, and sizes (some spanning multiple chunks) at a
// 4-worker server and asserts every response is byte-identical to a
// direct single-threaded core run of the same request — the serving
// layer's determinism contract, independent of coalescing and worker
// scheduling.
func TestServeE2EDeterminism(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 4
	cfg.Core.BatchSize = 64
	cfg.QueueDepth = 4096
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)

	fanoutMixes := [][]int{nil, {5}, {10, 5}, {20, 15, 10}, {3, 3, 3}}
	rng := sample.NewRNG(42)
	const n = 80
	reqs := make([]sampleRequest, n)
	for i := range reqs {
		nt := 1 + int(rng.Uint32n(200)) // some requests span 4 chunks
		targets := make([]uint32, nt)
		for j := range targets {
			targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
		}
		reqs[i] = sampleRequest{
			Targets: targets,
			Fanouts: fanoutMixes[i%len(fanoutMixes)],
			Seed:    uint64(1000 + i),
		}
	}

	client := &http.Client{Timeout: 60 * time.Second}
	type result struct {
		status int
		data   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, data := postSample(t, client, base, reqs[i])
			results[i] = result{st, data}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.data)
		}
		want := referenceBatches(t, ds, cfg.Core, cfg.Backend, reqs[i], cfg.Core.BatchSize)
		assertResponseMatches(t, fmt.Sprintf("request %d", i), r.data, want)
	}

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != n {
		t.Fatalf("responses_ok_total = %v, want %d", got, n)
	}
	if got := metricValue(t, body, "ringsampler_serve_queue_depth"); got != 0 {
		t.Fatalf("queue_depth = %v after drain, want 0", got)
	}
	batches := metricValue(t, body, "ringsampler_serve_batches_total")
	if batches < 1 {
		t.Fatalf("batches_total = %v, want ≥ 1", batches)
	}
	if got := metricValue(t, body, "ringsampler_serve_batch_targets_count"); got != batches {
		t.Fatalf("batch_targets histogram count %v != batches_total %v", got, batches)
	}
	if got := metricValue(t, body, "ringsampler_io_bytes_read_total"); got <= 0 {
		t.Fatalf("io_bytes_read_total = %v, want > 0", got)
	}
}

// TestServeE2EFeatureDeterminism is the feature-store serving contract:
// 80 concurrent mixed-fanout requests against a 4-worker server with a
// live hot-node feature cache, most asking for features (half through
// the body field, half through the ?features=true query parameter) and
// every third one plain — so feature and non-feature chunks coalesce
// into the same micro-batches. Every response, feature payload bytes
// included, must be byte-identical to a direct single-threaded core run
// of the same request.
func TestServeE2EFeatureDeterminism(t *testing.T) {
	ds := testFeatureDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 4
	cfg.Core.BatchSize = 64
	// A real cache budget: concurrent requests hit and miss the shared
	// feature cache while the determinism contract must still hold.
	cfg.Core.FeatureCacheBudgetBytes = 16 << 10
	cfg.QueueDepth = 4096
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)

	fanoutMixes := [][]int{nil, {5}, {10, 5}, {20, 15, 10}, {3, 3, 3}}
	rng := sample.NewRNG(43)
	const n = 80
	reqs := make([]sampleRequest, n)
	paths := make([]string, n)
	featureCount := 0
	for i := range reqs {
		nt := 1 + int(rng.Uint32n(200)) // some requests span 4 chunks
		targets := make([]uint32, nt)
		for j := range targets {
			targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
		}
		reqs[i] = sampleRequest{
			Targets: targets,
			Fanouts: fanoutMixes[i%len(fanoutMixes)],
			Seed:    uint64(2000 + i),
		}
		paths[i] = "/v1/sample"
		if i%3 == 0 {
			continue // plain request, coalesces with featureful neighbors
		}
		featureCount++
		if i%2 == 0 {
			reqs[i].Features = true
		} else {
			// Query-parameter form: the wire request body says nothing
			// about features, but the reference must still produce them.
			paths[i] = "/v1/sample?features=true"
		}
	}

	client := &http.Client{Timeout: 60 * time.Second}
	type result struct {
		status int
		data   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, data := postSamplePath(t, client, base, paths[i], reqs[i])
			results[i] = result{st, data}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.data)
		}
		ref := reqs[i]
		if paths[i] != "/v1/sample" {
			ref.Features = true
		}
		want := referenceBatches(t, ds, cfg.Core, cfg.Backend, ref, cfg.Core.BatchSize)
		if ref.Features {
			for bi, b := range want {
				if b.FeatureDim != testFeatureDim || len(b.Features) == 0 {
					t.Fatalf("reference for request %d batch %d has no feature payload", i, bi)
				}
			}
		}
		assertResponseMatches(t, fmt.Sprintf("request %d", i), r.data, want)
	}

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != n {
		t.Fatalf("responses_ok_total = %v, want %d", got, n)
	}
	if got := metricValue(t, body, "ringsampler_serve_feature_requests_total"); got != float64(featureCount) {
		t.Fatalf("feature_requests_total = %v, want %d", got, featureCount)
	}
	if got := metricValue(t, body, "ringsampler_io_feat_reads_total"); got <= 0 {
		t.Fatalf("io_feat_reads_total = %v, want > 0", got)
	}
	hits := metricValue(t, body, "ringsampler_io_feat_cache_hits_total")
	misses := metricValue(t, body, "ringsampler_io_feat_cache_misses_total")
	if hits <= 0 || misses <= 0 {
		t.Fatalf("feature cache never exercised under load: hits=%v misses=%v", hits, misses)
	}
}

// TestServeFeatureValidation: feature requests against an edge-only
// dataset and malformed ?features values are 400s that never reach the
// rings.
func TestServeFeatureValidation(t *testing.T) {
	ds := testDataset(t) // no feature file
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 1
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 30 * time.Second}

	req := sampleRequest{Targets: []uint32{1, 2, 3}, Fanouts: []int{5}, Seed: 1}

	for _, tc := range []struct {
		name, path string
		body       sampleRequest
		wantErr    string
	}{
		{"body flag on edge-only dataset", "/v1/sample",
			sampleRequest{Targets: req.Targets, Fanouts: req.Fanouts, Seed: 1, Features: true},
			"no feature file"},
		{"query flag on edge-only dataset", "/v1/sample?features=true", req, "no feature file"},
		{"malformed query flag", "/v1/sample?features=maybe", req, "must be a boolean"},
	} {
		st, data := postSamplePath(t, client, base, tc.path, tc.body)
		if st != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, st, data)
		}
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("%s: bad error JSON: %v", tc.name, err)
		}
		if !strings.Contains(er.Error, tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, er.Error, tc.wantErr)
		}
	}

	// ?features=false (and an explicit false body flag) on a featureful
	// dataset is an ordinary plain request.
	fds := testFeatureDataset(t)
	_, fbase := startServer(t, fds, cfg)
	st, data := postSamplePath(t, client, fbase, "/v1/sample?features=false", req)
	if st != http.StatusOK {
		t.Fatalf("features=false: status %d: %s", st, data)
	}
	var resp sampleResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	for bi, b := range resp.Batches {
		if b.FeatureDim != 0 || len(b.Features) != 0 {
			t.Fatalf("features=false: batch %d still carries a feature payload", bi)
		}
	}

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_bad_requests_total"); got != 3 {
		t.Fatalf("bad_requests_total = %v, want 3", got)
	}
	if got := metricValue(t, body, "ringsampler_io_feat_reads_total"); got != 0 {
		t.Fatalf("rejected feature requests still reached the feature ring: %v reads", got)
	}
}

// slowRing delays every Wait — a dial for saturating the service in
// tests without big datasets.
type slowRing struct {
	uring.Ring
	delay time.Duration
}

func (r *slowRing) Wait(min int) ([]uring.CQE, error) {
	time.Sleep(r.delay)
	return r.Ring.Wait(min)
}

// TestServeSaturationFastFail saturates a 1-worker server with a tiny
// admission queue: most of the 64 concurrent requests must be rejected
// 429 — quickly, not after queuing behind the slow device — the rest
// must succeed and stay byte-identical, and /metrics must agree with
// the client-observed rejection count. Every request asks for features:
// the feature stage rides the same admission control, and successful
// responses must carry byte-identical feature payloads even under
// saturation.
func TestServeSaturationFastFail(t *testing.T) {
	ds := testFeatureDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 1
	cfg.Core.BatchSize = 64
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &slowRing{Ring: r, delay: 2 * time.Millisecond}, nil
	}
	cfg.QueueDepth = 2
	cfg.MaxBatchTargets = 32 // one job per micro-batch
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)

	rng := sample.NewRNG(7)
	const n = 64
	reqs := make([]sampleRequest, n)
	for i := range reqs {
		targets := make([]uint32, 32)
		for j := range targets {
			targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
		}
		reqs[i] = sampleRequest{Targets: targets, Fanouts: []int{5, 5}, Seed: uint64(i), Features: true, TimeoutMS: 30_000}
	}

	client := &http.Client{Timeout: 60 * time.Second}
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	rejectLat := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			statuses[i], bodies[i] = postSample(t, client, base, reqs[i])
			rejectLat[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()

	var ok, rejected, other int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
			want := referenceBatches(t, ds, cfg.Core, cfg.Backend, reqs[i], cfg.Core.BatchSize)
			assertResponseMatches(t, fmt.Sprintf("request %d", i), bodies[i], want)
		case http.StatusTooManyRequests:
			rejected++
			// Fast-fail: a rejection must not have waited on the device.
			if rejectLat[i] > 5*time.Second {
				t.Fatalf("request %d: 429 took %v — rejection queued instead of fast-failing", i, rejectLat[i])
			}
		default:
			other++
			t.Logf("request %d: unexpected status %d: %s", i, st, bodies[i])
		}
	}
	if other > 0 {
		t.Fatalf("%d requests got a status other than 200/429", other)
	}
	if ok == 0 {
		t.Fatal("no request succeeded under saturation")
	}
	if rejected == 0 {
		t.Fatal("saturation produced no 429s — the queue did not fast-fail")
	}

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_rejected_total"); got != float64(rejected) {
		t.Fatalf("rejected_total = %v, client observed %d rejections", got, rejected)
	}
	if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != float64(ok) {
		t.Fatalf("responses_ok_total = %v, client observed %d", got, ok)
	}
	if got := metricValue(t, body, "ringsampler_serve_sample_seconds_count"); got <= 0 {
		t.Fatalf("sample_seconds histogram empty: %v", got)
	}
}

// TestServeDeadline: a request whose deadline is far shorter than the
// device latency must come back 504 and be counted — features on, so
// the deadline path is proven unchanged with the feature stage in play.
func TestServeDeadline(t *testing.T) {
	ds := testFeatureDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 1
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &slowRing{Ring: r, delay: 50 * time.Millisecond}, nil
	}
	_, base := startServer(t, ds, cfg)

	client := &http.Client{Timeout: 30 * time.Second}
	st, data := postSample(t, client, base, sampleRequest{
		Targets: []uint32{1, 2, 3}, Fanouts: []int{10, 10}, Seed: 5, Features: true, TimeoutMS: 10,
	})
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", st, data)
	}
	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_deadline_exceeded_total"); got != 1 {
		t.Fatalf("deadline_exceeded_total = %v, want 1", got)
	}
}

// breakableRing runs clean until armed. Once armed it dribbles
// completions one per Wait, poisons the 2nd delivery with -EIO (the
// batch fails with later completions still owed), lets the quarantine
// drain a few of them (StaleDrained > 0), then errors every Wait — the
// exact shape that leaves a worker Broken. Held-back completions are
// queued, never dropped, so the underlying ring's accounting stays
// intact.
type breakableRing struct {
	uring.Ring
	arm       *atomic.Bool
	armed     bool // latched on first Wait that observes arm
	queued    []uring.CQE
	delivered int // deliveries since arming
}

var errRingDied = errors.New("breakableRing: ring died")

func (r *breakableRing) Wait(min int) ([]uring.CQE, error) {
	if !r.armed && r.arm.Load() {
		r.armed = true
	}
	if !r.armed {
		return r.Ring.Wait(min)
	}
	if r.delivered >= 6 {
		return nil, errRingDied
	}
	for len(r.queued) == 0 {
		cqes, err := r.Ring.Wait(1)
		if err != nil {
			return nil, err
		}
		if len(cqes) == 0 {
			return nil, nil
		}
		r.queued = append(r.queued, cqes...)
	}
	out := []uring.CQE{r.queued[0]}
	r.queued = r.queued[1:]
	r.delivered++
	if r.delivered == 2 {
		out[0].Res = -int32(syscall.EIO)
	}
	return out, nil
}

// TestServeWorkerRetirement breaks the single pooled worker mid-batch
// and asserts the PR's replacement-accounting contract: the broken
// worker is retired (never reused), a replacement serves later requests
// correctly, and the retired worker's IOStats — the reads it completed
// before breaking AND the stale completions its quarantine drained —
// stay in the aggregate instead of vanishing with the worker.
func TestServeWorkerRetirement(t *testing.T) {
	ds := testDataset(t)
	var arm atomic.Bool
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendSim
	cfg.Core.Threads = 1
	cfg.Core.BatchSize = 64
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		if workerID == 0 {
			return &breakableRing{Ring: r, arm: &arm}, nil
		}
		return r, nil
	}
	srv, base := startServer(t, ds, cfg)

	rng := sample.NewRNG(3)
	targets := make([]uint32, 48)
	for j := range targets {
		targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Request A: clean run on worker 0.
	reqA := sampleRequest{Targets: targets, Fanouts: []int{8, 4}, Seed: 21}
	st, data := postSample(t, client, base, reqA)
	if st != http.StatusOK {
		t.Fatalf("request A: status %d: %s", st, data)
	}
	readsAfterA := srv.IOStats().Reads
	if readsAfterA == 0 {
		t.Fatal("request A recorded no reads")
	}

	// Request B: the armed ring poisons the batch and then dies during
	// quarantine — worker 0 must come out Broken and be retired.
	arm.Store(true)
	st, data = postSample(t, client, base, reqA)
	if st != http.StatusInternalServerError {
		t.Fatalf("request B: status %d, want 500: %s", st, data)
	}
	arm.Store(false)

	// Request C: must be served by the replacement worker, bytes
	// identical to a direct run.
	reqC := sampleRequest{Targets: targets, Fanouts: []int{6, 3}, Seed: 22}
	st, data = postSample(t, client, base, reqC)
	if st != http.StatusOK {
		t.Fatalf("request C: status %d: %s", st, data)
	}
	want := referenceBatches(t, ds, cfg.Core, cfg.Backend, reqC, cfg.Core.BatchSize)
	assertResponseMatches(t, "request C", data, want)

	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_workers_retired_total"); got != 1 {
		t.Fatalf("workers_retired_total = %v, want 1", got)
	}
	st2 := srv.IOStats()
	// Replacement accounting: A's reads (on the retired worker) must
	// still be in the aggregate alongside C's (on the replacement).
	if st2.Reads <= readsAfterA {
		t.Fatalf("aggregate reads %d after retirement ≤ reads %d before — retired worker's stats were dropped",
			st2.Reads, readsAfterA)
	}
	if st2.StaleDrained == 0 {
		t.Fatal("quarantine drained no stale completions — retired stats lost or scenario defanged")
	}
	if got := metricValue(t, body, "ringsampler_io_stale_drained_total"); got != float64(st2.StaleDrained) {
		t.Fatalf("metrics stale_drained %v != pool stats %d", got, st2.StaleDrained)
	}
}

// TestServeGracefulDrain starts requests against a deliberately slow
// server and shuts down while they are in flight: every in-flight
// request must complete (not die mid-batch), later requests must be
// refused, and Serve must return http.ErrServerClosed.
func TestServeGracefulDrain(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 2
	cfg.Core.BatchSize = 64
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &slowRing{Ring: r, delay: 5 * time.Millisecond}, nil
	}
	cfg.BatchWindow = time.Millisecond
	srv, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 60 * time.Second}
	const n = 8
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := sample.NewRNG(sample.Mix(17, uint64(i)))
			targets := make([]uint32, 32)
			for j := range targets {
				targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
			}
			statuses[i], _ = postSample(t, client, base, sampleRequest{Targets: targets, Fanouts: []int{4, 4}, Seed: uint64(i)})
		}(i)
	}
	// Give the requests a moment to be admitted, then drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("in-flight request %d got status %d during graceful drain", i, st)
		}
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if srv.IOStats().Reads == 0 {
		t.Fatal("drained server reports zero reads")
	}
}

// TestServeValidation: malformed and out-of-range requests are 400s,
// counted, and never reach the engine.
func TestServeValidation(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendSim
	cfg.Core.Threads = 1
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 10 * time.Second}

	cases := []sampleRequest{
		{},                           // no targets
		{Targets: []uint32{1 << 30}}, // target out of range
		{Targets: []uint32{1}, Fanouts: []int{0}},       // zero fanout
		{Targets: []uint32{1}, Fanouts: []int{1 << 20}}, // absurd fanout
		{Targets: make([]uint32, 100_000)},              // too many targets
	}
	for i, req := range cases {
		st, data := postSample(t, client, base, req)
		if st != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400: %s", i, st, data)
		}
	}
	resp, err := client.Post(base+"/v1/sample", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_bad_requests_total"); got != float64(len(cases)+1) {
		t.Fatalf("bad_requests_total = %v, want %d", got, len(cases)+1)
	}
	if got := metricValue(t, body, "ringsampler_io_reads_total"); got != 0 {
		t.Fatalf("validation failures reached the engine: %v reads", got)
	}
}

// TestServeStrategy: the request body's "strategy" field selects the
// draw strategy per request — responses must be byte-identical to a
// direct core run under the same strategy, strategies must coexist in
// one server (they coalesce into the same micro-batches), and unknown
// names are 400s that never reach the rings.
func TestServeStrategy(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendPool
	cfg.Core.Threads = 2
	cfg.Core.BatchSize = 64
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 60 * time.Second}

	rng := sample.NewRNG(19)
	targets := make([]uint32, 150) // spans 3 chunks
	for j := range targets {
		targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
	}

	digests := make(map[string]string)
	for _, strat := range []string{"", core.StrategyUniform, core.StrategyWalk, core.StrategyWeighted} {
		req := sampleRequest{Targets: targets, Fanouts: []int{6, 4}, Seed: 31, Strategy: strat}
		st, data := postSample(t, client, base, req)
		if st != http.StatusOK {
			t.Fatalf("strategy %q: status %d: %s", strat, st, data)
		}
		want := referenceBatches(t, ds, cfg.Core, cfg.Backend, req, cfg.Core.BatchSize)
		assertResponseMatches(t, fmt.Sprintf("strategy %q", strat), data, want)
		var resp sampleResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		digests[strat] = resp.Digest
	}
	// "" and "uniform" are the same strategy; the others draw
	// differently from the same seed.
	if digests[""] != digests[core.StrategyUniform] {
		t.Fatal("empty strategy does not default to uniform")
	}
	if digests[core.StrategyWalk] == digests[core.StrategyUniform] ||
		digests[core.StrategyWeighted] == digests[core.StrategyUniform] {
		t.Fatal("non-uniform strategy produced the uniform digest — the field was ignored")
	}

	readsBefore := metricValue(t, scrapeMetrics(t, client, base), "ringsampler_io_reads_total")
	st, data := postSample(t, client, base, sampleRequest{
		Targets: []uint32{1, 2, 3}, Fanouts: []int{5}, Seed: 1, Strategy: "bogus",
	})
	if st != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d, want 400: %s", st, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "bogus") || !strings.Contains(er.Error, core.StrategyWalk) {
		t.Fatalf("strategy error %q names neither the bad name nor the known ones", er.Error)
	}
	body := scrapeMetrics(t, client, base)
	if got := metricValue(t, body, "ringsampler_serve_bad_requests_total"); got != 1 {
		t.Fatalf("bad_requests_total = %v, want 1", got)
	}
	if got := metricValue(t, body, "ringsampler_io_reads_total"); got != readsBefore {
		t.Fatalf("rejected strategy request reached the engine: reads %v -> %v", readsBefore, got)
	}
}

// TestServePoisonedChunkCancelsSiblings: when one chunk of a fanned-out
// request fails, the request's surviving chunks must be canceled
// instead of burning pool time on a response that is already doomed.
// One worker, a 4-chunk request, and a ring that hard-fails every read:
// chunk 0 poisons the request, so the pool must skip the other three
// (counted as canceled jobs) rather than running them to failure too.
func TestServePoisonedChunkCancelsSiblings(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Backend = uring.BackendSim
	cfg.Core.Threads = 1
	cfg.Core.BatchSize = 64
	cfg.Core.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return uring.NewFault(r, uring.FaultPlan{Seed: 5, HardErrRate: 1})
	}
	cfg.BatchWindow = time.Millisecond
	_, base := startServer(t, ds, cfg)
	client := &http.Client{Timeout: 30 * time.Second}

	rng := sample.NewRNG(23)
	targets := make([]uint32, 4*cfg.Core.BatchSize) // exactly 4 chunks
	for j := range targets {
		targets[j] = rng.Uint32n(uint32(ds.NumNodes()))
	}
	st, data := postSample(t, client, base, sampleRequest{Targets: targets, Fanouts: []int{6, 4}, Seed: 3})
	if st != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500: %s", st, data)
	}

	body := scrapeMetrics(t, client, base)
	// The single slot runs the chunks in order: chunk 0 fails and
	// cancels the request, chunks 1-3 must be skipped.
	if got := metricValue(t, body, "ringsampler_serve_canceled_jobs_total"); got != 3 {
		t.Fatalf("canceled_jobs_total = %v, want 3 (sibling chunks ran after the request died)", got)
	}
	if got := metricValue(t, body, "ringsampler_serve_responses_ok_total"); got != 0 {
		t.Fatalf("responses_ok_total = %v, want 0", got)
	}
}

// TestHistRender sanity-checks the Prometheus rendering: cumulative
// buckets, +Inf count, and sum/count lines.
func TestHistRender(t *testing.T) {
	h := newHist([]int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	writeHist(&buf, "x", "help", h, 1)
	out := buf.String()
	for _, want := range []string{
		`x_bucket{le="10"} 2`,
		`x_bucket{le="100"} 3`,
		`x_bucket{le="1000"} 4`,
		`x_bucket{le="+Inf"} 5`,
		"x_sum 5562",
		"x_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered histogram missing %q:\n%s", want, out)
		}
	}
}
