package train_test

import (
	"context"
	"testing"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/train"
	"ringsampler/internal/uring"
)

const (
	testDim     = 8
	testClasses = 4
)

// testLabeledDataset generates a small labeled+featured R-MAT graph.
func testLabeledDataset(t *testing.T) *storage.Dataset {
	t.Helper()
	dir := t.TempDir()
	_, err := gen.GenerateWith(dir, "tiny-train", "rmat", 2_000, 30_000, 11,
		gen.Options{FeatureDim: testDim, NumClasses: testClasses})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func testTargets(ds *storage.Dataset, n int) []uint32 {
	r := sample.NewRNG(99)
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32n(uint32(ds.NumNodes()))
	}
	return out
}

func trainCfg(threads int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Fanouts = []int{8, 5}
	cfg.BatchSize = 64
	cfg.Threads = threads
	cfg.Seed = 7
	cfg.FetchFeatures = true
	return cfg
}

func newTrainer(t *testing.T, ds *storage.Dataset) *train.Trainer {
	t.Helper()
	labels, err := ds.Labels()
	if err != nil {
		t.Fatal(err)
	}
	m, err := train.NewModel(train.Config{
		FeatureDim: testDim, Hidden: 8, Classes: testClasses,
		Layers: 2, LR: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &train.Trainer{Model: m, Labels: labels}
}

// runEpochs trains `epochs` epochs from a fresh model and returns the
// per-epoch stats.
func runEpochs(t *testing.T, ds *storage.Dataset, threads, epochs int, serialized bool) []*train.EpochStats {
	t.Helper()
	s, err := core.New(ds, trainCfg(threads), uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t, ds)
	stats, err := tr.Run(context.Background(), s, testTargets(ds, 320), epochs, serialized)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != epochs {
		t.Fatalf("got %d epoch stats, want %d", len(stats), epochs)
	}
	return stats
}

// TestTrainThreadInvariance is the training pipeline's headline
// determinism guarantee: after 3 epochs the loss curve and the final
// weights are BIT-identical at 1 vs 4 worker threads — the sampler
// delivers the same batch stream in order, and the model reduces
// gradients in fixed order, so f32 non-associativity never sees a
// reordering. scripts/check.sh gates on this under -race.
func TestTrainThreadInvariance(t *testing.T) {
	ds := testLabeledDataset(t)
	ref := runEpochs(t, ds, 1, 3, false)
	got := runEpochs(t, ds, 4, 3, false)
	for e := range ref {
		if ref[e].Loss != got[e].Loss || ref[e].Accuracy != got[e].Accuracy {
			t.Fatalf("epoch %d: loss/accuracy diverge across threads: %v/%v vs %v/%v",
				e, ref[e].Loss, ref[e].Accuracy, got[e].Loss, got[e].Accuracy)
		}
		if ref[e].WeightsDigest != got[e].WeightsDigest {
			t.Fatalf("epoch %d: weights diverge across threads: %s vs %s",
				e, ref[e].WeightsDigest, got[e].WeightsDigest)
		}
	}
}

// TestTrainOverlappedMatchesSerialized: the double-buffered pipeline
// and the strictly serialized reference consume identical batch
// streams, so their weight trajectories are bit-identical — the
// overlap is free, not approximate.
func TestTrainOverlappedMatchesSerialized(t *testing.T) {
	ds := testLabeledDataset(t)
	over := runEpochs(t, ds, 4, 2, false)
	ser := runEpochs(t, ds, 4, 2, true)
	for e := range over {
		if over[e].WeightsDigest != ser[e].WeightsDigest {
			t.Fatalf("epoch %d: overlapped weights %s != serialized %s",
				e, over[e].WeightsDigest, ser[e].WeightsDigest)
		}
		if over[e].Loss != ser[e].Loss {
			t.Fatalf("epoch %d: overlapped loss %v != serialized %v", e, over[e].Loss, ser[e].Loss)
		}
		if over[e].Sampled != ser[e].Sampled {
			t.Fatalf("epoch %d: sampled entries differ: %d vs %d", e, over[e].Sampled, ser[e].Sampled)
		}
	}
}

// TestTrainLearns: multi-epoch training on the synthetic labels
// actually reduces loss and beats chance accuracy — the labels are
// linearly realizable from the features by construction, so a failure
// here means the model or the label generator regressed.
func TestTrainLearns(t *testing.T) {
	ds := testLabeledDataset(t)
	stats := runEpochs(t, ds, 4, 5, false)
	first, last := stats[0], stats[len(stats)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not decrease over 5 epochs: %.4f -> %.4f", first.Loss, last.Loss)
	}
	chance := 1.0 / float64(testClasses)
	if last.Accuracy <= chance {
		t.Fatalf("epoch-5 accuracy %.3f not above chance %.3f", last.Accuracy, chance)
	}
	for _, st := range stats {
		if st.Seconds <= 0 || st.ComputeSeconds <= 0 {
			t.Fatalf("epoch %d: non-positive timings: %+v", st.Epoch, st)
		}
		if st.OverlapEfficiency < 0 || st.OverlapEfficiency > 1 {
			t.Fatalf("epoch %d: overlap efficiency %v outside [0,1]", st.Epoch, st.OverlapEfficiency)
		}
		if st.Sampled == 0 || st.EntriesPerSec <= 0 {
			t.Fatalf("epoch %d: no sampling throughput recorded: %+v", st.Epoch, st)
		}
	}
}

// TestTrainRequiresFeatures: a sampler without the feature stage is
// rejected up front by both modes.
func TestTrainRequiresFeatures(t *testing.T) {
	ds := testLabeledDataset(t)
	cfg := trainCfg(1)
	cfg.FetchFeatures = false
	s, err := core.New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t, ds)
	targets := testTargets(ds, 64)
	if _, err := tr.EpochOverlapped(context.Background(), s, targets, 0); err == nil {
		t.Fatal("overlapped epoch accepted a sampler without FetchFeatures")
	}
	if _, err := tr.EpochSerialized(context.Background(), s, targets, 0); err == nil {
		t.Fatal("serialized epoch accepted a sampler without FetchFeatures")
	}
}
