package train

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
)

// epochSalt decorrelates per-epoch sampling seeds from the raw config
// seed, so epoch e resamples different neighborhoods than a plain
// single-epoch run with the same seed.
const epochSalt = 0xe90c45a1

// EpochSeed derives epoch e's sampling seed from the config seed. Both
// pipeline modes use it, which is why they see identical batch streams.
func EpochSeed(seed uint64, epoch int) uint64 {
	return sample.Mix(seed^epochSalt, uint64(epoch))
}

// EpochStats reports one training epoch. The determinism contract makes
// Loss, Accuracy, and WeightsDigest identical across Config.Threads and
// across the overlapped/serialized pipeline modes; only the timing
// fields vary run to run.
type EpochStats struct {
	Epoch   int `json:"epoch"`
	Batches int `json:"batches"`
	Targets int `json:"targets"`

	// Loss is the mean cross-entropy over the epoch's targets; Accuracy
	// the fraction classified correctly (both measured at the weights
	// current when each batch was consumed, the usual running-epoch
	// metric).
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`

	// Seconds is the epoch wall clock; ComputeSeconds the part spent
	// inside Model.Step; StallSeconds the remainder — time the trainer
	// sat waiting on sampling+fetch I/O. In the overlapped mode workers
	// sample batch i+1 while the trainer computes on batch i, so
	// StallSeconds shrinks toward zero as compute covers the I/O;
	// serialized mode pays the full sample latency in it.
	Seconds        float64 `json:"seconds"`
	ComputeSeconds float64 `json:"computeSeconds"`
	StallSeconds   float64 `json:"stallSeconds"`
	// OverlapEfficiency is ComputeSeconds/Seconds — the fraction of the
	// epoch the trainer's core did useful model work. 1.0 means perfect
	// overlap (the pipeline kept the trainer fed); serialized runs are
	// bounded by compute/(compute+I/O).
	OverlapEfficiency float64 `json:"overlapEfficiency"`

	// Sampled is the epoch's sampled neighbor entries; EntriesPerSec the
	// end-to-end (sample+fetch+train) throughput derived from it.
	Sampled       int64   `json:"sampled"`
	EntriesPerSec float64 `json:"entriesPerSec"`

	// WeightsDigest is Model.WeightsDigest after the epoch.
	WeightsDigest string `json:"weightsDigest"`
}

// Trainer drives a Model over a sampler's epoch batches against a
// per-node label array (storage.Dataset.Labels).
type Trainer struct {
	Model  *Model
	Labels []uint32
}

// finish derives the quotient fields shared by both pipeline modes.
func (t *Trainer) finish(st *EpochStats, sumLoss float64, correct int, start time.Time) {
	st.Seconds = time.Since(start).Seconds()
	st.StallSeconds = st.Seconds - st.ComputeSeconds
	if st.StallSeconds < 0 {
		st.StallSeconds = 0
	}
	if st.Seconds > 0 {
		st.OverlapEfficiency = st.ComputeSeconds / st.Seconds
		st.EntriesPerSec = float64(st.Sampled) / st.Seconds
	}
	if st.Batches > 0 {
		st.Loss = sumLoss / float64(st.Batches)
	}
	if st.Targets > 0 {
		st.Accuracy = float64(correct) / float64(st.Targets)
	}
	st.WeightsDigest = fmt.Sprintf("%016x", t.Model.WeightsDigest())
}

// EpochOverlapped trains one epoch through the double-buffered
// producer/consumer pipeline: RunEpochSeeded's workers sample and fetch
// upcoming batches concurrently while Model.Step computes on the
// current one, with the runner's in-order delivery guaranteeing the
// trainer consumes batches 0,1,2,... exactly — the same fixed gradient
// order the serialized mode uses, which is why the two produce
// bit-identical weights. Requires Config.FetchFeatures.
func (t *Trainer) EpochOverlapped(ctx context.Context, s *core.Sampler, targets []uint32, epoch int) (*EpochStats, error) {
	if !s.Config().FetchFeatures {
		return nil, fmt.Errorf("train: sampler must run with Config.FetchFeatures")
	}
	st := &EpochStats{Epoch: epoch, Targets: len(targets)}
	var sumLoss float64
	var correct int
	start := time.Now()
	es, err := s.RunEpochSeeded(ctx, EpochSeed(s.Config().Seed, epoch), targets, func(_ int, b *core.Batch) error {
		t0 := time.Now()
		loss, corr, err := t.Model.Step(b, t.Labels)
		st.ComputeSeconds += time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		st.Batches++
		sumLoss += loss
		correct += corr
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.Sampled = es.Sampled
	t.finish(st, sumLoss, correct, start)
	return st, nil
}

// EpochSerialized trains one epoch with no overlap: a single worker
// samples+fetches each batch to completion, then the trainer computes
// on it, then the next batch starts — the reference the benchmark's
// overlapped mode is measured against. Batch bi is seeded exactly as
// the epoch runner seeds it (Mix(EpochSeed, bi)), so the batch stream —
// and therefore the weight trajectory — is bit-identical to
// EpochOverlapped at any thread count.
func (t *Trainer) EpochSerialized(ctx context.Context, s *core.Sampler, targets []uint32, epoch int) (*EpochStats, error) {
	cfg := s.Config()
	if !cfg.FetchFeatures {
		return nil, fmt.Errorf("train: sampler must run with Config.FetchFeatures")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("train: epoch needs at least one target")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	w, err := s.NewWorker(0)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	epochSeed := EpochSeed(cfg.Seed, epoch)
	numBatches := (len(targets) + cfg.BatchSize - 1) / cfg.BatchSize
	st := &EpochStats{Epoch: epoch, Targets: len(targets)}
	var sumLoss float64
	var correct int
	start := time.Now()
	for bi := 0; bi < numBatches; bi++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lo := bi * cfg.BatchSize
		hi := lo + cfg.BatchSize
		if hi > len(targets) {
			hi = len(targets)
		}
		b, err := w.SampleBatchSeeded(targets[lo:hi], sample.Mix(epochSeed, uint64(bi)))
		if err != nil {
			return nil, fmt.Errorf("train: serialized batch %d: %w", bi, err)
		}
		st.Sampled += b.TotalSampled()
		t0 := time.Now()
		loss, corr, err := t.Model.Step(b, t.Labels)
		st.ComputeSeconds += time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		st.Batches++
		sumLoss += loss
		correct += corr
	}
	t.finish(st, sumLoss, correct, start)
	return st, nil
}

// Run trains for epochs epochs in the selected mode, returning the
// per-epoch stats in order. A convenience wrapper both cmd/epoch -train
// and exp.TrainSweep drive.
func (t *Trainer) Run(ctx context.Context, s *core.Sampler, targets []uint32, epochs int, serialized bool) ([]*EpochStats, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("train: epochs %d must be positive", epochs)
	}
	out := make([]*EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		var (
			st  *EpochStats
			err error
		)
		if serialized {
			st, err = t.EpochSerialized(ctx, s, targets, e)
		} else {
			st, err = t.EpochOverlapped(ctx, s, targets, e)
		}
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}
