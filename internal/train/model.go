// Package train closes the loop the paper's Fig 4/5 baselines imply: a
// minimal, dependency-free GraphSAGE consumer that trains on the
// batches the sampler produces — mean-aggregator layers over
// Batch.Features, f32 dense matmuls, softmax cross-entropy, plain SGD.
//
// The package inherits the repo's determinism contract (DESIGN.md §13):
// a training run's loss curve and final weights are a pure function of
// (dataset, core.Config, targets, seed, train.Config). Two things make
// that hold. First, the sampler already delivers a thread-invariant
// batch stream in batch order. Second, every float accumulation here —
// matmuls, aggregator means, gradient reduction, SGD updates — iterates
// in a fixed order with no parallelism inside the model, so f32
// non-associativity never sees a reordering. Bit-identical weights at
// any Config.Threads is a tested guarantee, not a best effort.
package train

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
)

// initSalt decorrelates weight-init RNG streams from every other
// consumer of the shared seed.
const initSalt = 0x9a5e1417

// MaxLayers bounds model depth: the sampler's default fanout is 3
// layers and the mean-aggregator model is only ever trained 1–2 deep.
const MaxLayers = 3

// Config describes a GraphSAGE model. All fields are required (zero
// values are rejected by NewModel) except Seed, where 0 is a valid
// seed.
type Config struct {
	// FeatureDim is the node feature width — must match the dataset's.
	FeatureDim int
	// Hidden is the per-layer hidden width.
	Hidden int
	// Classes is the softmax output width — must match the dataset's
	// numClasses.
	Classes int
	// Layers is the GraphSAGE depth (1..MaxLayers). A batch must carry
	// at least this many sampled layers.
	Layers int
	// LR is the SGD learning rate.
	LR float32
	// Seed drives weight initialization.
	Seed uint64
}

func (c Config) validate() error {
	if c.FeatureDim <= 0 {
		return fmt.Errorf("train: FeatureDim %d must be positive", c.FeatureDim)
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("train: Hidden %d must be positive", c.Hidden)
	}
	if c.Classes < 2 {
		return fmt.Errorf("train: Classes %d must be at least 2", c.Classes)
	}
	if c.Layers < 1 || c.Layers > MaxLayers {
		return fmt.Errorf("train: Layers %d out of range [1,%d]", c.Layers, MaxLayers)
	}
	if !(c.LR > 0) {
		return fmt.Errorf("train: LR %v must be positive", c.LR)
	}
	return nil
}

// params is one full set of model-shaped tensors — the weights
// themselves, and (same shapes) a gradient accumulator. All matrices
// are row-major flat slices.
type params struct {
	// Wself[l] (Hidden × FeatureDim) maps node l's OWN raw feature
	// vector; Wneigh[l] (Hidden × aggIn(l)) maps the mean-aggregated
	// neighbor representation — raw features at the deepest layer,
	// next-layer hidden states above it; B[l] (Hidden) is the bias.
	Wself, Wneigh, B [][]float32
	// Wout (Classes × Hidden) + Bout (Classes) produce the logits from
	// the level-0 hidden states.
	Wout, Bout []float32
}

// aggIn returns the aggregator input width of model level l: raw
// features feed the deepest level, hidden states feed the rest.
func (c Config) aggIn(l int) int {
	if l == c.Layers-1 {
		return c.FeatureDim
	}
	return c.Hidden
}

func newParams(c Config) params {
	p := params{
		Wself:  make([][]float32, c.Layers),
		Wneigh: make([][]float32, c.Layers),
		B:      make([][]float32, c.Layers),
		Wout:   make([]float32, c.Classes*c.Hidden),
		Bout:   make([]float32, c.Classes),
	}
	for l := 0; l < c.Layers; l++ {
		p.Wself[l] = make([]float32, c.Hidden*c.FeatureDim)
		p.Wneigh[l] = make([]float32, c.Hidden*c.aggIn(l))
		p.B[l] = make([]float32, c.Hidden)
	}
	return p
}

// tensors returns every tensor in the model's canonical order — the
// order WeightsDigest folds, gradients apply, and the gradient-check
// test sweeps.
func (p *params) tensors() [][]float32 {
	var ts [][]float32
	for l := range p.Wself {
		ts = append(ts, p.Wself[l], p.Wneigh[l], p.B[l])
	}
	return append(ts, p.Wout, p.Bout)
}

func (p *params) zero() {
	for _, t := range p.tensors() {
		for i := range t {
			t[i] = 0
		}
	}
}

// Model is a GraphSAGE mean-aggregator network. It is NOT safe for
// concurrent Step calls — the determinism contract forbids model-level
// parallelism anyway (gradient reduction must be fixed-order), so the
// training loop always drives one Model from one goroutine.
type Model struct {
	cfg Config
	params
	grad params
	// steps counts applied SGD updates (one per Step call).
	steps int64
}

// NewModel builds a model with Glorot-uniform initial weights derived
// from cfg.Seed. Initialization is deterministic: tensor t's entries
// come from an RNG seeded Mix(Seed^initSalt, t), independent of
// everything else that mixes the seed.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, params: newParams(cfg), grad: newParams(cfg)}
	fanIn := func(t []float32, rows int) int { return len(t) / rows }
	for ti, t := range m.params.tensors() {
		if len(t) == 0 {
			continue
		}
		rng := sample.NewRNG(sample.Mix(cfg.Seed^initSalt, uint64(ti)))
		// Bias vectors start at zero (the Glorot convention); matrices get
		// uniform(-limit, limit) with limit = sqrt(6/(fanIn+fanOut)).
		var rows int
		switch {
		case ti == len(m.params.tensors())-2: // Wout
			rows = cfg.Classes
		case ti == len(m.params.tensors())-1: // Bout
			continue
		case ti%3 == 2: // B[l]
			continue
		default: // Wself[l] / Wneigh[l]
			rows = cfg.Hidden
		}
		limit := math.Sqrt(6 / float64(fanIn(t, rows)+rows))
		for i := range t {
			t[i] = float32((rng.Float64()*2 - 1) * limit)
		}
	}
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Steps returns how many SGD updates have been applied.
func (m *Model) Steps() int64 { return m.steps }

// WeightsDigest folds every parameter's f32 bit pattern into an FNV-1a
// sum in canonical tensor order. Bit-identical models (and only those,
// modulo hash collisions) share a digest — this is what the
// thread-invariance and overlap-equivalence tests compare.
func (m *Model) WeightsDigest() uint64 {
	h := fnv.New64a()
	var word [4]byte
	for _, t := range m.params.tensors() {
		for _, v := range t {
			u := math.Float32bits(v)
			word[0], word[1], word[2], word[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
			h.Write(word[:])
		}
	}
	return h.Sum64()
}

// batchState is the forward pass's retained intermediate state, kept
// for the backward pass.
type batchState struct {
	feats []float32 // decoded Batch.Features
	nodes []uint32  // Batch.FeatNodes (sorted)

	// Per model level l: the frontier's pre-activations, hidden states,
	// and aggregated neighbor inputs, indexed like b.Layers[l].Targets.
	pre, hid, agg [][]float32
	// lookup[l] maps a node id to its index in b.Layers[l].Targets
	// (first occurrence wins for the walk strategy's duplicate-carrying
	// frontiers). lookup[0] is unused.
	lookup []map[uint32]int
	// dlogits is dLoss/dlogits per level-0 target, already scaled by
	// 1/batch so accumulated gradients are means. Nil on Eval.
	dlogits []float32
}

// featOf returns node v's decoded feature vector.
func (st *batchState) featOf(v uint32, dim int) ([]float32, error) {
	i := sort.Search(len(st.nodes), func(i int) bool { return st.nodes[i] >= v })
	if i == len(st.nodes) || st.nodes[i] != v {
		return nil, fmt.Errorf("train: node %d missing from batch feature payload", v)
	}
	return st.feats[i*dim : (i+1)*dim], nil
}

// matvecAdd computes y += W·x for row-major W (len(y) rows).
func matvecAdd(y []float32, w, x []float32) {
	cols := len(x)
	for r := range y {
		row := w[r*cols : (r+1)*cols]
		var s float32
		for d, xv := range x {
			s += row[d] * xv
		}
		y[r] += s
	}
}

// matvecTAdd computes x += Wᵀ·y for row-major W (len(y) rows).
func matvecTAdd(x []float32, w, y []float32) {
	cols := len(x)
	for r, yv := range y {
		if yv == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		for d := range x {
			x[d] += row[d] * yv
		}
	}
}

// outerAdd accumulates g += y ⊗ x into row-major g (len(y) rows).
func outerAdd(g []float32, y, x []float32) {
	cols := len(x)
	for r, yv := range y {
		if yv == 0 {
			continue
		}
		row := g[r*cols : (r+1)*cols]
		for d, xv := range x {
			row[d] += yv * xv
		}
	}
}

// Step runs one forward/backward pass over the batch and applies one
// SGD update. labels is the WHOLE graph's per-node label array
// (storage.Dataset.Labels); the batch's level-0 targets index into it.
// Returns the mean cross-entropy loss over the batch's targets and how
// many were classified correctly. The update is strictly sequential
// and fixed-order — see the package comment.
func (m *Model) Step(b *core.Batch, labels []uint32) (loss float64, correct int, err error) {
	st, loss, correct, err := m.forward(b, labels, true)
	if err != nil {
		return 0, 0, err
	}
	if err := m.backward(b, st); err != nil {
		return 0, 0, err
	}
	for ti, t := range m.params.tensors() {
		g := m.grad.tensors()[ti]
		for i := range t {
			t[i] -= m.cfg.LR * g[i]
		}
	}
	m.steps++
	return loss, correct, nil
}

// Eval runs the forward pass only: mean loss and correct count with no
// weight update.
func (m *Model) Eval(b *core.Batch, labels []uint32) (loss float64, correct int, err error) {
	_, loss, correct, err = m.forward(b, labels, false)
	return loss, correct, err
}

// forward validates the batch against the model shape and runs the
// bottom-up forward pass. With retain, the intermediate state needed by
// backward is kept; Eval passes false and the per-level slices are
// still built (they are the computation) but returned for reuse.
func (m *Model) forward(b *core.Batch, labels []uint32, retain bool) (*batchState, float64, int, error) {
	c := m.cfg
	if b.FeatureDim != c.FeatureDim {
		return nil, 0, 0, fmt.Errorf("train: batch feature dim %d != model %d (is Config.FetchFeatures on?)", b.FeatureDim, c.FeatureDim)
	}
	if len(b.Layers) < c.Layers {
		return nil, 0, 0, fmt.Errorf("train: batch has %d sampled layers, model needs %d", len(b.Layers), c.Layers)
	}
	if len(b.FeatNodes)*c.FeatureDim*4 != len(b.Features) {
		return nil, 0, 0, fmt.Errorf("train: feature payload %d bytes inconsistent with %d nodes × dim %d", len(b.Features), len(b.FeatNodes), c.FeatureDim)
	}
	st := &batchState{
		nodes:  b.FeatNodes,
		feats:  decodeF32(b.Features),
		pre:    make([][]float32, c.Layers),
		hid:    make([][]float32, c.Layers),
		agg:    make([][]float32, c.Layers),
		lookup: make([]map[uint32]int, c.Layers),
	}
	for l := 1; l < c.Layers; l++ {
		lk := make(map[uint32]int, len(b.Layers[l].Targets))
		for i, v := range b.Layers[l].Targets {
			if _, ok := lk[v]; !ok {
				lk[v] = i
			}
		}
		st.lookup[l] = lk
	}

	// Bottom-up: the deepest level aggregates raw neighbor features,
	// every level above aggregates the level below's hidden states.
	for l := c.Layers - 1; l >= 0; l-- {
		lay := &b.Layers[l]
		n := len(lay.Targets)
		aggW := c.aggIn(l)
		st.pre[l] = make([]float32, n*c.Hidden)
		st.hid[l] = make([]float32, n*c.Hidden)
		st.agg[l] = make([]float32, n*aggW)
		for i, v := range lay.Targets {
			agg := st.agg[l][i*aggW : (i+1)*aggW]
			neigh := lay.NeighborsOf(i)
			if len(neigh) > 0 {
				inv := float32(1) / float32(len(neigh))
				for _, u := range neigh {
					var src []float32
					if l == c.Layers-1 {
						f, err := st.featOf(u, c.FeatureDim)
						if err != nil {
							return nil, 0, 0, err
						}
						src = f
					} else {
						j, ok := st.lookup[l+1][u]
						if !ok {
							return nil, 0, 0, fmt.Errorf("train: neighbor %d of layer-%d node %d missing from layer-%d frontier", u, l, v, l+1)
						}
						src = st.hid[l+1][j*c.Hidden : (j+1)*c.Hidden]
					}
					for d, sv := range src {
						agg[d] += sv
					}
				}
				for d := range agg {
					agg[d] *= inv
				}
			}
			self, err := st.featOf(v, c.FeatureDim)
			if err != nil {
				return nil, 0, 0, err
			}
			z := st.pre[l][i*c.Hidden : (i+1)*c.Hidden]
			copy(z, m.B[l])
			matvecAdd(z, m.Wself[l], self)
			matvecAdd(z, m.Wneigh[l], agg)
			h := st.hid[l][i*c.Hidden : (i+1)*c.Hidden]
			for d, zv := range z {
				if zv > 0 {
					h[d] = zv
				}
			}
		}
	}

	// Logits, softmax cross-entropy, accuracy. The softmax runs through
	// float64 for a numerically stable log-sum-exp; the resulting
	// gradient is cast back to f32.
	var sumLoss float64
	var corr int
	targets := b.Layers[0].Targets
	logits := make([]float32, c.Classes)
	if retain {
		st.dlogits = make([]float32, len(targets)*c.Classes)
	}
	for i, v := range targets {
		if int64(v) >= int64(len(labels)) {
			return nil, 0, 0, fmt.Errorf("train: target %d outside label array (%d nodes)", v, len(labels))
		}
		lab := labels[v]
		if int(lab) >= c.Classes {
			return nil, 0, 0, fmt.Errorf("train: label %d of node %d outside model classes %d", lab, v, c.Classes)
		}
		h := st.hid[0][i*c.Hidden : (i+1)*c.Hidden]
		copy(logits, m.Bout)
		matvecAdd(logits, m.Wout, h)
		maxL, argmax := float64(logits[0]), 0
		for cix := 1; cix < c.Classes; cix++ {
			if float64(logits[cix]) > maxL {
				maxL, argmax = float64(logits[cix]), cix
			}
		}
		if argmax == int(lab) {
			corr++
		}
		var sumExp float64
		for cix := 0; cix < c.Classes; cix++ {
			sumExp += math.Exp(float64(logits[cix]) - maxL)
		}
		logSum := math.Log(sumExp) + maxL
		sumLoss += logSum - float64(logits[lab])
		if retain {
			dl := st.dlogits[i*c.Classes : (i+1)*c.Classes]
			invB := 1 / float64(len(targets))
			for cix := 0; cix < c.Classes; cix++ {
				p := math.Exp(float64(logits[cix]) - logSum)
				if cix == int(lab) {
					p -= 1
				}
				dl[cix] = float32(p * invB)
			}
		}
	}
	return st, sumLoss / float64(len(targets)), corr, nil
}

// backward accumulates the mean-loss gradient into m.grad, mirroring
// forward's traversal top-down in the same fixed iteration order.
func (m *Model) backward(b *core.Batch, st *batchState) error {
	c := m.cfg
	m.grad.zero()
	// dHid[l] is dLoss/d(hidden state) for level l's frontier.
	dHid := make([][]float32, c.Layers)
	for l := 0; l < c.Layers; l++ {
		dHid[l] = make([]float32, len(b.Layers[l].Targets)*c.Hidden)
	}
	for i := range b.Layers[0].Targets {
		dl := st.dlogits[i*c.Classes : (i+1)*c.Classes]
		h := st.hid[0][i*c.Hidden : (i+1)*c.Hidden]
		outerAdd(m.grad.Wout, dl, h)
		for cix, g := range dl {
			m.grad.Bout[cix] += g
		}
		matvecTAdd(dHid[0][i*c.Hidden:(i+1)*c.Hidden], m.Wout, dl)
	}
	dz := make([]float32, c.Hidden)
	for l := 0; l < c.Layers; l++ {
		lay := &b.Layers[l]
		aggW := c.aggIn(l)
		dAgg := make([]float32, aggW)
		for i, v := range lay.Targets {
			z := st.pre[l][i*c.Hidden : (i+1)*c.Hidden]
			dh := dHid[l][i*c.Hidden : (i+1)*c.Hidden]
			for d := range dz {
				if z[d] > 0 {
					dz[d] = dh[d]
				} else {
					dz[d] = 0
				}
			}
			self, err := st.featOf(v, c.FeatureDim)
			if err != nil {
				return err
			}
			outerAdd(m.grad.Wself[l], dz, self)
			outerAdd(m.grad.Wneigh[l], dz, st.agg[l][i*aggW:(i+1)*aggW])
			for d, g := range dz {
				m.grad.B[l][d] += g
			}
			neigh := lay.NeighborsOf(i)
			if l == c.Layers-1 || len(neigh) == 0 {
				continue
			}
			for d := range dAgg {
				dAgg[d] = 0
			}
			matvecTAdd(dAgg, m.Wneigh[l], dz)
			inv := float32(1) / float32(len(neigh))
			for _, u := range neigh {
				j := st.lookup[l+1][u] // validated during forward
				dst := dHid[l+1][j*c.Hidden : (j+1)*c.Hidden]
				for d, g := range dAgg {
					dst[d] += g * inv
				}
			}
		}
	}
	return nil
}

// decodeF32 reinterprets little-endian f32 bytes as a float32 slice.
func decodeF32(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		u := uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
		out[i] = math.Float32frombits(u)
	}
	return out
}
