package train

import (
	"encoding/binary"
	"math"
	"testing"

	"ringsampler/internal/core"
	"ringsampler/internal/sample"
)

// testBatch hand-builds a 2-sampling-layer batch over 6 nodes with
// deterministic pseudo-random features: three level-0 targets (one with
// an empty neighbor list, one with a duplicate neighbor), and a level-1
// frontier that is the sort+dedup union of level-0's neighbors, each
// with its own neighbors — the exact shape the sampler emits.
func testBatch(dim int) *core.Batch {
	nodes := []uint32{0, 1, 2, 3, 4, 5}
	feats := make([]byte, len(nodes)*dim*4)
	rng := sample.NewRNG(0x7e57)
	for i := range nodes {
		for d := 0; d < dim; d++ {
			binary.LittleEndian.PutUint32(feats[(i*dim+d)*4:], math.Float32bits(float32(rng.Float64())))
		}
	}
	return &core.Batch{
		Layers: []core.Layer{
			{
				Targets:   []uint32{2, 0, 5},
				Starts:    []int64{0, 3, 3, 5},
				Neighbors: []uint32{1, 4, 1, 3, 2},
			},
			{
				Targets:   []uint32{1, 2, 3, 4},
				Starts:    []int64{0, 2, 3, 3, 5},
				Neighbors: []uint32{0, 5, 3, 2, 2},
			},
		},
		FeatNodes:  nodes,
		Features:   feats,
		FeatureDim: dim,
	}
}

func testLabels(n, classes int) []uint32 {
	rng := sample.NewRNG(0x1ab5)
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32n(uint32(classes))
	}
	return out
}

// lossOnly runs the forward pass and returns the mean loss.
func lossOnly(t *testing.T, m *Model, b *core.Batch, labels []uint32) float64 {
	t.Helper()
	loss, _, err := m.Eval(b, labels)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// TestGradientCheck verifies every layer's analytic gradient against a
// central finite difference, for both supported depths and both
// aggregator input shapes (raw features at the deepest layer, hidden
// states above it). f32 forward noise bounds the achievable agreement,
// hence the mixed absolute/relative tolerance.
func TestGradientCheck(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"1layer", Config{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 1, LR: 0.1, Seed: 3}},
		{"2layer", Config{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 2, LR: 0.1, Seed: 3}},
		{"2layer-wide", Config{FeatureDim: 3, Hidden: 6, Classes: 4, Layers: 2, LR: 0.1, Seed: 9}},
	}
	tensorName := func(cfg Config, ti int) string {
		l := ti / 3
		if l >= cfg.Layers {
			if ti == cfg.Layers*3 {
				return "Wout"
			}
			return "Bout"
		}
		return []string{"Wself", "Wneigh", "B"}[ti%3]
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := testBatch(tc.cfg.FeatureDim)
			labels := testLabels(6, tc.cfg.Classes)
			m, err := NewModel(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, _, _, err := m.forward(b, labels, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.backward(b, st); err != nil {
				t.Fatal(err)
			}
			const eps = 1e-2
			for ti, tensor := range m.params.tensors() {
				grads := m.grad.tensors()[ti]
				for i := range tensor {
					orig := tensor[i]
					tensor[i] = orig + eps
					up := lossOnly(t, m, b, labels)
					tensor[i] = orig - eps
					down := lossOnly(t, m, b, labels)
					tensor[i] = orig
					fd := (up - down) / (2 * eps)
					an := float64(grads[i])
					tol := 1e-3 + 0.02*math.Max(math.Abs(fd), math.Abs(an))
					if math.Abs(fd-an) > tol {
						t.Errorf("%s[%d] (layer %d): analytic %.6g vs finite-diff %.6g (tol %.2g)",
							tensorName(tc.cfg, ti), i, ti/3, an, fd, tol)
					}
				}
			}
		})
	}
}

// TestStepDecreasesLoss sanity-checks that repeated SGD steps on a
// fixed batch actually learn it.
func TestStepDecreasesLoss(t *testing.T) {
	cfg := Config{FeatureDim: 5, Hidden: 8, Classes: 3, Layers: 2, LR: 0.5, Seed: 1}
	b := testBatch(cfg.FeatureDim)
	labels := testLabels(6, cfg.Classes)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := m.Step(b, labels)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		if last, _, err = m.Step(b, labels); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f, after 60 steps %.4f", first, last)
	}
	if m.Steps() != 61 {
		t.Fatalf("Steps() = %d, want 61", m.Steps())
	}
}

// TestModelValidation covers the config and batch-shape rejections.
func TestModelValidation(t *testing.T) {
	good := Config{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 2, LR: 0.1}
	bad := []Config{
		{FeatureDim: 0, Hidden: 4, Classes: 3, Layers: 1, LR: 0.1},
		{FeatureDim: 5, Hidden: 0, Classes: 3, Layers: 1, LR: 0.1},
		{FeatureDim: 5, Hidden: 4, Classes: 1, Layers: 1, LR: 0.1},
		{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 0, LR: 0.1},
		{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: MaxLayers + 1, LR: 0.1},
		{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 1, LR: 0},
	}
	for i, cfg := range bad {
		if _, err := NewModel(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	m, err := NewModel(good)
	if err != nil {
		t.Fatal(err)
	}
	labels := testLabels(6, good.Classes)

	// Feature-less batch (FetchFeatures off).
	noFeat := testBatch(good.FeatureDim)
	noFeat.FeatureDim = 0
	if _, _, err := m.Step(noFeat, labels); err == nil {
		t.Error("feature-less batch accepted")
	}
	// Too-shallow batch.
	shallow := testBatch(good.FeatureDim)
	shallow.Layers = shallow.Layers[:1]
	if _, _, err := m.Step(shallow, labels); err == nil {
		t.Error("1-sampling-layer batch accepted by 2-layer model")
	}
	// Label out of model range.
	badLab := testLabels(6, good.Classes)
	badLab[2] = uint32(good.Classes)
	if _, _, err := m.Step(testBatch(good.FeatureDim), badLab); err == nil {
		t.Error("out-of-range label accepted")
	}
	// Target outside the label array.
	if _, _, err := m.Step(testBatch(good.FeatureDim), testLabels(2, good.Classes)); err == nil {
		t.Error("target beyond label array accepted")
	}
}

// TestWeightsDigestDeterministic: same config → same initial digest;
// different seed → different digest; digest changes after a step.
func TestWeightsDigestDeterministic(t *testing.T) {
	cfg := Config{FeatureDim: 5, Hidden: 4, Classes: 3, Layers: 2, LR: 0.1, Seed: 42}
	a, _ := NewModel(cfg)
	b, _ := NewModel(cfg)
	if a.WeightsDigest() != b.WeightsDigest() {
		t.Fatal("identical configs produced different initial weights")
	}
	cfg.Seed = 43
	c, _ := NewModel(cfg)
	if a.WeightsDigest() == c.WeightsDigest() {
		t.Fatal("different seeds produced identical initial weights")
	}
	before := a.WeightsDigest()
	if _, _, err := a.Step(testBatch(cfg.FeatureDim), testLabels(6, cfg.Classes)); err != nil {
		t.Fatal(err)
	}
	if a.WeightsDigest() == before {
		t.Fatal("weights digest unchanged by an SGD step")
	}
}
