package graph

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ExternalSorter sorts an edge stream by (Src, Dst) without holding it
// in memory: edges accumulate in a bounded chunk, full chunks are
// sorted and spilled to run files, and Merge k-way-merges the runs.
// Preprocessing therefore stays out-of-core like the sampler itself —
// the paper's datasets (up to 8.2B edges) never fit in RAM.
type ExternalSorter struct {
	tmpDir   string
	chunkCap int
	chunk    []Edge
	runs     []string
}

const edgeRecordBytes = 8 // two little-endian uint32s

// NewExternalSorter creates a sorter spilling runs of chunkEdges edges
// into tmpDir (created if missing). chunkEdges <= 0 selects a default
// of 1M edges (~8 MB per run).
func NewExternalSorter(tmpDir string, chunkEdges int) (*ExternalSorter, error) {
	if chunkEdges <= 0 {
		chunkEdges = 1 << 20
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("graph: extsort tmpdir: %w", err)
	}
	return &ExternalSorter{
		tmpDir:   tmpDir,
		chunkCap: chunkEdges,
		chunk:    make([]Edge, 0, chunkEdges),
	}, nil
}

// Add buffers one edge, spilling a sorted run when the chunk fills.
func (s *ExternalSorter) Add(e Edge) error {
	s.chunk = append(s.chunk, e)
	if len(s.chunk) >= s.chunkCap {
		return s.spill()
	}
	return nil
}

func (s *ExternalSorter) spill() error {
	sortEdges(s.chunk)
	path := filepath.Join(s.tmpDir, fmt.Sprintf("run-%06d.bin", len(s.runs)))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: extsort spill: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var rec [edgeRecordBytes]byte
	for _, e := range s.chunk {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("graph: extsort spill: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("graph: extsort spill: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graph: extsort spill: %w", err)
	}
	s.runs = append(s.runs, path)
	s.chunk = s.chunk[:0]
	return nil
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// Merge emits every added edge in (Src, Dst) order and removes the run
// files. The sorter is spent afterwards.
func (s *ExternalSorter) Merge(emit func(Edge) error) error {
	defer s.cleanup()
	if len(s.runs) == 0 {
		// Everything fit in one chunk: sort and emit directly.
		sortEdges(s.chunk)
		for _, e := range s.chunk {
			if err := emit(e); err != nil {
				return err
			}
		}
		s.chunk = nil
		return nil
	}
	if len(s.chunk) > 0 {
		if err := s.spill(); err != nil {
			return err
		}
	}
	h := make(runHeap, 0, len(s.runs))
	defer func() {
		for _, r := range h {
			r.f.Close()
		}
	}()
	for _, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("graph: extsort merge: %w", err)
		}
		rr := &runReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
		ok, err := rr.next()
		if err != nil {
			f.Close()
			return err
		}
		if ok {
			h = append(h, rr)
		} else {
			f.Close()
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		rr := h[0]
		if err := emit(rr.cur); err != nil {
			return err
		}
		ok, err := rr.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			rr.f.Close()
			heap.Pop(&h)
		}
	}
	return nil
}

func (s *ExternalSorter) cleanup() {
	for _, path := range s.runs {
		os.Remove(path)
	}
	s.runs = nil
}

type runReader struct {
	f   *os.File
	br  *bufio.Reader
	cur Edge
}

func (r *runReader) next() (bool, error) {
	var rec [edgeRecordBytes]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, fmt.Errorf("graph: extsort read run: %w", err)
	}
	r.cur.Src = binary.LittleEndian.Uint32(rec[0:])
	r.cur.Dst = binary.LittleEndian.Uint32(rec[4:])
	return true, nil
}

type runHeap []*runReader

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].cur.Src != h[j].cur.Src {
		return h[i].cur.Src < h[j].cur.Src
	}
	return h[i].cur.Dst < h[j].cur.Dst
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
