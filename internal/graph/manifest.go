// Package graph holds the dataset-independent graph plumbing: edge
// types, the dataset manifest, and the out-of-core external merge sort
// that turns a generator's edge stream into the source-grouped order
// the on-disk layout requires.
package graph

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Edge is one directed edge. Node IDs are uint32 throughout the repo
// (scaled graphs stay below 2^32 nodes; the paper's offset index is
// what carries the 64-bit addressing).
type Edge struct {
	Src, Dst uint32
}

// Manifest describes an on-disk dataset. CreatedAt is left at the zero
// time by the deterministic build path so that regenerating a dataset
// with the same seed produces byte-identical files.
//
// The feature fields describe the optional fixed-stride node feature
// file (features.bin): FeatureDim f32 values per node, FeatBytes total,
// integrity-checked against FeatChecksum (FNV-1a 64, hex) at open. All
// three are zero/empty for edge-only datasets, so pre-feature manifests
// load unchanged.
//
// The label fields describe the optional per-node label file
// (labels.bin): one little-endian uint32 class id in [0, NumClasses)
// per node, integrity-checked against LabelChecksum (FNV-1a 64, hex)
// and value-range-checked at open. Both are zero/empty for unlabeled
// datasets, so pre-label manifests load unchanged. Unlike the edge and
// feature files, labels.bin is always the FULL graph's labels — shards
// carry it whole (it is node-proportional, like the offset index every
// shard already holds), so a training consumer fronted by a router sees
// the same labels a single node would.
//
// The shard fields describe a node-range slice of a partitioned dataset
// (DESIGN.md §12). NumShards 0 means an ordinary unsharded dataset (so
// pre-shard manifests load unchanged). In a shard manifest NumNodes and
// NumEdges stay GLOBAL — every shard knows the whole graph's shape and
// carries the full offset index — while BinBytes and FeatBytes describe
// the local files: edges.dat holds only the entries of nodes in
// [ShardLo, ShardHi) and features.bin only those nodes' vectors.
type Manifest struct {
	Version       int       `json:"version"`
	Name          string    `json:"name"`
	NumNodes      int64     `json:"numNodes"`
	NumEdges      int64     `json:"numEdges"`
	BinBytes      int64     `json:"binBytes"`
	FeatureDim    int       `json:"featureDim,omitempty"`
	FeatBytes     int64     `json:"featBytes,omitempty"`
	FeatChecksum  string    `json:"featChecksum,omitempty"`
	NumClasses    int       `json:"numClasses,omitempty"`
	LabelChecksum string    `json:"labelChecksum,omitempty"`
	NumShards     int       `json:"numShards,omitempty"`
	ShardIndex    int       `json:"shardIndex,omitempty"`
	ShardLo       int64     `json:"shardLo,omitempty"`
	ShardHi       int64     `json:"shardHi,omitempty"`
	CreatedAt     time.Time `json:"createdAt"`
}

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// LoadManifest reads and decodes a manifest file.
func LoadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, fmt.Errorf("graph: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("graph: decode manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return m, fmt.Errorf("graph: manifest %s has version %d, want %d", path, m.Version, ManifestVersion)
	}
	return m, nil
}

// Save writes the manifest as indented JSON.
func (m Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("graph: encode manifest: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("graph: write manifest: %w", err)
	}
	return nil
}
