package graph

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ringsampler/internal/sample"
)

// randomEdges builds a deterministic shuffled edge stream with
// duplicate (Src, Dst) pairs mixed in, so sorting has real work and
// stable-duplicate handling is exercised.
func randomEdges(n int, seed uint64) []Edge {
	rng := sample.NewRNG(seed)
	out := make([]Edge, n)
	for i := range out {
		out[i] = Edge{Src: rng.Uint32n(200), Dst: rng.Uint32n(500)}
	}
	return out
}

func runSort(t *testing.T, edges []Edge, chunk int) []Edge {
	t.Helper()
	s, err := NewExternalSorter(t.TempDir(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	var got []Edge
	if err := s.Merge(func(e Edge) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestExternalSortMultiChunk: a stream that spills many runs emits
// every edge exactly once in (Src, Dst) order, matching an in-memory
// reference sort.
func TestExternalSortMultiChunk(t *testing.T) {
	edges := randomEdges(1000, 42)
	got := runSort(t, edges, 64) // 1000 edges / 64-edge chunks → ≥15 spilled runs
	if len(got) != len(edges) {
		t.Fatalf("merge emitted %d edges, want %d", len(got), len(edges))
	}
	want := append([]Edge(nil), edges...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].Src != want[j].Src {
			return want[i].Src < want[j].Src
		}
		return want[i].Dst < want[j].Dst
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestExternalSortDeterministicAndOrderInsensitive: the same multiset
// of edges yields the identical output sequence regardless of
// insertion order or chunk size — the property that makes regenerated
// datasets byte-identical.
func TestExternalSortDeterministicAndOrderInsensitive(t *testing.T) {
	edges := randomEdges(600, 7)
	a := runSort(t, edges, 50)
	// Reversed insertion order, different chunking.
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	b := runSort(t, rev, 128)
	if len(a) != len(b) {
		t.Fatalf("outputs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestExternalSortSingleChunk: everything fitting in one chunk takes
// the no-spill path and still sorts.
func TestExternalSortSingleChunk(t *testing.T) {
	edges := []Edge{{3, 1}, {1, 9}, {1, 2}, {3, 0}, {0, 5}, {1, 2}}
	got := runSort(t, edges, 1024)
	want := []Edge{{0, 5}, {1, 2}, {1, 2}, {1, 9}, {3, 0}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestExternalSortCleansRuns: Merge removes its spilled run files.
func TestExternalSortCleansRuns(t *testing.T) {
	dir := t.TempDir()
	s, err := NewExternalSorter(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range randomEdges(100, 3) {
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.runs) == 0 {
		t.Fatal("expected spilled runs before merge")
	}
	if err := s.Merge(func(Edge) error { return nil }); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "run-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("run files left behind after merge: %v", left)
	}
}

// TestManifestRoundTrip: Save then Load reproduces the manifest.
func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := Manifest{
		Version:  ManifestVersion,
		Name:     "round-trip",
		NumNodes: 123,
		NumEdges: 456,
		BinBytes: 456 * 4,
	}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip changed manifest: %+v vs %+v", got, m)
	}
}

// TestManifestRejectsCorruption: missing files, invalid JSON and
// version mismatches are all load-time errors.
func TestManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadManifest(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(bad); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	stale := filepath.Join(dir, "stale.json")
	m := Manifest{Version: ManifestVersion + 1, Name: "future", NumNodes: 1}
	if err := m.Save(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(stale); err == nil {
		t.Fatal("version mismatch accepted")
	}
}
