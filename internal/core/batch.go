package core

// Layer holds one sampling layer of a mini-batch in CSR form: the
// frontier nodes targeted at this layer, and each node's sampled
// neighbors concatenated, delimited by Starts.
type Layer struct {
	// Targets are the frontier nodes of this layer (layer 0: the
	// caller's targets; deeper layers: the sort+dedup'd neighbors of
	// the previous layer).
	Targets []uint32
	// Starts has len(Targets)+1 entries; Neighbors[Starts[i]:Starts[i+1]]
	// are Targets[i]'s sampled neighbors.
	Starts []int64
	// Neighbors is every sampled neighbor ID, in entry-file order per
	// target.
	Neighbors []uint32
}

// NeighborsOf returns the sampled neighbors of Targets[i].
func (l *Layer) NeighborsOf(i int) []uint32 {
	return l.Neighbors[l.Starts[i]:l.Starts[i+1]]
}

// Batch is the result of sampling one mini-batch: one Layer per
// configured fanout.
type Batch struct {
	Layers []Layer
}

// TotalSampled returns the total number of sampled neighbor entries
// across all layers.
func (b *Batch) TotalSampled() int64 {
	var n int64
	for i := range b.Layers {
		n += int64(len(b.Layers[i].Neighbors))
	}
	return n
}
