package core

import "hash/fnv"

// Layer holds one sampling layer of a mini-batch in CSR form: the
// frontier nodes targeted at this layer, and each node's sampled
// neighbors concatenated, delimited by Starts.
type Layer struct {
	// Targets are the frontier nodes of this layer (layer 0: the
	// caller's targets; deeper layers: the sort+dedup'd neighbors of
	// the previous layer).
	Targets []uint32
	// Starts has len(Targets)+1 entries; Neighbors[Starts[i]:Starts[i+1]]
	// are Targets[i]'s sampled neighbors.
	Starts []int64
	// Neighbors is every sampled neighbor ID, in entry-file order per
	// target.
	Neighbors []uint32
}

// NeighborsOf returns the sampled neighbors of Targets[i].
func (l *Layer) NeighborsOf(i int) []uint32 {
	return l.Neighbors[l.Starts[i]:l.Starts[i+1]]
}

// Batch is the result of sampling one mini-batch: one Layer per
// configured fanout, plus the optional feature payload when the
// feature stage ran.
type Batch struct {
	Layers []Layer

	// FeatNodes is the sorted, deduplicated union of every node in the
	// batch (layer-0 targets plus all sampled neighbors) — the nodes
	// whose feature vectors a trainer needs. Nil unless the feature
	// stage ran.
	FeatNodes []uint32
	// Features holds FeatNodes' feature vectors back to back, raw
	// little-endian f32 bytes, FeatureDim*4 bytes per node in FeatNodes
	// order. Nil unless the feature stage ran.
	Features []byte
	// FeatureDim is the per-node vector width of Features (0 when the
	// feature stage did not run).
	FeatureDim int
}

// TotalSampled returns the total number of sampled neighbor entries
// across all layers.
func (b *Batch) TotalSampled() int64 {
	var n int64
	for i := range b.Layers {
		n += int64(len(b.Layers[i].Neighbors))
	}
	return n
}

// Digest folds the batch's complete sample structure — every layer's
// targets, starts and neighbors — into an FNV-1a sum, so any single
// differing byte changes the result. Byte-identical batches (and only
// those, modulo hash collisions) share a digest; the epoch runner's
// thread-invariance guarantee and the fault sweeps are asserted by
// comparing streams of these.
func (b *Batch) Digest() uint64 {
	h := fnv.New64a()
	var word [8]byte
	put32 := func(v uint32) {
		word[0], word[1], word[2], word[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(word[:4])
	}
	put64 := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			word[i] = byte(u >> (8 * i))
		}
		h.Write(word[:8])
	}
	for li := range b.Layers {
		l := &b.Layers[li]
		put64(int64(li))
		for _, v := range l.Targets {
			put32(v)
		}
		for _, v := range l.Starts {
			put64(v)
		}
		for _, v := range l.Neighbors {
			put32(v)
		}
	}
	// Feature payload, when the feature stage ran. Skipped entirely for
	// feature-less batches so their digests are unchanged from before
	// the feature store existed.
	if b.FeatureDim > 0 || len(b.FeatNodes) > 0 || len(b.Features) > 0 {
		put64(int64(b.FeatureDim))
		put64(int64(len(b.FeatNodes)))
		for _, v := range b.FeatNodes {
			put32(v)
		}
		h.Write(b.Features)
	}
	return h.Sum64()
}
