package core

import (
	"fmt"
	"log"
	"os"
	"sync"
	"syscall"

	"ringsampler/internal/cache"
	"ringsampler/internal/memctl"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Sampler is the real RingSampler engine over an opened dataset. It is
// cheap and immutable; per-thread state lives in Workers.
type Sampler struct {
	ds      *storage.Dataset
	cfg     Config
	backend uring.Backend
	// active is the effective fast-path knob set after capability
	// downgrades — what workers actually run, as opposed to what Config
	// requested.
	active activeKnobs
	// hot is the shared hot-neighbor cache (nil when disabled):
	// immutable after New, so workers consult it with no
	// synchronization.
	hot *cache.Hot
	// featHot is the shared hot-node feature cache (nil when disabled),
	// immutable like hot.
	featHot *cache.Hot
	// defStrat is the pre-resolved Config.Strategy (uniform when
	// unset), consulted lock-free on every batch. Per-batch overrides
	// resolve through the lazily built strats registry.
	defStrat Strategy
	stratMu  sync.Mutex
	strats   map[string]Strategy
}

// activeKnobs is the resolved fast-path feature set. fixed means the
// PrepReadFixed path runs (kernel-registered on the real backend,
// emulated on pool/sim); regFiles and sqpoll are real-backend-only.
type activeKnobs struct {
	fixed    bool
	regFiles bool
	sqpoll   bool
}

// resolveKnobs intersects the requested knobs with what the backend and
// kernel grant, logging each downgrade once (at Sampler construction)
// so a benchmark never silently measures less than it claims.
func resolveKnobs(cfg *Config, backend uring.Backend, ds *storage.Dataset) activeKnobs {
	var a activeKnobs
	if backend == uring.BackendIOURing {
		caps := uring.Probe()
		a.fixed = cfg.FixedBuffers && caps.ReadFixed
		a.regFiles = cfg.RegisteredFiles && caps.RegisteredFiles
		a.sqpoll = cfg.SQPoll && caps.SQPoll
		if cfg.FixedBuffers && !caps.ReadFixed {
			log.Printf("core: fixed buffers requested but unavailable (caps %s); using plain reads", caps)
		}
		if cfg.RegisteredFiles && !caps.RegisteredFiles {
			log.Printf("core: registered files requested but unavailable (caps %s); using raw fds", caps)
		}
		if cfg.SQPoll && !caps.SQPoll {
			log.Printf("core: SQPOLL requested but unavailable (caps %s); submitting via io_uring_enter", caps)
		}
	} else {
		// Pool/sim emulate fixed-buffer validation, so that code path is
		// genuinely exercised; registered files and SQPOLL have no
		// portable equivalent and stay off (documented accept-and-ignore).
		a.fixed = cfg.FixedBuffers
	}
	if err := ds.DirectFallback(); err != nil {
		log.Printf("core: O_DIRECT requested but fell back to buffered reads: %v", err)
	}
	return a
}

// New validates the configuration and binds the engine to a ring
// backend. BackendIOURing fails fast here when the environment doesn't
// support it (callers gate on uring.Probe()). When
// Config.CacheBudgetBytes (or FeatureCacheBudgetBytes) is positive the
// corresponding hot cache is populated here, degree-first, charged
// against a memctl budget of that size.
func New(ds *storage.Dataset, cfg Config, backend uring.Backend) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if backend == uring.BackendIOURing && !uring.Probe().Ring {
		return nil, fmt.Errorf("core: io_uring backend requested but unavailable; use %s", uring.BackendPool)
	}
	if cfg.FetchFeatures && !ds.HasFeatures() {
		return nil, fmt.Errorf("core: FetchFeatures set but dataset %s has no feature file", ds.Dir())
	}
	if cfg.FeatureCacheBudgetBytes > 0 && !ds.HasFeatures() {
		return nil, fmt.Errorf("core: feature cache budget set but dataset %s has no feature file", ds.Dir())
	}
	if ds.IsSharded() && !cfg.OffsetSampling {
		// Full-fetch reads every frontier node's complete list; a shard
		// only stores its owned nodes' lists, so the ablation baseline is
		// a single-node-only mode.
		return nil, fmt.Errorf("core: shard dataset %s requires OffsetSampling", ds.Dir())
	}
	s := &Sampler{ds: ds, cfg: cfg, backend: backend}
	s.active = resolveKnobs(&s.cfg, backend, ds)
	if cfg.CacheBudgetBytes > 0 {
		hot, err := cache.Build(ds, memctl.New(cfg.CacheBudgetBytes))
		if err != nil {
			return nil, fmt.Errorf("core: build hot-neighbor cache: %w", err)
		}
		s.hot = hot
	}
	if cfg.FeatureCacheBudgetBytes > 0 {
		fh, err := cache.BuildFeatures(ds, memctl.New(cfg.FeatureCacheBudgetBytes))
		if err != nil {
			return nil, fmt.Errorf("core: build hot-node feature cache: %w", err)
		}
		s.featHot = fh
	}
	// Resolve the default strategy eagerly so a misnamed Config.Strategy
	// (or a failing weighted alias build) surfaces here, not mid-epoch.
	def, err := s.buildStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	s.defStrat = def
	return s, nil
}

// Config returns the engine configuration.
func (s *Sampler) Config() Config { return s.cfg }

// CacheInfo returns the hot-neighbor cache's pinned node count and
// cached list bytes — zeros when the cache is disabled.
func (s *Sampler) CacheInfo() (nodes int, bytes int64) {
	return s.hot.Nodes(), s.hot.Bytes()
}

// FeatureCacheInfo returns the hot-node feature cache's pinned node
// count and cached vector bytes — zeros when the cache is disabled.
func (s *Sampler) FeatureCacheInfo() (nodes int, bytes int64) {
	return s.featHot.Nodes(), s.featHot.Bytes()
}

// Worker is one sampling thread (paper Fig 3a): private rings, a
// private RNG, and private offset/neighbor/target workspaces. Workers
// share nothing, so an epoch runs them with zero synchronization.
// A Worker is not safe for concurrent use.
//
// The worker drives up to two files through identical ring machinery:
// the edge file (always) and the feature file (lazily, on the first
// feature fetch). Each gets its own rio driver; the stages never
// overlap in time — the feature stage runs only after every sampling
// layer's reads have completed — so the two drivers safely share the
// worker's arena, layer buffer, and run workspace.
type Worker struct {
	s     *Sampler
	id    int
	rng   sample.RNG
	stats IOStats

	// edge drives reads against the edge file; feat against the feature
	// file (feat.ring stays nil until ensureFeat).
	edge rio
	feat rio

	// broken marks a worker one of whose rings may still hold
	// completions that could not be drained. SampleBatch refuses such a
	// worker.
	broken bool

	// Fast-path state, fixed at construction.
	depth int    // max in-flight requests per rio (from Config.Depth; 0 = ring-bounded)
	arena []byte // registered fixed-buffer arena (nil when fixed is off)

	// bufFixed records that the current layer buffer is the arena
	// prefix, so (buffered-path) reads into it may use PrepReadFixed.
	bufFixed bool

	// Workspaces, reused across batches (paper §3.1).
	runs        []ioRun      // coalesced read requests (edge entries or feature records)
	frontier    []uint32     // target workspace (strategies rebuild it between layers)
	featNodes   []uint32     // feature stage: batch node-union accumulation
	buf         []byte       // current stage buffer (arena prefix or heapBuf)
	heapBuf     []byte       // heap backing for stages that skip the arena
	idxs        []int        // fanout-index scratch
	sel         []int32      // full-fetch mode: chosen in-list indices
	nodePos     []int64      // full-fetch mode: per-node buffer position
	cachedPicks []cachedPick // cache-served byte ranges awaiting copy
}

// rio is one ring-I/O driver: a ring over one file plus the in-flight
// request state needed to push coalesced entry runs through it with
// retry-with-resubmit, O_DIRECT windowing, and quarantine bookkeeping.
// The worker has one for the edge file and one for the feature file;
// they differ only in the file, its alignment, the entry stride runs
// are denominated in, and which IOStats counters completed reads land
// in (shared retry-machinery counters stay on the worker).
type rio struct {
	w          *Worker
	ring       uring.Ring
	align      int   // O_DIRECT transfer granularity (0 = buffered handle)
	entryBytes int64 // bytes per run entry (edge entry or feature record)
	entryBase  int64 // global entry index of the file's first local entry (shard datasets; 0 otherwise)

	// reads/bytesRead point at the IOStats counters this driver's
	// completed reads accumulate into (Reads/BytesRead for the edge
	// file, FeatReads/FeatBytesRead for features).
	reads     *int64
	bytesRead *int64

	// inflight counts requests submitted to the ring whose completions
	// have not been harvested yet. It persists across issue() calls
	// precisely so a failed batch can be quarantined: requests still in
	// flight when issue surfaces an error must be drained before the
	// worker samples again, or the next batch's Wait would harvest
	// stale CQEs whose IDs index into the new request table.
	inflight int
	// ringFailed records a ring-level failure (Submit/Wait error, or a
	// contract-breaking stall) during the last batch; quarantine turns
	// it into the worker's broken.
	ringFailed bool

	reqs   []ioReq // in-flight request state (retry bookkeeping)
	retryQ []int   // request IDs awaiting resubmission

	// O_DIRECT scratch slots: one aligned window buffer per in-flight
	// request, recycled through free lists so memory is bounded by the
	// pipeline depth, not the run count. Arena-backed chunks serve
	// READ_FIXED; heap slots (allocated lazily, grown to the largest
	// window they have carried) serve the rest.
	dslots    []dslot
	freeFixed []int
	freeHeap  []int
}

// dslot is one O_DIRECT scratch slot.
type dslot struct {
	buf   []byte
	fixed bool // arena-backed: reads through it may use PrepReadFixed
}

// directChunkBytes is the size of each arena-backed O_DIRECT scratch
// chunk: covers a 4096-aligned window over any offset-mode run with
// room to spare; bigger windows (full-fetch lists) fall back to heap
// slots and plain reads.
const directChunkBytes = 16 << 10

// cachedPick is one cache-served byte range: src is cached file bytes,
// bufPos the stage-buffer position they land at. Copies are deferred
// because the buffer is sized only after planning completes.
type cachedPick struct {
	bufPos int64
	src    []byte
}

// zeroEntry is the placeholder bytes a shard writes for a non-owned
// node's pick (never read back as a neighbor value: the router replaces
// the span with the owning shard's bytes).
var zeroEntry = make([]byte, storage.EntryBytes)

// ioRun is one coalesced read: `entries` consecutive file entries
// (edge entries or feature records, per the issuing rio's stride)
// starting at entry index `entryStart`, landing at byte `bufPos` of
// the stage buffer.
type ioRun struct {
	entryStart int64
	entries    int32
	bufPos     int64
}

// ioReq is the live state of run i while it is in flight: the byte
// range still outstanding (which shrinks as short-read prefixes land)
// and how many retries it has consumed. On the O_DIRECT path the
// outstanding range is the aligned window (scratch != nil) and the
// int* fields remember the interior the run actually wants; offsets
// stay aligned across resubmission by rounding progress down.
type ioReq struct {
	off      int64 // next file byte offset to read
	bufPos   int64 // write position in the stage buffer (interior pos)
	remain   int64 // bytes still outstanding
	attempts int
	fixed    bool // destination is registered: prep via PrepReadFixed

	// O_DIRECT window state (scratch == nil on the buffered path).
	scratch  []byte // aligned window destination (slot-backed)
	slot     int    // scratch slot index (-1 when none held)
	wStart   int64  // aligned window start offset
	intOff   int64  // interior: first byte the run wants
	intLen   int64  // interior length
	devBytes int64  // device bytes delivered for this request so far
}

// NewWorker creates worker `id` with its own edge ring (and, when the
// fixed knob is active, its own registered arena). Distinct ids sample
// independent streams; equal (Seed, id) pairs sample bit-identically.
func (s *Sampler) NewWorker(id int) (*Worker, error) {
	w := &Worker{
		s:     s,
		id:    id,
		rng:   sample.NewRNG(sample.Mix(s.cfg.Seed, uint64(id))),
		depth: s.cfg.Depth,
	}
	if s.active.fixed {
		arenaBytes := s.cfg.ArenaBytes
		if arenaBytes == 0 {
			arenaBytes = DefaultArenaBytes
		}
		// 4096-aligned so arena-backed slices satisfy any O_DIRECT
		// granularity the dataset probe settled on.
		w.arena = storage.AlignedSlice(int(arenaBytes), 4096)
	}
	ring, err := w.openRing(s.ds.File())
	if err != nil {
		return nil, err
	}
	w.edge = rio{
		w: w, ring: ring,
		align:      s.ds.DirectAlign(),
		entryBytes: storage.EntryBytes,
		entryBase:  s.ds.EntryBase(),
		reads:      &w.stats.Reads,
		bytesRead:  &w.stats.BytesRead,
	}
	w.edge.initSlots()
	w.stats.ActiveFixed = s.active.fixed
	w.stats.ActiveRegFiles = s.active.regFiles
	w.stats.ActiveSQPoll = s.active.sqpoll
	w.stats.ActiveODirect = w.edge.align > 0
	return w, nil
}

// openRing builds one worker ring over f with the sampler's resolved
// options (arena registration, registered file, SQPOLL) and applies the
// WrapRing hook. Used for the edge ring at construction and the feature
// ring on first feature fetch.
func (w *Worker) openRing(f *os.File) (uring.Ring, error) {
	s := w.s
	opts := uring.Options{
		Entries:      s.cfg.RingSize,
		RegisterFile: s.active.regFiles,
		SQPoll:       s.active.sqpoll,
	}
	if w.arena != nil {
		opts.FixedBuffers = [][]byte{w.arena}
	}
	ring, err := uring.NewWith(s.backend, f, opts)
	if err != nil {
		return nil, err
	}
	if s.cfg.WrapRing != nil {
		wrapped, werr := s.cfg.WrapRing(ring, w.id)
		if werr != nil {
			// Close the inner ring, not the hook's return value — a
			// failing hook typically returns nil.
			ring.Close()
			return nil, fmt.Errorf("core: wrap worker %d ring: %w", w.id, werr)
		}
		ring = wrapped
	}
	return ring, nil
}

// initSlots pre-partitions the worker arena into O_DIRECT scratch
// chunks for this driver; the arena then serves windows instead of
// stage buffers. No-op for buffered handles.
func (r *rio) initSlots() {
	w := r.w
	if r.align == 0 || w.arena == nil {
		return
	}
	for off := 0; off+directChunkBytes <= len(w.arena); off += directChunkBytes {
		r.dslots = append(r.dslots, dslot{buf: w.arena[off : off+directChunkBytes], fixed: true})
	}
}

// ensureFeat lazily opens the worker's feature ring. Lazy so workers on
// featureful datasets cost nothing extra until a batch actually wants
// features.
func (w *Worker) ensureFeat() error {
	if w.feat.ring != nil {
		return nil
	}
	ds := w.s.ds
	if !ds.HasFeatures() {
		return fmt.Errorf("core: dataset %s has no feature file", ds.Dir())
	}
	ring, err := w.openRing(ds.FeatureFile())
	if err != nil {
		return fmt.Errorf("core: worker %d feature ring: %w", w.id, err)
	}
	featBase, _ := ds.ShardRange()
	w.feat = rio{
		w: w, ring: ring,
		align:      ds.FeatureAlign(),
		entryBytes: ds.FeatureStride(),
		entryBase:  featBase,
		reads:      &w.stats.FeatReads,
		bytesRead:  &w.stats.FeatBytesRead,
	}
	w.feat.initSlots()
	if w.feat.align > 0 {
		w.stats.ActiveODirect = true
	}
	return nil
}

// Close releases the worker's rings.
func (w *Worker) Close() error {
	err := w.edge.ring.Close()
	if w.feat.ring != nil {
		if ferr := w.feat.ring.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// IOStats returns the worker's accumulated ring-level I/O counters,
// with each ring's own syscall counters folded in when the backend
// reports them.
func (w *Worker) IOStats() IOStats {
	st := w.stats
	for _, ring := range []uring.Ring{w.edge.ring, w.feat.ring} {
		if ring == nil {
			continue
		}
		if sr, ok := ring.(uring.SyscallReporter); ok {
			sys := sr.Syscalls()
			st.SubmitSyscalls += sys.Submits
			st.WaitSyscalls += sys.Waits
		}
	}
	return st
}

// Broken reports whether one of the worker's rings could not be proven
// empty after a failed batch (see ErrWorkerBroken). Pools that lease
// workers across requests use it to retire a worker eagerly instead of
// discovering the refusal on the next SampleBatch.
func (w *Worker) Broken() bool { return w.broken }

// SampleBatchSeeded reseeds the worker's RNG to NewRNG(seed) and then
// samples one mini-batch. This is the epoch runner's path to
// thread-count invariance: the sample set becomes a pure function of
// (dataset, config, seed) — independent of which worker runs the batch
// and of how many workers exist — where SampleBatch continues the
// worker's rolling per-(Seed, id) stream.
func (w *Worker) SampleBatchSeeded(targets []uint32, seed uint64) (*Batch, error) {
	w.rng.Reseed(seed)
	return w.sampleBatch(targets, w.s.cfg.Fanouts, w.s.cfg.FetchFeatures, w.s.defStrat)
}

// SampleBatchFanouts reseeds the RNG and samples one mini-batch with
// per-call fanouts overriding the engine config — the serving layer's
// path: one leased worker serves requests with heterogeneous fanouts
// back to back, and the explicit reseed keeps each request's samples a
// pure function of (dataset, targets, fanouts, seed), independent of
// what the worker ran before.
func (w *Worker) SampleBatchFanouts(targets []uint32, fanouts []int, seed uint64) (*Batch, error) {
	return w.SampleBatchOpts(targets, BatchOpts{Fanouts: fanouts, Seed: seed})
}

// BatchOpts parameterizes one SampleBatchOpts call.
type BatchOpts struct {
	// Fanouts overrides the engine config's per-layer sample counts.
	// Must be non-empty.
	Fanouts []int
	// Seed reseeds the worker RNG before sampling (see
	// SampleBatchFanouts).
	Seed uint64
	// Features runs the feature stage for this batch even when
	// Config.FetchFeatures is off — the serving layer's per-request
	// switch.
	Features bool
	// Strategy names the draw strategy for this batch, overriding
	// Config.Strategy; empty falls through to the engine default. The
	// serving layer validates names before queueing (ValidStrategy), so
	// an unknown name here is a programming error surfaced per batch.
	Strategy string
}

// SampleBatchOpts is SampleBatchFanouts with the full option set,
// including a per-call feature-stage switch.
func (w *Worker) SampleBatchOpts(targets []uint32, o BatchOpts) (*Batch, error) {
	if len(o.Fanouts) == 0 {
		return nil, fmt.Errorf("core: sample batch needs at least one fanout layer")
	}
	for i, f := range o.Fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("core: fanout[%d] = %d must be positive", i, f)
		}
	}
	strat, err := w.s.strategyFor(o.Strategy)
	if err != nil {
		return nil, err
	}
	w.rng.Reseed(o.Seed)
	return w.sampleBatch(targets, o.Fanouts, o.Features || w.s.cfg.FetchFeatures, strat)
}

// SampleBatch samples the configured fanout layers for one mini-batch
// of target nodes and returns the per-layer results. All sampling
// decisions are made before any I/O is issued; what crosses the
// storage boundary depends on the config's OffsetSampling switch.
func (w *Worker) SampleBatch(targets []uint32) (*Batch, error) {
	return w.sampleBatch(targets, w.s.cfg.Fanouts, w.s.cfg.FetchFeatures, w.s.defStrat)
}

func (w *Worker) sampleBatch(targets []uint32, fanouts []int, features bool, strat Strategy) (*Batch, error) {
	if w.broken {
		return nil, fmt.Errorf("core: worker %d: %w", w.id, ErrWorkerBroken)
	}
	if w.s.ds.IsSharded() {
		// A shard can replay any layer's draws (SampleLayer) but cannot
		// produce whole batches alone: later frontiers contain nodes whose
		// bytes live on other shards. The router composes batches.
		return nil, fmt.Errorf("core: dataset %s is shard %d/%d; whole-batch sampling needs the router (see SampleLayer)",
			w.s.ds.Dir(), w.s.ds.ShardIndex(), w.s.ds.NumShards())
	}
	cfg := &w.s.cfg
	batch := &Batch{Layers: make([]Layer, len(fanouts))}
	w.frontier = append(w.frontier[:0], targets...)
	for li, fanout := range fanouts {
		layer := &batch.Layers[li]
		fan := strat.LayerFanout(li, fanout)
		if cfg.OffsetSampling {
			if err := w.sampleLayerOffset(layer, fan, strat); err != nil {
				return nil, err
			}
		} else {
			if err := w.sampleLayerFull(layer, fan, strat); err != nil {
				return nil, err
			}
		}
		// Between-layer frontier build (paper §2.1): the strategy turns
		// the sampled neighbors into the next layer's targets — sorted
		// and dedup'd for neighbor sampling, kept verbatim for walks.
		// layer.Targets holds its own copy, so reusing the frontier
		// workspace as the destination is safe.
		w.frontier = strat.NextFrontier(layer, w.frontier)
	}
	if features {
		if err := w.fetchBatchFeatures(batch); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// sampleLayerOffset is the paper's path: draw fanout entry indices
// from each node's offset range, coalesce adjacent picks into runs,
// and read exactly those entries. Cached nodes are served from the
// hot-neighbor cache instead of planning runs — the strategy's draws
// happen first either way, so RNG consumption (and therefore the
// sampled set) is identical with the cache on or off.
func (w *Worker) sampleLayerOffset(layer *Layer, fanout int, strat Strategy) error {
	ds := w.s.ds
	hot := w.s.hot
	sharded := ds.IsSharded()
	layer.Targets = append([]uint32(nil), w.frontier...)
	layer.Starts = make([]int64, len(w.frontier)+1)
	w.runs = w.runs[:0]
	w.cachedPicks = w.cachedPicks[:0]
	var total int64
	for i, v := range w.frontier {
		layer.Starts[i] = total
		st, en := ds.Range(v)
		deg := int(en - st)
		if deg == 0 {
			continue
		}
		k := fanout
		if deg < k {
			k = deg
		}
		w.idxs = strat.Draw(&w.rng, v, deg, k, w.idxs[:0])
		if sharded && !ds.Owns(v) {
			// Non-owned node on a shard: the draws above already consumed
			// the exact RNG stream (degrees come from the global offset
			// index), but the neighbor bytes live on another shard.
			// Zero-fill the span so Starts stay layout-identical; the
			// router overlays the owning shard's bytes (DESIGN.md §12).
			for range w.idxs {
				w.cachedPicks = append(w.cachedPicks, cachedPick{
					bufPos: total * storage.EntryBytes,
					src:    zeroEntry,
				})
				total++
			}
			continue
		}
		if nb := hot.Lookup(v); nb != nil {
			for _, idx := range w.idxs {
				w.cachedPicks = append(w.cachedPicks, cachedPick{
					bufPos: total * storage.EntryBytes,
					src:    nb[idx*storage.EntryBytes : (idx+1)*storage.EntryBytes],
				})
				total++
			}
			w.stats.CacheHits++
			w.stats.CacheBytes += int64(k) * storage.EntryBytes
			continue
		}
		if hot != nil {
			w.stats.CacheMisses++
		}
		for _, idx := range w.idxs {
			abs := st + int64(idx)
			// Coalesce only when the pick is adjacent in the edge file AND
			// in the layer buffer. A cache hit advances `total` without
			// appending a run, so file adjacency alone would merge a
			// post-hit pick into a pre-hit run and land its bytes over the
			// cached node's slots.
			if n := len(w.runs); n > 0 &&
				w.runs[n-1].entryStart+int64(w.runs[n-1].entries) == abs &&
				w.runs[n-1].bufPos+int64(w.runs[n-1].entries)*storage.EntryBytes == total*storage.EntryBytes {
				w.runs[n-1].entries++
			} else {
				w.runs = append(w.runs, ioRun{entryStart: abs, entries: 1, bufPos: total * storage.EntryBytes})
			}
			total++
		}
	}
	layer.Starts[len(w.frontier)] = total
	w.sizeBuf(total*storage.EntryBytes, w.edge.align)
	w.copyCached()
	if err := w.edge.issue(w.runs, w.buf); err != nil {
		return err
	}
	// Runs were planned in frontier order with sequential buffer
	// positions, so the buffer is exactly the concatenated sampled
	// neighbors.
	layer.Neighbors = decodeU32(w.buf[:total*storage.EntryBytes])
	return nil
}

// sampleLayerFull is the ablation baseline (prior out-of-core
// systems, §2.2.1): fetch every node's complete neighbor list, then
// sample in memory. The fanout indices are drawn identically to the
// offset path — the two modes produce the same sample sets and differ
// only in what crosses the storage boundary.
func (w *Worker) sampleLayerFull(layer *Layer, fanout int, strat Strategy) error {
	ds := w.s.ds
	hot := w.s.hot
	layer.Targets = append([]uint32(nil), w.frontier...)
	layer.Starts = make([]int64, len(w.frontier)+1)
	w.runs = w.runs[:0]
	w.sel = w.sel[:0]
	w.nodePos = w.nodePos[:0]
	w.cachedPicks = w.cachedPicks[:0]
	var total, listBytes int64
	for i, v := range w.frontier {
		layer.Starts[i] = total
		w.nodePos = append(w.nodePos, listBytes)
		st, en := ds.Range(v)
		deg := int(en - st)
		if deg == 0 {
			continue
		}
		k := fanout
		if deg < k {
			k = deg
		}
		w.idxs = strat.Draw(&w.rng, v, deg, k, w.idxs[:0])
		for _, idx := range w.idxs {
			w.sel = append(w.sel, int32(idx))
		}
		total += int64(k)
		if nb := hot.Lookup(v); nb != nil {
			// Cache hit: the whole list lands at its planned buffer
			// position from memory; the in-memory selection below is
			// untouched.
			w.cachedPicks = append(w.cachedPicks, cachedPick{bufPos: listBytes, src: nb})
			w.stats.CacheHits++
			w.stats.CacheBytes += int64(deg) * storage.EntryBytes
		} else {
			if hot != nil {
				w.stats.CacheMisses++
			}
			w.runs = append(w.runs, ioRun{entryStart: st, entries: int32(deg), bufPos: listBytes})
		}
		listBytes += int64(deg) * storage.EntryBytes
	}
	layer.Starts[len(w.frontier)] = total
	w.sizeBuf(listBytes, w.edge.align)
	w.copyCached()
	if err := w.edge.issue(w.runs, w.buf); err != nil {
		return err
	}
	layer.Neighbors = make([]uint32, 0, total)
	si := 0
	for i := range layer.Targets {
		k := int(layer.Starts[i+1] - layer.Starts[i])
		pos := w.nodePos[i]
		for _, idx := range w.sel[si : si+k] {
			off := pos + int64(idx)*storage.EntryBytes
			layer.Neighbors = append(layer.Neighbors, leU32(w.buf[off:]))
		}
		si += k
	}
	return nil
}

// fetchBatchFeatures runs the post-draw feature stage: collect the
// batch's node union (layer-0 targets plus every layer's sampled
// neighbors — deeper layers' targets are subsets of earlier neighbors),
// sort+dedup it, and fetch one vector per node through the feature
// ring. Runs strictly after all sampling layers, so it can never
// perturb the sampled node set.
func (w *Worker) fetchBatchFeatures(b *Batch) error {
	w.featNodes = w.featNodes[:0]
	for li := range b.Layers {
		if li == 0 {
			w.featNodes = append(w.featNodes, b.Layers[li].Targets...)
		}
		w.featNodes = append(w.featNodes, b.Layers[li].Neighbors...)
	}
	b.FeatNodes = append([]uint32(nil), sample.SortDedup(w.featNodes)...)
	feats, err := w.featuresFor(b.FeatNodes)
	if err != nil {
		return err
	}
	b.Features = feats
	b.FeatureDim = w.s.ds.FeatureDim()
	return nil
}

// FetchFeatures reads the feature vectors of the given nodes through
// the worker's feature ring and returns them back to back in input
// order (duplicates allowed, one stride-sized record per input entry).
// Like SampleBatch it refuses a broken worker.
func (w *Worker) FetchFeatures(nodes []uint32) ([]byte, error) {
	if w.broken {
		return nil, fmt.Errorf("core: worker %d: %w", w.id, ErrWorkerBroken)
	}
	return w.featuresFor(nodes)
}

// featuresFor plans and issues the feature reads for nodes: cached
// vectors are served from the feature cache, the rest are coalesced
// into runs of file-adjacent records — subject to the same
// file-AND-buffer adjacency rule as the edge path, because a cache hit
// advances the buffer position without appending a run — and issued
// through the feature rio with full retry/quarantine handling.
func (w *Worker) featuresFor(nodes []uint32) ([]byte, error) {
	ds := w.s.ds
	if !ds.HasFeatures() {
		return nil, fmt.Errorf("core: dataset %s has no feature file", ds.Dir())
	}
	if err := w.ensureFeat(); err != nil {
		return nil, err
	}
	stride := w.feat.entryBytes
	// On a shard dataset only the owned range's vectors are present;
	// the router scatters feature fetches by ownership, so a non-owned
	// node here is a caller bug, rejected before any I/O. Unsharded,
	// the range is [0, NumNodes) and this is the plain bounds check.
	ownLo, ownHi := ds.ShardRange()
	hot := w.s.featHot
	w.runs = w.runs[:0]
	w.cachedPicks = w.cachedPicks[:0]
	var total int64
	for _, v := range nodes {
		if int64(v) < ownLo || int64(v) >= ownHi {
			return nil, fmt.Errorf("core: feature fetch for node %d outside [%d,%d)", v, ownLo, ownHi)
		}
		if fb := hot.Lookup(v); fb != nil {
			w.cachedPicks = append(w.cachedPicks, cachedPick{bufPos: total * stride, src: fb})
			w.stats.FeatCacheHits++
			w.stats.FeatCacheBytes += stride
			total++
			continue
		}
		if hot != nil {
			w.stats.FeatCacheMisses++
		}
		if n := len(w.runs); n > 0 &&
			w.runs[n-1].entryStart+int64(w.runs[n-1].entries) == int64(v) &&
			w.runs[n-1].bufPos+int64(w.runs[n-1].entries)*stride == total*stride {
			w.runs[n-1].entries++
		} else {
			w.runs = append(w.runs, ioRun{entryStart: int64(v), entries: 1, bufPos: total * stride})
		}
		total++
	}
	w.sizeBuf(total*stride, w.feat.align)
	w.copyCached()
	if err := w.feat.issue(w.runs, w.buf); err != nil {
		return nil, err
	}
	out := make([]byte, total*stride)
	copy(out, w.buf[:total*stride])
	return out, nil
}

// issue drives the planned reads through this driver's ring. With the
// asynchronous pipeline (paper Fig 3b) it keeps preparing and
// submitting further requests while earlier completions drain; the
// synchronous ablation waits for every in-flight request before
// staging more.
//
// Transient results are absorbed here rather than failing the batch:
// -EINTR/-EAGAIN resubmit the request verbatim and a short read
// resubmits exactly the remaining byte range (short-read prefixes are
// kept — they may split an entry or a feature vector mid-way, which
// byte-granular resubmission handles). Each request has a bounded retry
// budget (Config.MaxIORetries); exhaustion, or any non-retryable errno,
// surfaces as a structured *IOError.
//
// A failed batch may leave requests in flight; they are quarantined
// here — their completions drained and discarded, on BOTH of the
// worker's rings — before the error is surfaced, because a stale CQE
// harvested by the NEXT batch would be routed by its ID into that
// batch's request table: silent buffer and accounting corruption. If
// the drain itself fails the worker is marked broken and refuses
// further batches.
func (r *rio) issue(runs []ioRun, buf []byte) error {
	err := r.issueReads(runs, buf)
	if err != nil {
		r.w.quarantine()
	}
	return err
}

// quarantine harvests and discards the completions of requests still in
// flight after a failed batch, on both rings. A ring that errors, or
// stops producing completions it owes, cannot be proven empty — the
// worker is marked broken so SampleBatch refuses to reuse it.
func (w *Worker) quarantine() {
	w.edge.drain()
	w.feat.drain()
}

// drain empties this driver's in-flight window (see quarantine).
func (r *rio) drain() {
	if r.ring == nil {
		return
	}
	for r.inflight > 0 {
		cqes, err := r.ring.Wait(r.inflight)
		if err != nil || len(cqes) == 0 {
			r.ringFailed = true
			break
		}
		r.inflight -= len(cqes)
		r.w.stats.StaleDrained += int64(len(cqes))
	}
	if r.ringFailed {
		r.w.broken = true
	}
}

// issueReads is issue's submission/completion loop. On error return,
// r.inflight counts exactly the requests still in flight in the ring
// (already-harvested completions are accounted before processing), and
// r.ringFailed records whether the ring itself failed — the state
// quarantine needs to clean up safely.
//
// Submission is deep by default: each pass stages every request the
// ring (and Config.Depth, when set) will take — fresh runs and retries
// alike — and publishes them with ONE Submit, so a full pipeline costs
// one io_uring_enter for many coalesced runs. On the completion side,
// while more work is waiting to be staged the pass reaps up to half the
// in-flight window in one blocking Wait (reap-many) instead of waking
// per completion; once everything is staged it degrades to min=1 so the
// tail drains with maximum overlap.
func (r *rio) issueReads(runs []ioRun, buf []byte) error {
	w := r.w
	async := w.s.cfg.AsyncPipeline
	maxRetries := w.s.cfg.MaxIORetries
	if cap(r.reqs) < len(runs) {
		r.reqs = make([]ioReq, len(runs))
	}
	r.reqs = r.reqs[:len(runs)]
	r.retryQ = r.retryQ[:0]
	r.resetSlots()
	next, completed := 0, 0
	for completed < len(runs) {
		staged := 0
		// Resubmissions first: their buffer ranges block stage decode.
		for len(r.retryQ) > 0 && r.withinDepth(staged) {
			if !r.prepReq(r.retryQ[0], buf) {
				break
			}
			r.retryQ = r.retryQ[1:]
			staged++
		}
		if len(r.retryQ) == 0 {
			for next < len(runs) && r.withinDepth(staged) {
				if !r.stageNew(next, runs, buf) {
					break
				}
				next++
				staged++
			}
		}
		if staged > 0 {
			if _, err := r.ring.Submit(); err != nil {
				// Unknown how many staged requests were published; the
				// ring cannot be proven empty again.
				r.ringFailed = true
				return err
			}
			r.inflight += staged
		}
		min := 1
		if !async {
			min = r.inflight
		} else if (len(r.retryQ) > 0 || next < len(runs)) && r.inflight > 1 {
			// Saturated: more work wants in. Reap half the window in one
			// blocking call so the refill batches are deep too.
			min = r.inflight / 2
		}
		cqes, err := r.ring.Wait(min)
		if err != nil {
			r.ringFailed = true
			return err
		}
		// Everything Wait returned has left the ring, whether or not the
		// loop below errors out mid-way — account for it up front so
		// quarantine sees the true in-flight count.
		r.inflight -= len(cqes)
		for _, c := range cqes {
			rq := &r.reqs[c.ID]
			switch {
			case c.Res < 0:
				errno := syscall.Errno(-c.Res)
				if !transientErrno(errno) {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, Errno: errno}
				}
				w.stats.TransientErrs++
				if rq.attempts >= maxRetries {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, Errno: errno}
				}
				rq.attempts++
				w.stats.Retries++
				r.retryQ = append(r.retryQ, int(c.ID))
			case int64(c.Res) > rq.remain:
				return fmt.Errorf("core: overlong read at offset %d: got %d bytes, want %d",
					rq.off, c.Res, rq.remain)
			case rq.scratch != nil:
				done, err := r.completeDirect(int(c.ID), rq, int64(c.Res), buf, maxRetries)
				if err != nil {
					return err
				}
				if done {
					completed++
				}
			case int64(c.Res) == rq.remain:
				*r.reads++
				*r.bytesRead += int64(c.Res)
				if rq.fixed {
					w.stats.FixedReads++
				}
				completed++
			default:
				// Short read: the prefix is valid — advance the request
				// window and resubmit only the tail.
				w.stats.ShortReads++
				*r.bytesRead += int64(c.Res)
				rq.off += int64(c.Res)
				rq.bufPos += int64(c.Res)
				rq.remain -= int64(c.Res)
				if rq.attempts >= maxRetries {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, ShortRead: true}
				}
				rq.attempts++
				w.stats.Retries++
				r.retryQ = append(r.retryQ, int(c.ID))
			}
		}
		// Stall guard: with nothing staged, nothing in flight and no
		// completions drained, the next iteration would replay this one
		// verbatim — a ring violating the never-refuse-while-idle
		// contract must surface as an error, not an infinite spin.
		if staged == 0 && r.inflight == 0 && len(cqes) == 0 {
			r.ringFailed = true
			return fmt.Errorf("core: %d of %d reads complete, %d awaiting retry: %w",
				completed, len(runs), len(r.retryQ), ErrRingStalled)
		}
	}
	return nil
}

// withinDepth reports whether one more request may be staged under the
// configured in-flight cap.
func (r *rio) withinDepth(staged int) bool {
	return r.w.depth <= 0 || r.inflight+staged < r.w.depth
}

// stageNew initializes request id from its run and stages it. On the
// O_DIRECT path the request reads the aligned window around the run
// into a scratch slot; the interior is copied out at completion. The
// slot is released again if the ring refuses the prep, so re-staging
// the same id later starts clean.
func (r *rio) stageNew(id int, runs []ioRun, buf []byte) bool {
	run := &runs[id]
	// Runs are planned in GLOBAL entry coordinates; on a shard dataset
	// the local file starts at entryBase, so the file offset subtracts it
	// (zero when unsharded). The planner only emits runs for owned nodes.
	intOff := (run.entryStart - r.entryBase) * r.entryBytes
	intLen := int64(run.entries) * r.entryBytes
	rq := &r.reqs[id]
	if r.align == 0 {
		*rq = ioReq{off: intOff, bufPos: run.bufPos, remain: intLen, fixed: r.w.bufFixed, slot: -1}
	} else {
		lo := storage.AlignDown(intOff, r.align)
		win := storage.AlignUp(intOff+intLen, r.align) - lo
		slot, scratch, fixed := r.getSlot(int(win))
		*rq = ioReq{
			off: lo, wStart: lo, remain: win,
			bufPos: run.bufPos, intOff: intOff, intLen: intLen,
			scratch: scratch, slot: slot, fixed: fixed,
		}
	}
	if !r.prepReq(id, buf) {
		if rq.slot >= 0 {
			r.putSlot(rq.slot)
			rq.slot = -1
		}
		return false
	}
	return true
}

// prepReq stages request id's outstanding byte range into the ring,
// routing the destination (stage buffer or aligned scratch window) and
// the prep flavor (fixed or plain) from the request state.
func (r *rio) prepReq(id int, buf []byte) bool {
	rq := &r.reqs[id]
	var dst []byte
	if rq.scratch != nil {
		pos := rq.off - rq.wStart
		dst = rq.scratch[pos : pos+rq.remain]
	} else {
		dst = buf[rq.bufPos : rq.bufPos+rq.remain]
	}
	if rq.fixed {
		return r.ring.PrepReadFixed(uint64(id), rq.off, dst, 0)
	}
	return r.ring.PrepRead(uint64(id), rq.off, dst)
}

// completeDirect handles a non-negative completion of an O_DIRECT
// window request. The request is done as soon as the delivered bytes
// cover the interior — which an EOF-straddling tail window reaches with
// a short count, since the window's aligned end may lie past the file
// end while the interior never does. A short count that leaves interior
// bytes uncovered resubmits from the progress rounded DOWN to the
// alignment (re-reading the partial block) so the resumed offset stays
// O_DIRECT-legal.
func (r *rio) completeDirect(id int, rq *ioReq, got int64, buf []byte, maxRetries int) (bool, error) {
	w := r.w
	rq.devBytes += got
	covered := rq.off + got // absolute file position delivered through
	if covered >= rq.intOff+rq.intLen {
		copy(buf[rq.bufPos:rq.bufPos+rq.intLen], rq.scratch[rq.intOff-rq.wStart:])
		*r.reads++
		*r.bytesRead += rq.intLen
		w.stats.AlignSlackBytes += rq.devBytes - rq.intLen
		if rq.fixed {
			w.stats.FixedReads++
		}
		r.putSlot(rq.slot)
		rq.slot = -1
		rq.scratch = nil
		return true, nil
	}
	// Short of the interior: resubmit the rest of the window from an
	// aligned resume point.
	w.stats.ShortReads++
	if rq.attempts >= maxRetries {
		return false, &IOError{Offset: covered, Bytes: rq.intOff + rq.intLen - covered, Attempts: rq.attempts, ShortRead: true}
	}
	rq.attempts++
	w.stats.Retries++
	wEnd := rq.wStart + int64(len(rq.scratch))
	rq.off = storage.AlignDown(covered, r.align)
	rq.remain = wEnd - rq.off
	r.retryQ = append(r.retryQ, id)
	return false, nil
}

// sizeBuf points w.buf at a stage buffer of n bytes: the registered
// arena when the fixed knob is on, the buffer fits, and the issuing
// file handle is buffered (O_DIRECT stages read through scratch windows
// instead, and the arena serves those); otherwise a heap workspace,
// with plain reads.
func (w *Worker) sizeBuf(n int64, align int) {
	if w.arena != nil && align == 0 && n <= int64(len(w.arena)) {
		w.buf = w.arena[:n]
		w.bufFixed = true
		return
	}
	w.heapBuf = grow(w.heapBuf, n)
	w.buf = w.heapBuf
	w.bufFixed = false
}

// resetSlots returns every O_DIRECT scratch slot to its free list.
// Called at the top of each issue pass: any slot still marked held at
// that point belonged to a failed batch whose in-flight requests were
// quarantined, so reclaiming wholesale is safe.
func (r *rio) resetSlots() {
	if r.align == 0 {
		return
	}
	r.freeFixed = r.freeFixed[:0]
	r.freeHeap = r.freeHeap[:0]
	for i := range r.dslots {
		if r.dslots[i].fixed {
			r.freeFixed = append(r.freeFixed, i)
		} else {
			r.freeHeap = append(r.freeHeap, i)
		}
	}
}

// getSlot leases a scratch slot able to hold a win-byte aligned window,
// preferring arena-backed (fixed) chunks. Heap slots grow to the
// largest window they have carried and are reused; total slot count is
// bounded by the in-flight cap, never the run count.
func (r *rio) getSlot(win int) (slot int, scratch []byte, fixed bool) {
	if win <= directChunkBytes && len(r.freeFixed) > 0 {
		slot = r.freeFixed[len(r.freeFixed)-1]
		r.freeFixed = r.freeFixed[:len(r.freeFixed)-1]
		return slot, r.dslots[slot].buf[:win], true
	}
	if len(r.freeHeap) > 0 {
		slot = r.freeHeap[len(r.freeHeap)-1]
		r.freeHeap = r.freeHeap[:len(r.freeHeap)-1]
		if len(r.dslots[slot].buf) < win {
			r.dslots[slot].buf = storage.AlignedSlice(win, r.align)
		}
		return slot, r.dslots[slot].buf[:win], false
	}
	slot = len(r.dslots)
	r.dslots = append(r.dslots, dslot{buf: storage.AlignedSlice(win, r.align)})
	return slot, r.dslots[slot].buf[:win], false
}

// putSlot returns a leased slot to its free list.
func (r *rio) putSlot(slot int) {
	if r.dslots[slot].fixed {
		r.freeFixed = append(r.freeFixed, slot)
	} else {
		r.freeHeap = append(r.freeHeap, slot)
	}
}

// copyCached lands every cache-served byte range in the (now sized)
// stage buffer. Cached ranges and planned runs are disjoint, so order
// relative to issue does not matter.
func (w *Worker) copyCached() {
	for _, cp := range w.cachedPicks {
		copy(w.buf[cp.bufPos:], cp.src)
	}
}

func grow(buf []byte, n int64) []byte {
	if int64(cap(buf)) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/storage.EntryBytes)
	for i := range out {
		out[i] = leU32(b[i*storage.EntryBytes:])
	}
	return out
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
