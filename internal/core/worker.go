package core

import (
	"fmt"
	"sort"
	"syscall"

	"ringsampler/internal/cache"
	"ringsampler/internal/memctl"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Sampler is the real RingSampler engine over an opened dataset. It is
// cheap and immutable; per-thread state lives in Workers.
type Sampler struct {
	ds      *storage.Dataset
	cfg     Config
	backend uring.Backend
	// hot is the shared hot-neighbor cache (nil when disabled):
	// immutable after New, so workers consult it with no
	// synchronization.
	hot *cache.Hot
}

// New validates the configuration and binds the engine to a ring
// backend. BackendIOURing fails fast here when the environment doesn't
// support it (callers gate on uring.Probe()). When
// Config.CacheBudgetBytes is positive the hot-neighbor cache is
// populated here, degree-first, charged against a memctl budget of
// that size.
func New(ds *storage.Dataset, cfg Config, backend uring.Backend) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if backend == uring.BackendIOURing && !uring.Probe() {
		return nil, fmt.Errorf("core: io_uring backend requested but unavailable; use %s", uring.BackendPool)
	}
	s := &Sampler{ds: ds, cfg: cfg, backend: backend}
	if cfg.CacheBudgetBytes > 0 {
		hot, err := cache.Build(ds, memctl.New(cfg.CacheBudgetBytes))
		if err != nil {
			return nil, fmt.Errorf("core: build hot-neighbor cache: %w", err)
		}
		s.hot = hot
	}
	return s, nil
}

// Config returns the engine configuration.
func (s *Sampler) Config() Config { return s.cfg }

// CacheInfo returns the hot-neighbor cache's pinned node count and
// cached list bytes — zeros when the cache is disabled.
func (s *Sampler) CacheInfo() (nodes int, bytes int64) {
	return s.hot.Nodes(), s.hot.Bytes()
}

// Worker is one sampling thread (paper Fig 3a): a private ring pair,
// private RNG, and private offset/neighbor/target workspaces. Workers
// share nothing, so an epoch runs them with zero synchronization.
// A Worker is not safe for concurrent use.
type Worker struct {
	s     *Sampler
	id    int
	ring  uring.Ring
	rng   sample.RNG
	stats IOStats

	// inflight counts requests submitted to the ring whose completions
	// have not been harvested yet. It persists across issue() calls
	// precisely so a failed batch can be quarantined: requests still in
	// flight when issue surfaces an error must be drained before the
	// worker samples again, or the next batch's Wait would harvest
	// stale CQEs whose IDs index into the new request table.
	inflight int
	// ringFailed records a ring-level failure (Submit/Wait error, or a
	// contract-breaking stall) during the last batch; quarantine turns
	// it into broken.
	ringFailed bool
	// broken marks a worker whose ring may still hold completions that
	// could not be drained. SampleBatch refuses such a worker.
	broken bool

	// Workspaces, reused across batches (paper §3.1).
	runs        []ioRun      // offset workspace: coalesced read requests
	reqs        []ioReq      // in-flight request state (retry bookkeeping)
	retryQ      []int        // request IDs awaiting resubmission
	frontier    []uint32     // target workspace
	gathered    []uint32     // neighbor accumulation for frontier building
	buf         []byte       // neighbor workspace backing the reads
	idxs        []int        // fanout-index scratch
	sel         []int32      // full-fetch mode: chosen in-list indices
	nodePos     []int64      // full-fetch mode: per-node buffer position
	cachedPicks []cachedPick // cache-served byte ranges awaiting copy
}

// cachedPick is one cache-served byte range: src is cached edge-file
// bytes, bufPos the layer-buffer position they land at. Copies are
// deferred because the buffer is sized only after planning completes.
type cachedPick struct {
	bufPos int64
	src    []byte
}

// ioRun is one coalesced read: `entries` consecutive edge-file entries
// starting at entry index `entryStart`, landing at byte `bufPos` of
// the layer buffer.
type ioRun struct {
	entryStart int64
	entries    int32
	bufPos     int64
}

// ioReq is the live state of run i while it is in flight: the byte
// range still outstanding (which shrinks as short-read prefixes land)
// and how many retries it has consumed.
type ioReq struct {
	off      int64 // next edge-file byte offset to read
	bufPos   int64 // next write position in the layer buffer
	remain   int64 // bytes still outstanding
	attempts int
}

// NewWorker creates worker `id` with its own ring. Distinct ids sample
// independent streams; equal (Seed, id) pairs sample bit-identically.
func (s *Sampler) NewWorker(id int) (*Worker, error) {
	ring, err := uring.New(s.backend, s.ds.File(), s.cfg.RingSize)
	if err != nil {
		return nil, err
	}
	if s.cfg.WrapRing != nil {
		ring, err = s.cfg.WrapRing(ring, id)
		if err != nil {
			return nil, fmt.Errorf("core: wrap worker %d ring: %w", id, err)
		}
	}
	return &Worker{
		s:    s,
		id:   id,
		ring: ring,
		rng:  sample.NewRNG(sample.Mix(s.cfg.Seed, uint64(id))),
	}, nil
}

// Close releases the worker's ring.
func (w *Worker) Close() error { return w.ring.Close() }

// IOStats returns the worker's accumulated ring-level I/O counters.
func (w *Worker) IOStats() IOStats { return w.stats }

// Broken reports whether the worker's ring could not be proven empty
// after a failed batch (see ErrWorkerBroken). Pools that lease workers
// across requests use it to retire a worker eagerly instead of
// discovering the refusal on the next SampleBatch.
func (w *Worker) Broken() bool { return w.broken }

// SampleBatchSeeded reseeds the worker's RNG to NewRNG(seed) and then
// samples one mini-batch. This is the epoch runner's path to
// thread-count invariance: the sample set becomes a pure function of
// (dataset, config, seed) — independent of which worker runs the batch
// and of how many workers exist — where SampleBatch continues the
// worker's rolling per-(Seed, id) stream.
func (w *Worker) SampleBatchSeeded(targets []uint32, seed uint64) (*Batch, error) {
	w.rng.Reseed(seed)
	return w.sampleBatch(targets, w.s.cfg.Fanouts)
}

// SampleBatchFanouts reseeds the RNG and samples one mini-batch with
// per-call fanouts overriding the engine config — the serving layer's
// path: one leased worker serves requests with heterogeneous fanouts
// back to back, and the explicit reseed keeps each request's samples a
// pure function of (dataset, targets, fanouts, seed), independent of
// what the worker ran before.
func (w *Worker) SampleBatchFanouts(targets []uint32, fanouts []int, seed uint64) (*Batch, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("core: sample batch needs at least one fanout layer")
	}
	for i, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("core: fanout[%d] = %d must be positive", i, f)
		}
	}
	w.rng.Reseed(seed)
	return w.sampleBatch(targets, fanouts)
}

// SampleBatch samples the configured fanout layers for one mini-batch
// of target nodes and returns the per-layer results. All sampling
// decisions are made before any I/O is issued; what crosses the
// storage boundary depends on the config's OffsetSampling switch.
func (w *Worker) SampleBatch(targets []uint32) (*Batch, error) {
	return w.sampleBatch(targets, w.s.cfg.Fanouts)
}

func (w *Worker) sampleBatch(targets []uint32, fanouts []int) (*Batch, error) {
	if w.broken {
		return nil, fmt.Errorf("core: worker %d: %w", w.id, ErrWorkerBroken)
	}
	cfg := &w.s.cfg
	batch := &Batch{Layers: make([]Layer, len(fanouts))}
	w.frontier = append(w.frontier[:0], targets...)
	for li, fanout := range fanouts {
		layer := &batch.Layers[li]
		if cfg.OffsetSampling {
			if err := w.sampleLayerOffset(layer, fanout); err != nil {
				return nil, err
			}
		} else {
			if err := w.sampleLayerFull(layer, fanout); err != nil {
				return nil, err
			}
		}
		// Between-layer frontier: sort+dedup the sampled neighbors
		// (paper §2.1). The dedup'd set becomes the next layer's
		// targets.
		w.gathered = append(w.gathered[:0], layer.Neighbors...)
		w.frontier = append(w.frontier[:0], sample.SortDedup(w.gathered)...)
	}
	return batch, nil
}

// sampleLayerOffset is the paper's path: draw fanout entry indices
// from each node's offset range, coalesce adjacent picks into runs,
// and read exactly those entries. Cached nodes are served from the
// hot-neighbor cache instead of planning runs — the fanout draws
// happen first either way, so RNG consumption (and therefore the
// sampled set) is identical with the cache on or off.
func (w *Worker) sampleLayerOffset(layer *Layer, fanout int) error {
	ds := w.s.ds
	hot := w.s.hot
	layer.Targets = append([]uint32(nil), w.frontier...)
	layer.Starts = make([]int64, len(w.frontier)+1)
	w.runs = w.runs[:0]
	w.cachedPicks = w.cachedPicks[:0]
	var total int64
	for i, v := range w.frontier {
		layer.Starts[i] = total
		st, en := ds.Range(v)
		deg := int(en - st)
		if deg == 0 {
			continue
		}
		k := fanout
		if deg < k {
			k = deg
		}
		w.idxs = sample.Floyd(&w.rng, deg, k, w.idxs[:0])
		sort.Ints(w.idxs)
		if nb := hot.Lookup(v); nb != nil {
			for _, idx := range w.idxs {
				w.cachedPicks = append(w.cachedPicks, cachedPick{
					bufPos: total * storage.EntryBytes,
					src:    nb[idx*storage.EntryBytes : (idx+1)*storage.EntryBytes],
				})
				total++
			}
			w.stats.CacheHits++
			w.stats.CacheBytes += int64(k) * storage.EntryBytes
			continue
		}
		if hot != nil {
			w.stats.CacheMisses++
		}
		for _, idx := range w.idxs {
			abs := st + int64(idx)
			// Coalesce only when the pick is adjacent in the edge file AND
			// in the layer buffer. A cache hit advances `total` without
			// appending a run, so file adjacency alone would merge a
			// post-hit pick into a pre-hit run and land its bytes over the
			// cached node's slots.
			if n := len(w.runs); n > 0 &&
				w.runs[n-1].entryStart+int64(w.runs[n-1].entries) == abs &&
				w.runs[n-1].bufPos+int64(w.runs[n-1].entries)*storage.EntryBytes == total*storage.EntryBytes {
				w.runs[n-1].entries++
			} else {
				w.runs = append(w.runs, ioRun{entryStart: abs, entries: 1, bufPos: total * storage.EntryBytes})
			}
			total++
		}
	}
	layer.Starts[len(w.frontier)] = total
	w.buf = grow(w.buf, total*storage.EntryBytes)
	w.copyCached()
	if err := w.issue(w.runs, w.buf); err != nil {
		return err
	}
	// Runs were planned in frontier order with sequential buffer
	// positions, so the buffer is exactly the concatenated sampled
	// neighbors.
	layer.Neighbors = decodeU32(w.buf[:total*storage.EntryBytes])
	return nil
}

// sampleLayerFull is the ablation baseline (prior out-of-core
// systems, §2.2.1): fetch every node's complete neighbor list, then
// sample in memory. The fanout indices are drawn identically to the
// offset path — the two modes produce the same sample sets and differ
// only in what crosses the storage boundary.
func (w *Worker) sampleLayerFull(layer *Layer, fanout int) error {
	ds := w.s.ds
	hot := w.s.hot
	layer.Targets = append([]uint32(nil), w.frontier...)
	layer.Starts = make([]int64, len(w.frontier)+1)
	w.runs = w.runs[:0]
	w.sel = w.sel[:0]
	w.nodePos = w.nodePos[:0]
	w.cachedPicks = w.cachedPicks[:0]
	var total, listBytes int64
	for i, v := range w.frontier {
		layer.Starts[i] = total
		w.nodePos = append(w.nodePos, listBytes)
		st, en := ds.Range(v)
		deg := int(en - st)
		if deg == 0 {
			continue
		}
		k := fanout
		if deg < k {
			k = deg
		}
		w.idxs = sample.Floyd(&w.rng, deg, k, w.idxs[:0])
		sort.Ints(w.idxs)
		for _, idx := range w.idxs {
			w.sel = append(w.sel, int32(idx))
		}
		total += int64(k)
		if nb := hot.Lookup(v); nb != nil {
			// Cache hit: the whole list lands at its planned buffer
			// position from memory; the in-memory selection below is
			// untouched.
			w.cachedPicks = append(w.cachedPicks, cachedPick{bufPos: listBytes, src: nb})
			w.stats.CacheHits++
			w.stats.CacheBytes += int64(deg) * storage.EntryBytes
		} else {
			if hot != nil {
				w.stats.CacheMisses++
			}
			w.runs = append(w.runs, ioRun{entryStart: st, entries: int32(deg), bufPos: listBytes})
		}
		listBytes += int64(deg) * storage.EntryBytes
	}
	layer.Starts[len(w.frontier)] = total
	w.buf = grow(w.buf, listBytes)
	w.copyCached()
	if err := w.issue(w.runs, w.buf); err != nil {
		return err
	}
	layer.Neighbors = make([]uint32, 0, total)
	si := 0
	for i := range layer.Targets {
		k := int(layer.Starts[i+1] - layer.Starts[i])
		pos := w.nodePos[i]
		for _, idx := range w.sel[si : si+k] {
			off := pos + int64(idx)*storage.EntryBytes
			layer.Neighbors = append(layer.Neighbors, leU32(w.buf[off:]))
		}
		si += k
	}
	return nil
}

// issue drives the planned reads through the worker's ring. With the
// asynchronous pipeline (paper Fig 3b) it keeps preparing and
// submitting further requests while earlier completions drain; the
// synchronous ablation waits for every in-flight request before
// staging more.
//
// Transient results are absorbed here rather than failing the batch:
// -EINTR/-EAGAIN resubmit the request verbatim and a short read
// resubmits exactly the remaining byte range (short-read prefixes are
// kept — they may split an entry mid-way, which byte-granular
// resubmission handles). Each request has a bounded retry budget
// (Config.MaxIORetries); exhaustion, or any non-retryable errno,
// surfaces as a structured *IOError.
//
// A failed batch may leave requests in flight; they are quarantined
// here — their completions drained and discarded — before the error is
// surfaced, because a stale CQE harvested by the NEXT batch would be
// routed by its ID into that batch's request table: silent buffer and
// accounting corruption. If the drain itself fails the worker is
// marked broken and refuses further batches.
func (w *Worker) issue(runs []ioRun, buf []byte) error {
	err := w.issueReads(runs, buf)
	if err != nil {
		w.quarantine()
	}
	return err
}

// quarantine harvests and discards the completions of requests still
// in flight after a failed batch. A ring that errors, or stops
// producing completions it owes, cannot be proven empty — the worker
// is marked broken so SampleBatch refuses to reuse it.
func (w *Worker) quarantine() {
	for w.inflight > 0 {
		cqes, err := w.ring.Wait(w.inflight)
		if err != nil || len(cqes) == 0 {
			w.ringFailed = true
			break
		}
		w.inflight -= len(cqes)
		w.stats.StaleDrained += int64(len(cqes))
	}
	if w.ringFailed {
		w.broken = true
	}
}

// issueReads is issue's submission/completion loop. On error return,
// w.inflight counts exactly the requests still in flight in the ring
// (already-harvested completions are accounted before processing), and
// w.ringFailed records whether the ring itself failed — the state
// quarantine needs to clean up safely.
func (w *Worker) issueReads(runs []ioRun, buf []byte) error {
	async := w.s.cfg.AsyncPipeline
	maxRetries := w.s.cfg.MaxIORetries
	if cap(w.reqs) < len(runs) {
		w.reqs = make([]ioReq, len(runs))
	}
	w.reqs = w.reqs[:len(runs)]
	w.retryQ = w.retryQ[:0]
	next, completed := 0, 0
	for completed < len(runs) {
		staged := 0
		// Resubmissions first: their buffer ranges block layer decode.
		for len(w.retryQ) > 0 {
			id := w.retryQ[0]
			rq := &w.reqs[id]
			if !w.ring.PrepRead(uint64(id), rq.off, buf[rq.bufPos:rq.bufPos+rq.remain]) {
				break
			}
			w.retryQ = w.retryQ[1:]
			staged++
		}
		if len(w.retryQ) == 0 {
			for next < len(runs) {
				r := &runs[next]
				w.reqs[next] = ioReq{
					off:    r.entryStart * storage.EntryBytes,
					bufPos: r.bufPos,
					remain: int64(r.entries) * storage.EntryBytes,
				}
				rq := &w.reqs[next]
				if !w.ring.PrepRead(uint64(next), rq.off, buf[rq.bufPos:rq.bufPos+rq.remain]) {
					break
				}
				next++
				staged++
			}
		}
		if staged > 0 {
			if _, err := w.ring.Submit(); err != nil {
				// Unknown how many staged requests were published; the
				// ring cannot be proven empty again.
				w.ringFailed = true
				return err
			}
			w.inflight += staged
		}
		min := 1
		if !async {
			min = w.inflight
		}
		cqes, err := w.ring.Wait(min)
		if err != nil {
			w.ringFailed = true
			return err
		}
		// Everything Wait returned has left the ring, whether or not the
		// loop below errors out mid-way — account for it up front so
		// quarantine sees the true in-flight count.
		w.inflight -= len(cqes)
		for _, c := range cqes {
			rq := &w.reqs[c.ID]
			switch {
			case c.Res < 0:
				errno := syscall.Errno(-c.Res)
				if !transientErrno(errno) {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, Errno: errno}
				}
				w.stats.TransientErrs++
				if rq.attempts >= maxRetries {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, Errno: errno}
				}
				rq.attempts++
				w.stats.Retries++
				w.retryQ = append(w.retryQ, int(c.ID))
			case int64(c.Res) > rq.remain:
				return fmt.Errorf("core: overlong read at offset %d: got %d bytes, want %d",
					rq.off, c.Res, rq.remain)
			case int64(c.Res) == rq.remain:
				w.stats.Reads++
				w.stats.BytesRead += int64(c.Res)
				completed++
			default:
				// Short read: the prefix is valid — advance the request
				// window and resubmit only the tail.
				w.stats.ShortReads++
				w.stats.BytesRead += int64(c.Res)
				rq.off += int64(c.Res)
				rq.bufPos += int64(c.Res)
				rq.remain -= int64(c.Res)
				if rq.attempts >= maxRetries {
					return &IOError{Offset: rq.off, Bytes: rq.remain, Attempts: rq.attempts, ShortRead: true}
				}
				rq.attempts++
				w.stats.Retries++
				w.retryQ = append(w.retryQ, int(c.ID))
			}
		}
		// Stall guard: with nothing staged, nothing in flight and no
		// completions drained, the next iteration would replay this one
		// verbatim — a ring violating the never-refuse-while-idle
		// contract must surface as an error, not an infinite spin.
		if staged == 0 && w.inflight == 0 && len(cqes) == 0 {
			w.ringFailed = true
			return fmt.Errorf("core: %d of %d reads complete, %d awaiting retry: %w",
				completed, len(runs), len(w.retryQ), ErrRingStalled)
		}
	}
	return nil
}

// copyCached lands every cache-served byte range in the (now sized)
// layer buffer. Cached ranges and planned runs are disjoint, so order
// relative to issue does not matter.
func (w *Worker) copyCached() {
	for _, cp := range w.cachedPicks {
		copy(w.buf[cp.bufPos:], cp.src)
	}
}

func grow(buf []byte, n int64) []byte {
	if int64(cap(buf)) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/storage.EntryBytes)
	for i := range out {
		out[i] = leU32(b[i*storage.EntryBytes:])
	}
	return out
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
