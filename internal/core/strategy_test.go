package core

import (
	"slices"
	"strings"
	"testing"

	"ringsampler/internal/sample"
	"ringsampler/internal/uring"
)

// TestStrategyCrossBackendConformance extends the conformance matrix
// with the strategy axis: for every strategy, one fixed plan must
// yield byte-identical batches through sim, pool, fault-wrapped and
// cache-enabled variants, and real io_uring when available. The
// uniform row doubles as the refactor gate — its reference is also
// checked against the engine's digest elsewhere, so a Strategy
// extraction that moved a single byte would fail here first.
func TestStrategyCrossBackendConformance(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 128)
	nasty := uring.FaultPlan{Seed: 200, ShortReadRate: 0.2, TransientRate: 0.1, RejectRate: 0.15, DelayRate: 0.25, MaxDelay: 5}

	for _, strat := range StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Seed = 42
			cfg.RingSize = 32
			cfg.Strategy = strat
			ref := sampleOnce(t, ds, cfg, uring.BackendSim, targets)
			if ref.TotalSampled() == 0 {
				t.Fatalf("strategy %s sampled nothing", strat)
			}

			type confCase struct {
				name    string
				backend uring.Backend
				wrap    func(uring.Ring, int) (uring.Ring, error)
				cache   int64
			}
			cases := []confCase{
				{"pool", uring.BackendPool, nil, 0},
				{"fault-pool-nasty", uring.BackendPool, faultWrap(nasty), 0},
				{"cache-pool", uring.BackendPool, nil, 48 << 10},
				{"cache-fault-sim-nasty", uring.BackendSim, faultWrap(nasty), 48 << 10},
			}
			if uring.Probe().Ring {
				cases = append(cases, confCase{"io_uring", uring.BackendIOURing, nil, 0})
			}
			for _, c := range cases {
				cc := cfg
				cc.WrapRing = c.wrap
				cc.CacheBudgetBytes = c.cache
				got := sampleOnce(t, ds, cc, c.backend, targets)
				assertBatchesEqual(t, ref, got, strat+"/"+c.name)
			}
		})
	}
}

// TestStrategyThreadInvariance is the determinism contract on the
// strategy axis: every strategy's per-batch epoch digest stream must
// be bit-identical at Threads = 1, 2 and 4, because each batch reseeds
// from Mix(seed, batchIndex) regardless of which worker runs it.
// check.sh and CI run this (with the uniform invariance suite) before
// everything else so a strategy that sneaks worker-local state into
// its draws fails loudly and early.
func TestStrategyThreadInvariance(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 300)
	for _, strat := range StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			var ref []uint64
			for _, th := range []int{1, 2, 4} {
				cfg := DefaultConfig()
				cfg.Seed = 13
				cfg.BatchSize = 32
				cfg.Threads = th
				cfg.Strategy = strat
				s, err := New(ds, cfg, uring.BackendPool)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.RunEpoch(targets, nil)
				if err != nil {
					t.Fatalf("Threads=%d: %v", th, err)
				}
				if st.Sampled == 0 {
					t.Fatalf("Threads=%d: epoch sampled nothing", th)
				}
				if ref == nil {
					ref = st.Digests
				} else if !slices.Equal(ref, st.Digests) {
					t.Fatalf("Threads=%d: digests diverge from Threads=1", th)
				}
			}
		})
	}
}

// TestStrategyBatchOptsOverride: BatchOpts.Strategy overrides the
// sampler-level default per batch — a uniform-configured sampler asked
// for a walk batch must produce exactly what a walk-configured sampler
// produces from the same seed, and the next (non-override) batch must
// be plain uniform again.
func TestStrategyBatchOptsOverride(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 64)
	cfg := DefaultConfig()
	cfg.Seed = 9
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const seed = 555
	got, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: seed, Strategy: StrategyWalk})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := cfg
	wcfg.Strategy = StrategyWalk
	ws, err := New(ds, wcfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	ww, err := ws.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ww.Close()
	want, err := ww.SampleBatchSeeded(targets, seed)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, want, got, "walk-override/walk-config")

	// The override is per batch, not sticky.
	after, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: seed, Strategy: StrategyUniform})
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, uni, after, "post-override/uniform")
	if after.Digest() == got.Digest() {
		t.Fatal("walk override leaked into the following uniform batch")
	}

	if _, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: seed, Strategy: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown per-batch strategy: err = %v, want error naming it", err)
	}
}

// TestConfigRejectsUnknownStrategy: validation satellite for the new
// knob — the error must name the known strategies.
func TestConfigRejectsUnknownStrategy(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Strategy = "stratified"
	_, err := New(ds, cfg, uring.BackendSim)
	if err == nil {
		t.Fatal("unknown Config.Strategy accepted")
	}
	if !strings.Contains(err.Error(), "stratified") || !strings.Contains(err.Error(), StrategyWeighted) {
		t.Fatalf("error %q names neither the bad strategy nor the known ones", err)
	}
	if !ValidStrategy("") || !ValidStrategy(StrategyWalk) || ValidStrategy("stratified") {
		t.Fatal("ValidStrategy disagrees with the registry")
	}
}

// TestWalkShape pins the walk strategy's structural contract: each
// layer draws exactly one hop per frontier node (zero-degree nodes
// terminate their walk), and the next frontier is the raw hop set —
// layer l+1's targets equal layer l's neighbors verbatim, duplicates
// and all, so colliding walks keep independent continuations.
func TestWalkShape(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Strategy = StrategyWalk
	cfg.Fanouts = []int{20, 15, 10} // values ignored: one hop per node per layer
	targets := testTargets(ds, 128)
	b := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	if len(b.Layers) != len(cfg.Fanouts) {
		t.Fatalf("walk produced %d layers, want %d", len(b.Layers), len(cfg.Fanouts))
	}
	for li := range b.Layers {
		l := &b.Layers[li]
		if len(l.Neighbors) > len(l.Targets) {
			t.Fatalf("layer %d drew %d hops for %d walkers — more than one hop per node", li, len(l.Neighbors), len(l.Targets))
		}
		for i := range l.Targets {
			if picks := l.Starts[i+1] - l.Starts[i]; picks > 1 {
				t.Fatalf("layer %d node %d drew %d hops, want ≤ 1", li, i, picks)
			}
		}
		if li > 0 {
			prev := b.Layers[li-1].Neighbors
			if !slices.Equal(l.Targets, prev) {
				t.Fatalf("layer %d targets are not layer %d's raw hop set — walk multiplicity lost", li, li-1)
			}
		}
	}
	// The workload must actually produce colliding walks for the
	// multiplicity check above to mean anything.
	deepest := b.Layers[len(b.Layers)-1].Targets
	uniq := sample.SortDedup(append([]uint32(nil), deepest...))
	if len(uniq) == len(deepest) {
		t.Log("no walk collisions in the deepest layer — multiplicity untested on this workload")
	}
}

// TestWeightedDiverges: the weighted strategy must actually bias the
// draws — same plan, different digests than uniform — while drawing
// from the same sample space (only true neighbors, which
// assertBatchesEqual-style shape checks and the engine's offset reads
// already enforce).
func TestWeightedDiverges(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	targets := testTargets(ds, 128)
	uni := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	wcfg := cfg
	wcfg.Strategy = StrategyWeighted
	wtd := sampleOnce(t, ds, wcfg, uring.BackendPool, targets)
	if uni.Digest() == wtd.Digest() {
		t.Fatal("weighted batch is byte-identical to uniform — the alias path never ran")
	}
	if wtd.TotalSampled() == 0 {
		t.Fatal("weighted batch sampled nothing")
	}
}

// TestBuildAliasSet checks the weighted strategy's memory rule on a
// real generated graph: tables exist, the tabled set is exactly the
// deterministic first-fit selection over the degree-first order,
// charges stay within the node-proportional budget, and every slot is
// a valid probability/alias pair.
func TestBuildAliasSet(t *testing.T) {
	ds := testDataset(t)
	set, err := buildAliasSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.tables) == 0 {
		t.Fatal("alias build tabled nothing on a 30k-edge graph")
	}
	budget := int64(aliasBytesPerNode) * ds.NumNodes()
	charged := set.bytes + int64(len(set.tables))*aliasNodeOverheadBytes
	if charged > budget {
		t.Fatalf("alias tables charge %d bytes, budget is %d", charged, budget)
	}
	for v := range set.tables {
		st, en := ds.Range(v)
		deg := en - st
		if deg <= 1 {
			t.Fatalf("node %d tabled with degree %d — tables only pay off above degree 1", v, deg)
		}
		tab := set.tables[v]
		if int64(len(tab.prob)) != deg || int64(len(tab.alias)) != deg {
			t.Fatalf("node %d: table size %d/%d, want %d", v, len(tab.prob), len(tab.alias), deg)
		}
		for i := range tab.prob {
			if tab.prob[i] < 0 || tab.prob[i] > 1 {
				t.Fatalf("node %d slot %d: prob %v outside [0,1]", v, i, tab.prob[i])
			}
			if tab.alias[i] < 0 || int64(tab.alias[i]) >= deg {
				t.Fatalf("node %d slot %d: alias %d outside [0,%d)", v, i, tab.alias[i], deg)
			}
		}
	}
	// The tabled set must be exactly the documented selection:
	// degree-first (ties by ascending id), first-fit against the
	// node-proportional budget, candidates of degree ≤ 1 excluded. The
	// test graph's biggest hub outweighs the entire budget, so this also
	// proves a misfit is skipped rather than ending selection.
	type cand struct {
		id  uint32
		deg int64
	}
	var cands []cand
	for v := int64(0); v < ds.NumNodes(); v++ {
		st, en := ds.Range(uint32(v))
		if deg := en - st; deg > 1 {
			cands = append(cands, cand{uint32(v), deg})
		}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		if a.deg != b.deg {
			if a.deg > b.deg {
				return -1
			}
			return 1
		}
		if a.id < b.id {
			return -1
		}
		return 1
	})
	var used int64
	want := make(map[uint32]bool)
	skippedMisfit := false
	for _, c := range cands {
		cost := c.deg*aliasSlotBytes + aliasNodeOverheadBytes
		if used+cost > budget {
			skippedMisfit = true
			continue
		}
		used += cost
		want[c.id] = true
	}
	if !skippedMisfit {
		t.Fatal("test graph has no over-budget hub — the first-fit skip path went unexercised")
	}
	if len(want) != len(set.tables) {
		t.Fatalf("tabled %d nodes, first-fit reference selects %d", len(set.tables), len(want))
	}
	for v := range set.tables {
		if !want[v] {
			t.Fatalf("node %d tabled but not in the first-fit reference selection", v)
		}
	}

	// A second build must be identical — the tabled set and every slot
	// are a pure function of the dataset (weighted determinism hinges
	// on this).
	again, err := buildAliasSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.tables) != len(set.tables) || again.bytes != set.bytes {
		t.Fatalf("rebuild disagrees: %d/%d tables, %d/%d bytes", len(again.tables), len(set.tables), again.bytes, set.bytes)
	}
	for v, tab := range set.tables {
		tab2, ok := again.tables[v]
		if !ok || !slices.Equal(tab.prob, tab2.prob) || !slices.Equal(tab.alias, tab2.alias) {
			t.Fatalf("rebuild disagrees on node %d's table", v)
		}
	}
}

// TestBuildAliasDistribution: drawing through a Vose table must
// reproduce the weights empirically — 3:2:1 weights over 60k draws
// land within 2% of their expected shares.
func TestBuildAliasDistribution(t *testing.T) {
	weights := []float64{3, 2, 1}
	tab := buildAlias(weights)
	rng := sample.NewRNG(77)
	const draws = 60_000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		idx := rng.Intn(len(weights))
		if rng.Float64() >= tab.prob[idx] {
			idx = int(tab.alias[idx])
		}
		counts[idx]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / sum
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("slot %d drawn with frequency %.4f, want %.4f ± 0.02", i, got, want)
		}
	}
}
