package core

import (
	"fmt"

	"ringsampler/internal/sample"
)

// Shard-mode sampling (DESIGN.md §12).
//
// A batch's draw stream is one rolling RNG sequence: within a chunk the
// generator threads across every frontier node of a layer and then into
// the next layer. Splitting a graph by node range therefore cannot
// split the stream — every shard participating in a layer must replay
// the WHOLE frontier's draws, because the number of values a node
// consumes depends only on its degree (global offset index, present on
// every shard), never on its bytes. A shard runs the ordinary planner
// over the full frontier, consuming the identical stream, and performs
// I/O only for the nodes it owns; the spans of non-owned nodes are
// zero-filled and the router overlays them with the owning shard's
// bytes. The router threads the RNG state (captured with
// sample.RNG.State) from layer to layer across the scatter/gather
// boundary, so N shards and one node consume bit-identical streams and
// the reassembled batch digests match exactly.

// LayerParams parameterizes one SampleLayer call.
type LayerParams struct {
	// Layer is the zero-based layer index (strategies may vary their
	// fanout by depth, e.g. walk's LayerFanout ≡ 1).
	Layer int
	// Fanout is the request's per-layer sample count. Must be positive.
	Fanout int
	// Strategy names the draw strategy; empty falls through to the
	// engine default.
	Strategy string
	// RNGState is the raw generator state to resume from: for layer 0,
	// sample.NewRNG(Mix(seed, chunk)).State(); for deeper layers, the
	// state the previous layer's shards reported back.
	RNGState uint64
}

// SampleLayer samples one layer of a chunk from the given frontier,
// resuming the chunk's draw stream at p.RNGState, and returns the layer
// plus the stream state after it. On a shard dataset, non-owned
// frontier nodes consume their draws but their Neighbors spans are
// zero-filled (see the package comment above). Works identically on an
// unsharded dataset, where every span is real — that is what lets a
// single Local engine stand in for a whole partition.
func (w *Worker) SampleLayer(frontier []uint32, p LayerParams) (*Layer, uint64, error) {
	if w.broken {
		return nil, 0, fmt.Errorf("core: worker %d: %w", w.id, ErrWorkerBroken)
	}
	if p.Fanout <= 0 {
		return nil, 0, fmt.Errorf("core: layer fanout %d must be positive", p.Fanout)
	}
	if !w.s.cfg.OffsetSampling {
		return nil, 0, fmt.Errorf("core: SampleLayer requires OffsetSampling")
	}
	strat, err := w.s.strategyFor(p.Strategy)
	if err != nil {
		return nil, 0, err
	}
	w.rng.Restore(p.RNGState)
	fan := strat.LayerFanout(p.Layer, p.Fanout)
	w.frontier = append(w.frontier[:0], frontier...)
	layer := new(Layer)
	if err := w.sampleLayerOffset(layer, fan, strat); err != nil {
		return nil, 0, err
	}
	return layer, w.rng.State(), nil
}

// ChunkSeedState returns the RNG state a chunk's draw stream starts
// from — the state SampleBatchOpts's reseed would produce for the same
// per-chunk seed. The router feeds it into the first layer's
// LayerParams.RNGState.
func ChunkSeedState(seed uint64) uint64 {
	r := sample.NewRNG(seed)
	return r.State()
}

// NextFrontierFor builds the next layer's frontier from a sampled layer
// for the named strategy, reusing dst's storage. It mirrors the
// between-layer step of sampleBatch; every strategy's frontier rule is
// a pure function of the layer (sort+dedup or verbatim), so the router
// can run it without shard state.
func NextFrontierFor(name string, l *Layer, dst []uint32) ([]uint32, error) {
	switch name {
	case "", StrategyUniform:
		return uniformStrategy{}.NextFrontier(l, dst), nil
	case StrategyWeighted:
		return weightedStrategy{}.NextFrontier(l, dst), nil
	case StrategyWalk:
		return walkStrategy{}.NextFrontier(l, dst), nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", name)
	}
}

// FeatNodeUnion returns the batch's feature node set — layer-0 targets
// plus every layer's sampled neighbors, sorted and deduplicated —
// exactly the set fetchBatchFeatures computes, so a router-assembled
// batch requests the same vectors in the same order as a single node.
func FeatNodeUnion(b *Batch) []uint32 {
	var nodes []uint32
	for li := range b.Layers {
		if li == 0 {
			nodes = append(nodes, b.Layers[li].Targets...)
		}
		nodes = append(nodes, b.Layers[li].Neighbors...)
	}
	return sample.SortDedup(nodes)
}
