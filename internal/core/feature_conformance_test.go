package core

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/uring"
)

// Feature-path conformance: the feature stage rides the same ring
// machinery as the adjacency reads, so it inherits the same contract —
// one fixed workload must yield byte-identical feature payloads through
// every backend, thread count, cache budget, and fast-path knob
// combination, and injected faults must be absorbed by the retry path
// without corrupting a single vector.

const featConfDim = 6

// testFeatureDatasetDir generates the standard conformance dataset with
// a feature file and returns its directory.
func testFeatureDatasetDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := gen.GenerateWith(dir, "tiny", "rmat", 2_000, 30_000, 11, gen.Options{FeatureDim: featConfDim}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// featBatch is one batch's feature payload as observed by an epoch run.
type featBatch struct {
	digest uint64
	nodes  []uint32
	dim    int
	feats  []byte
}

// epochFeaturePayload runs one epoch and captures every batch's digest
// and feature payload (deep-copied — the engine recycles batches).
func epochFeaturePayload(t *testing.T, dir string, cfg Config, be uring.Backend, targets []uint32) []featBatch {
	t.Helper()
	ds := openDS(t, dir, false)
	s, err := New(ds, cfg, be)
	if err != nil {
		t.Fatal(err)
	}
	var out []featBatch
	_, err = s.RunEpoch(targets, func(i int, b *Batch) error {
		out = append(out, featBatch{
			digest: b.Digest(),
			nodes:  append([]uint32(nil), b.FeatNodes...),
			dim:    b.FeatureDim,
			feats:  append([]byte(nil), b.Features...),
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertFeatPayloadsEqual(t *testing.T, ref, got []featBatch, label string) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d batches, reference has %d", label, len(got), len(ref))
	}
	for i := range ref {
		r, g := &ref[i], &got[i]
		if g.digest != r.digest {
			t.Fatalf("%s: batch %d digest %#x, reference %#x", label, i, g.digest, r.digest)
		}
		if g.dim != r.dim {
			t.Fatalf("%s: batch %d feature dim %d, reference %d", label, i, g.dim, r.dim)
		}
		if len(g.nodes) != len(r.nodes) {
			t.Fatalf("%s: batch %d has %d feature nodes, reference %d", label, i, len(g.nodes), len(r.nodes))
		}
		for j := range r.nodes {
			if g.nodes[j] != r.nodes[j] {
				t.Fatalf("%s: batch %d feature node %d is %d, reference %d", label, i, j, g.nodes[j], r.nodes[j])
			}
		}
		if !bytes.Equal(g.feats, r.feats) {
			t.Fatalf("%s: batch %d feature payload differs from reference (%d bytes)", label, i, len(r.feats))
		}
	}
}

// TestFeatureMatrixConformance is the headline matrix: backends (sim,
// pool, real io_uring when available, each also fault-wrapped) × thread
// counts × feature-cache budgets × fast-path knob combinations, all
// asserting byte-identical feature payloads against a single-threaded
// sim reference.
func TestFeatureMatrixConformance(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	base := DefaultConfig()
	base.Seed = 42
	base.RingSize = 32 // small ring so every combo wraps and backpressures
	base.BatchSize = 64
	base.FetchFeatures = true
	targets := testTargets(openDS(t, dir, false), 256)

	refCfg := base
	refCfg.Threads = 1
	ref := epochFeaturePayload(t, dir, refCfg, uring.BackendSim, targets)
	if len(ref) == 0 {
		t.Fatal("reference epoch produced no batches")
	}
	var refFeatBytes int
	for _, b := range ref {
		refFeatBytes += len(b.feats)
		if b.dim != featConfDim || len(b.feats) != len(b.nodes)*featConfDim*4 {
			t.Fatalf("reference batch shape broken: dim %d, %d nodes, %d feature bytes",
				b.dim, len(b.nodes), len(b.feats))
		}
	}
	if refFeatBytes == 0 {
		t.Fatal("reference epoch fetched zero feature bytes")
	}

	backends := []uring.Backend{uring.BackendSim, uring.BackendPool}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}
	mild := uring.FaultPlan{Seed: 100, ShortReadRate: 0.05, TransientRate: 0.03, RejectRate: 0.05, DelayRate: 0.1}
	wraps := []struct {
		name string
		wrap func(uring.Ring, int) (uring.Ring, error)
	}{
		{"clean", nil},
		{"faulty", faultWrap(mild)},
	}
	knobs := []struct {
		name  string
		fixed bool
		depth int
	}{
		{"plain", false, 0},
		{"fixed-depth2", true, 2},
	}

	for _, be := range backends {
		for _, wr := range wraps {
			for _, threads := range []int{1, 4} {
				for _, budget := range []int64{0, 1 << 20} {
					for _, kn := range knobs {
						name := fmt.Sprintf("%s/%s/threads=%d/featcache=%d/%s", be, wr.name, threads, budget, kn.name)
						t.Run(name, func(t *testing.T) {
							cfg := base
							cfg.Threads = threads
							cfg.FeatureCacheBudgetBytes = budget
							cfg.FixedBuffers = kn.fixed
							cfg.Depth = kn.depth
							cfg.WrapRing = wr.wrap
							got := epochFeaturePayload(t, dir, cfg, be, targets)
							assertFeatPayloadsEqual(t, ref, got, name)
						})
					}
				}
			}
		}
	}
}

// featOnlyFaultWrap wraps only each worker's SECOND ring in a fault
// injector. Worker construction wraps the edge ring first and the
// feature ring on the first feature fetch, so an invocation count of
// two per worker isolates the injected faults to the feature file.
func featOnlyFaultWrap(plan uring.FaultPlan) func(uring.Ring, int) (uring.Ring, error) {
	calls := map[int]int{}
	return func(r uring.Ring, workerID int) (uring.Ring, error) {
		calls[workerID]++
		if calls[workerID] == 1 {
			return r, nil // edge ring: untouched
		}
		p := plan
		p.Seed = plan.Seed + uint64(workerID)
		return uring.NewFault(r, p)
	}
}

// TestFeatureFaultRecovery: short reads that split a feature vector
// mid-record, transient errnos, and submission rejections on the
// feature ring alone must all be absorbed by byte-granular resubmission
// — the payload stays identical to the clean run and the shared retry
// counters prove the path was exercised.
func TestFeatureFaultRecovery(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.RingSize = 32
	targets := testTargets(openDS(t, dir, false), 128)

	refW := newFeatWorker(t, dir, cfg, uring.BackendSim)
	refB, err := refW.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(refB.Features) == 0 {
		t.Fatal("reference batch has no feature payload")
	}

	// The feature stride is 24 bytes, so a short-read fraction this high
	// guarantees splits inside a vector, not just between vectors.
	nasty := uring.FaultPlan{Seed: 300, ShortReadRate: 0.3, TransientRate: 0.1, RejectRate: 0.15, DelayRate: 0.2, MaxDelay: 5}
	for _, be := range []uring.Backend{uring.BackendSim, uring.BackendPool} {
		t.Run(string(be), func(t *testing.T) {
			c := cfg
			c.WrapRing = featOnlyFaultWrap(nasty)
			w := newFeatWorker(t, dir, c, be)
			got, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
			if err != nil {
				t.Fatal(err)
			}
			assertBatchesEqual(t, refB, got, string(be))
			if !bytes.Equal(refB.Features, got.Features) {
				t.Fatal("feature payload differs under feature-ring faults")
			}
			if got.Digest() != refB.Digest() {
				t.Fatal("digest differs under feature-ring faults")
			}
			if fs, ok := uring.Faults(w.edge.ring); ok && fs.Total() != 0 {
				t.Fatalf("edge ring saw %d injected faults; the wrap was meant to be feature-only", fs.Total())
			}
			fs, ok := uring.Faults(w.feat.ring)
			if !ok || fs.Total() == 0 {
				t.Fatal("feature ring injected nothing")
			}
			st := w.IOStats()
			if st.Retries == 0 || st.ShortReads == 0 {
				t.Fatalf("fault run recorded retries=%d shortReads=%d; retry path not exercised", st.Retries, st.ShortReads)
			}
			if st.FeatReads == 0 || st.FeatBytesRead == 0 {
				t.Fatalf("feature counters empty: %+v", st)
			}
		})
	}
}

// TestFeatureHardErrorSurfacesAndRecovers: a hard -EIO on every feature
// read fails the batch with a structured *IOError, the quarantine
// leaves the worker reusable for edge-only batches, and a fresh clean
// worker reproduces the reference payload bit for bit.
func TestFeatureHardErrorSurfacesAndRecovers(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	targets := testTargets(openDS(t, dir, false), 64)

	refW := newFeatWorker(t, dir, cfg, uring.BackendSim)
	refB, err := refW.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, be := range []uring.Backend{uring.BackendSim, uring.BackendPool} {
		t.Run(string(be), func(t *testing.T) {
			c := cfg
			c.WrapRing = featOnlyFaultWrap(uring.FaultPlan{Seed: 9, HardErrRate: 1})
			w := newFeatWorker(t, dir, c, be)
			_, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
			var ioe *IOError
			if !errors.As(err, &ioe) {
				t.Fatalf("err = %v (%T), want *IOError", err, err)
			}
			if ioe.Errno != syscall.EIO {
				t.Fatalf("Errno = %v, want EIO", ioe.Errno)
			}
			if w.Broken() {
				t.Fatal("quarantine after a clean drain should not break the worker")
			}
			// Edge-only sampling on the same worker still works: the fault
			// wrap only poisons the feature ring.
			edgeB, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed})
			if err != nil {
				t.Fatalf("edge-only batch after feature failure: %v", err)
			}
			assertBatchesEqual(t, refB, edgeB, "edge-only after feature -EIO")

			clean := newFeatWorker(t, dir, cfg, be)
			got, err := clean.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refB.Features, got.Features) || got.Digest() != refB.Digest() {
				t.Fatal("replacement worker's payload differs from the reference")
			}
		})
	}
}

func newFeatWorker(t *testing.T, dir string, cfg Config, be uring.Backend) *Worker {
	t.Helper()
	s, err := New(openDS(t, dir, false), cfg, be)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestFeatureCacheAdversarialOrder is the feature-path mirror of the
// edge path's adversarial-order regression (PR 4): a run of
// file-adjacent nodes straddling a cache hit must NOT coalesce across
// the hit, because the hit advances the output position without
// appending a run — file adjacency alone would land the second read at
// the wrong buffer offset and overwrite the cached vector's slot.
func TestFeatureCacheAdversarialOrder(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	ds := openDS(t, dir, false)
	stride := ds.FeatureStride()

	// Budget for exactly one cached node: the top-degree hub.
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.FeatureCacheBudgetBytes = stride + 48

	for _, be := range []uring.Backend{uring.BackendSim, uring.BackendPool} {
		t.Run(string(be), func(t *testing.T) {
			s, err := New(ds, cfg, be)
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := s.FeatureCacheInfo(); n != 1 {
				t.Fatalf("budget %d pinned %d nodes, want exactly 1", cfg.FeatureCacheBudgetBytes, n)
			}
			// The cached node is the degree-first winner: max degree, lowest
			// id on ties — recompute it independently of the cache builder.
			hub := uint32(0)
			var hubDeg int64
			for v := int64(0); v < ds.NumNodes(); v++ {
				st, en := ds.Range(uint32(v))
				if d := en - st; d > hubDeg {
					hubDeg, hub = d, uint32(v)
				}
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			// Two file-adjacent uncached nodes straddling the cached hub.
			v := hub + 7
			if int64(v)+1 >= ds.NumNodes() {
				v = 0
			}
			nodes := []uint32{v, hub, v + 1}
			got, err := w.FetchFeatures(nodes)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 0, 3*stride)
			rec := make([]byte, stride)
			for _, n := range nodes {
				if _, err := ds.FeatureReadAt(rec, int64(n)*stride); err != nil {
					t.Fatal(err)
				}
				want = append(want, rec...)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("adversarial order corrupted the payload:\n got %x\nwant %x", got, want)
			}
			st := w.IOStats()
			if st.FeatCacheHits != 1 || st.FeatCacheMisses != 2 {
				t.Fatalf("cache accounting hits=%d misses=%d, want 1/2", st.FeatCacheHits, st.FeatCacheMisses)
			}
		})
	}
}

// TestFeatureDigestBackCompat: a batch sampled without the feature
// stage must keep its pre-feature digest — the digest only folds the
// feature payload when one exists, so every digest recorded by earlier
// PRs is still reproducible.
func TestFeatureDigestBackCompat(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	targets := testTargets(openDS(t, dir, false), 64)

	plainW := newFeatWorker(t, dir, cfg, uring.BackendSim)
	plain, err := plainW.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	w := newFeatWorker(t, dir, cfg, uring.BackendSim)
	withFeats, err := w.SampleBatchOpts(targets, BatchOpts{Fanouts: cfg.Fanouts, Seed: cfg.Seed, Features: true})
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, plain, withFeats, "feature stage must not perturb sampling")
	if plain.Digest() == withFeats.Digest() {
		t.Fatal("feature payload did not fold into the digest")
	}
	stripped := *withFeats
	stripped.FeatNodes, stripped.Features, stripped.FeatureDim = nil, nil, 0
	if stripped.Digest() != plain.Digest() {
		t.Fatal("feature-less digest changed — old recorded digests would no longer reproduce")
	}
}

// TestFetchFeaturesValidation: out-of-range nodes error cleanly, an
// edge-only dataset refuses the feature stage at sampler construction,
// and duplicate inputs each get their own record in input order.
func TestFetchFeaturesValidation(t *testing.T) {
	dir := testFeatureDatasetDir(t)
	ds := openDS(t, dir, false)
	cfg := DefaultConfig()
	w := newFeatWorker(t, dir, cfg, uring.BackendSim)
	if _, err := w.FetchFeatures([]uint32{uint32(ds.NumNodes())}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	stride := int(ds.FeatureStride())
	got, err := w.FetchFeatures([]uint32{5, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3*stride {
		t.Fatalf("3 inputs yielded %d bytes, want %d", len(got), 3*stride)
	}
	if !bytes.Equal(got[:stride], got[stride:2*stride]) {
		t.Fatal("duplicate inputs produced different records")
	}

	// Edge-only dataset: the feature stage is refused up front.
	plainDir := testDatasetDir(t)
	plainDS := openDS(t, plainDir, false)
	bad := DefaultConfig()
	bad.FetchFeatures = true
	if _, err := New(plainDS, bad, uring.BackendSim); err == nil {
		t.Fatal("FetchFeatures accepted for an edge-only dataset")
	}
	bad = DefaultConfig()
	bad.FeatureCacheBudgetBytes = 1 << 20
	if _, err := New(plainDS, bad, uring.BackendSim); err == nil {
		t.Fatal("feature cache budget accepted for an edge-only dataset")
	}
}
