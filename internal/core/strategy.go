package core

import (
	"fmt"
	"sort"

	"ringsampler/internal/sample"
)

// Strategy names accepted by Config.Strategy, BatchOpts.Strategy, the
// serve request body's "strategy" field, and cmd/epoch -strategy. The
// empty string selects StrategyUniform.
const (
	StrategyUniform  = "uniform"
	StrategyWeighted = "weighted"
	StrategyWalk     = "walk"
)

// StrategyNames lists every known strategy, in documentation order.
func StrategyNames() []string {
	return []string{StrategyUniform, StrategyWeighted, StrategyWalk}
}

// ValidStrategy reports whether name names a known sampling strategy.
// The empty string is valid and selects uniform — front ends use this
// to reject unknown names before any work is queued.
func ValidStrategy(name string) bool {
	switch name {
	case "", StrategyUniform, StrategyWeighted, StrategyWalk:
		return true
	}
	return false
}

// Strategy is the pluggable draw stage of the sampling loop (DESIGN.md
// §11): which neighbor-list indices a frontier node contributes, and
// how a layer's sampled neighbors become the next layer's frontier.
// Everything below the draw — run coalescing, the ring pipeline,
// caching, retry/quarantine — is strategy-agnostic, so every strategy
// rides the same I/O path.
//
// Contract: Draw appends exactly its picks for one node and consumes
// the worker RNG only through the rng argument; with per-batch
// Mix(seed, batchIndex) reseeding that makes every strategy's output a
// pure function of (dataset, config, targets, seed) — seed- and
// thread-count-invariant like the uniform baseline. Draw must append
// indices in ascending order (the run planner coalesces adjacent
// picks; an unsorted draw would break the buffer-position invariant).
// Implementations must be safe for concurrent use by multiple workers.
type Strategy interface {
	// Name returns the strategy's registry name.
	Name() string
	// LayerFanout maps the configured fanout of layer `layer` to the
	// number of draws per frontier node (before the degree clamp).
	LayerFanout(layer, fanout int) int
	// Draw appends k neighbor-list indices in [0, deg) for node v to
	// out, ascending, and returns the extended slice. k is already
	// clamped to deg by the caller; deg is always > 0.
	Draw(rng *sample.RNG, v uint32, deg, k int, out []int) []int
	// NextFrontier builds the next layer's target set from l's sampled
	// neighbors into dst[:0] and returns it. l is fully built and must
	// not be modified.
	NextFrontier(l *Layer, dst []uint32) []uint32
}

// uniformStrategy is today's paper-default draw: Floyd's
// without-replacement selection of k of the node's deg entries, sorted
// ascending, with sort+dedup frontier building (paper §2.1). Its RNG
// consumption and output are byte-identical to the pre-Strategy
// engine, which is what keeps every existing digest stable.
type uniformStrategy struct{}

func (uniformStrategy) Name() string                  { return StrategyUniform }
func (uniformStrategy) LayerFanout(_, fanout int) int { return fanout }

func (uniformStrategy) Draw(rng *sample.RNG, _ uint32, deg, k int, out []int) []int {
	base := len(out)
	out = sample.Floyd(rng, deg, k, out)
	sort.Ints(out[base:])
	return out
}

func (uniformStrategy) NextFrontier(l *Layer, dst []uint32) []uint32 {
	dst = append(dst[:0], l.Neighbors...)
	return sample.SortDedup(dst)
}

// walkStrategy samples fixed-length random walks (Het
// RandomWalkSampler-style): every layer draws exactly one uniform next
// hop per frontier node, and the frontier is the raw hop set — no
// dedup, so each walk keeps its own continuation even when walks
// collide on a node. The walk length is the number of configured
// fanout layers; the fanout values themselves are ignored. Zero-degree
// nodes contribute no hop, terminating their walk naturally.
type walkStrategy struct{}

func (walkStrategy) Name() string             { return StrategyWalk }
func (walkStrategy) LayerFanout(_, _ int) int { return 1 }

func (walkStrategy) Draw(rng *sample.RNG, _ uint32, deg, _ int, out []int) []int {
	return append(out, rng.Intn(deg))
}

func (walkStrategy) NextFrontier(l *Layer, dst []uint32) []uint32 {
	return append(dst[:0], l.Neighbors...)
}

// weightedStrategy draws neighbors with replacement, biased by
// neighbor degree (Dist-GNN probs-style importance sampling): entry i
// of node v's list is picked proportionally to deg(list[i])+1. Hub
// nodes carry a precomputed alias table; the long tail falls back to
// uniform draws (see buildAliasSet for the memory rule). The frontier
// build is the uniform sort+dedup.
type weightedStrategy struct {
	tables *aliasSet
}

func (weightedStrategy) Name() string                  { return StrategyWeighted }
func (weightedStrategy) LayerFanout(_, fanout int) int { return fanout }

func (s weightedStrategy) Draw(rng *sample.RNG, v uint32, deg, k int, out []int) []int {
	base := len(out)
	if t, ok := s.tables.lookup(v); ok {
		for i := 0; i < k; i++ {
			idx := rng.Intn(deg)
			if rng.Float64() >= t.prob[idx] {
				idx = int(t.alias[idx])
			}
			out = append(out, idx)
		}
	} else if s.tables.isPhantom(v) {
		// Shard mode: v is tabled on its owning shard, so consume the
		// same two variates per pick to keep the chunk stream aligned;
		// the placeholder picks are never read (the node is non-owned,
		// its span is zero-filled and overlaid by the router).
		for i := 0; i < k; i++ {
			rng.Intn(deg)
			rng.Float64()
			out = append(out, 0)
		}
	} else {
		// Untabled (tail) nodes: their neighbors' degrees are
		// near-uniform on skewed graphs, so a uniform draw is the
		// documented approximation — and it keeps memory node-
		// proportional instead of edge-proportional.
		for i := 0; i < k; i++ {
			out = append(out, rng.Intn(deg))
		}
	}
	sort.Ints(out[base:])
	return out
}

func (weightedStrategy) NextFrontier(l *Layer, dst []uint32) []uint32 {
	dst = append(dst[:0], l.Neighbors...)
	return sample.SortDedup(dst)
}

// strategyFor resolves a strategy name for one batch: the sampler's
// pre-resolved default for "" or the configured name, a lazily built
// (and cached) strategy otherwise. Weighted construction reads the
// edge file, so per-name results are memoized under a lock; the hit
// path after first use is one map lookup.
func (s *Sampler) strategyFor(name string) (Strategy, error) {
	if name == "" {
		name = s.cfg.Strategy
	}
	if name == "" || (s.defStrat != nil && name == s.defStrat.Name()) {
		return s.defStrat, nil
	}
	s.stratMu.Lock()
	defer s.stratMu.Unlock()
	if st, ok := s.strats[name]; ok {
		return st, nil
	}
	st, err := s.buildStrategy(name)
	if err != nil {
		return nil, err
	}
	if s.strats == nil {
		s.strats = make(map[string]Strategy)
	}
	s.strats[name] = st
	return st, nil
}

// buildStrategy constructs one strategy by name. The weighted build is
// the only expensive case: it scans the offset index and reads hub
// neighbor lists to assemble alias tables.
func (s *Sampler) buildStrategy(name string) (Strategy, error) {
	switch name {
	case "", StrategyUniform:
		return uniformStrategy{}, nil
	case StrategyWalk:
		return walkStrategy{}, nil
	case StrategyWeighted:
		tables, err := buildAliasSet(s.ds)
		if err != nil {
			return nil, fmt.Errorf("core: build weighted alias tables: %w", err)
		}
		return weightedStrategy{tables: tables}, nil
	default:
		return nil, fmt.Errorf("core: unknown sampling strategy %q (known: %v)", name, StrategyNames())
	}
}
