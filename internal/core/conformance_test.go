package core

import (
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"

	"ringsampler/internal/uring"
)

// Cross-backend conformance: one fixed sampling plan (dataset, config,
// seed, targets) must yield byte-identical sampled neighborhoods
// through every ring backend — sim, pool, fault-wrapped variants of
// both, and real io_uring when the environment supports it. This
// executes the "all backends implement the same ring contract"
// invariant end to end: the sample set is a property of (seed, worker
// id) alone, and injected faults must be absorbed by the retry path
// without corrupting a single byte.

// faultWrap returns a WrapRing hook injecting the given plan, with the
// seed varied per worker so workers see independent fault streams.
func faultWrap(plan uring.FaultPlan) func(r uring.Ring, workerID int) (uring.Ring, error) {
	return func(r uring.Ring, workerID int) (uring.Ring, error) {
		p := plan
		p.Seed = plan.Seed + uint64(workerID)
		return uring.NewFault(r, p)
	}
}

func TestCrossBackendConformance(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.RingSize = 32 // small ring so every backend wraps and backpressures
	targets := testTargets(ds, 128)
	ref := sampleOnce(t, ds, cfg, uring.BackendSim, targets)
	if ref.TotalSampled() == 0 {
		t.Fatal("reference plan sampled nothing")
	}

	// The injected transient-error rate is ≥1% by design (acceptance
	// bar); the nasty plan goes far beyond it.
	mild := uring.FaultPlan{Seed: 100, ShortReadRate: 0.03, TransientRate: 0.02, RejectRate: 0.05, DelayRate: 0.1}
	nasty := uring.FaultPlan{Seed: 200, ShortReadRate: 0.2, TransientRate: 0.1, RejectRate: 0.15, DelayRate: 0.25, MaxDelay: 5}

	type confCase struct {
		name    string
		backend uring.Backend
		wrap    func(uring.Ring, int) (uring.Ring, error)
		cache   int64
	}
	cases := []confCase{
		{"pool", uring.BackendPool, nil, 0},
		{"fault-sim-mild", uring.BackendSim, faultWrap(mild), 0},
		{"fault-sim-nasty", uring.BackendSim, faultWrap(nasty), 0},
		{"fault-pool-mild", uring.BackendPool, faultWrap(mild), 0},
		{"fault-pool-nasty", uring.BackendPool, faultWrap(nasty), 0},
		// Hot-neighbor cache variants: hits bypass the ring entirely,
		// misses take the (possibly fault-injected) read path — the
		// digest must not move either way.
		{"cache-pool", uring.BackendPool, nil, 48 << 10},
		{"cache-fault-sim-nasty", uring.BackendSim, faultWrap(nasty), 48 << 10},
		{"cache-fault-pool-mild", uring.BackendPool, faultWrap(mild), 48 << 10},
	}
	if uring.Probe().Ring {
		cases = append(cases,
			confCase{"io_uring", uring.BackendIOURing, nil, 0},
			confCase{"fault-io_uring", uring.BackendIOURing, faultWrap(mild), 0},
			confCase{"cache-fault-io_uring", uring.BackendIOURing, faultWrap(mild), 48 << 10},
		)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cc := cfg
			cc.WrapRing = c.wrap
			cc.CacheBudgetBytes = c.cache
			s, err := New(ds, cc, c.backend)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			got, err := w.SampleBatch(targets)
			if err != nil {
				t.Fatal(err)
			}
			assertBatchesEqual(t, ref, got, c.name)
			if c.cache > 0 && w.IOStats().CacheHits == 0 {
				t.Fatal("cache-enabled run recorded no hits — budget too small to prove anything")
			}
			if c.wrap != nil {
				st := w.IOStats()
				fs, _ := uring.Faults(w.edge.ring)
				t.Logf("io stats: %+v; injected: %+v", st, fs)
				if fs.Total() == 0 {
					t.Fatal("fault-wrapped run injected nothing — plan too weak to prove anything")
				}
				if (fs.ShortReads > 0 || fs.Transient > 0) && st.Retries == 0 {
					t.Fatal("faults injected but worker recorded no retries")
				}
			}
		})
	}
}

// TestConformanceFullFetchUnderFaults: the full-neighborhood ablation
// path shares issue(), so it must survive the same fault plan and agree
// with the fault-free offset path.
func TestConformanceFullFetchUnderFaults(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.RingSize = 32
	targets := testTargets(ds, 64)
	ref := sampleOnce(t, ds, cfg, uring.BackendSim, targets)
	full := cfg
	full.OffsetSampling = false
	full.WrapRing = faultWrap(uring.FaultPlan{Seed: 9, ShortReadRate: 0.1, TransientRate: 0.05, RejectRate: 0.1, DelayRate: 0.2})
	got := sampleOnce(t, ds, full, uring.BackendPool, targets)
	assertBatchesEqual(t, ref, got, "offset/full-fetch-under-faults")
}

// TestRetryExhaustionTransient: a ring that only ever returns -EINTR/
// -EAGAIN must burn exactly MaxIORetries retries and surface a
// structured *IOError wrapping the transient errno.
func TestRetryExhaustionTransient(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxIORetries = 3
	cfg.WrapRing = faultWrap(uring.FaultPlan{Seed: 5, TransientRate: 1})
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = w.SampleBatch(testTargets(ds, 8))
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("err = %v (%T), want *IOError", err, err)
	}
	if ioe.Attempts != cfg.MaxIORetries {
		t.Fatalf("Attempts = %d, want %d", ioe.Attempts, cfg.MaxIORetries)
	}
	if !transientErrno(ioe.Errno) {
		t.Fatalf("Errno = %v, want EINTR/EAGAIN", ioe.Errno)
	}
	if !errors.Is(err, ioe.Errno) {
		t.Fatal("IOError does not unwrap to its errno")
	}
}

// TestHardErrorFailsFast: -EIO is not retryable — the worker must fail
// on the first completion with the errno preserved, not burn retries.
func TestHardErrorFailsFast(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.WrapRing = faultWrap(uring.FaultPlan{Seed: 5, HardErrRate: 1})
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = w.SampleBatch(testTargets(ds, 8))
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("err = %v (%T), want *IOError", err, err)
	}
	if ioe.Errno != syscall.EIO || ioe.Attempts != 0 {
		t.Fatalf("IOError = %+v, want first-completion EIO", ioe)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatal("IOError does not unwrap to EIO")
	}
}

// TestRetriesDisabled: MaxIORetries = 0 restores fail-fast semantics
// even for transient results.
func TestRetriesDisabled(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxIORetries = 0
	cfg.WrapRing = faultWrap(uring.FaultPlan{Seed: 5, TransientRate: 1})
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.SampleBatch(testTargets(ds, 8)); err == nil {
		t.Fatal("transient errno succeeded with retries disabled")
	}
}

// TestIOErrorShortReadUnwrap pins the short-read-exhaustion flavor of
// the structured error.
func TestIOErrorShortReadUnwrap(t *testing.T) {
	e := &IOError{Offset: 128, Bytes: 12, Attempts: 8}
	if !errors.Is(e, io.ErrUnexpectedEOF) {
		t.Fatal("short-read IOError does not unwrap to io.ErrUnexpectedEOF")
	}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

// truncRing simulates a file truncated under the reader: every
// successful completion is rewritten to 0 bytes, exactly what pread(2)
// returns at or past EOF. The retry budget must exhaust with the
// short-read context preserved.
type truncRing struct{ uring.Ring }

func (r truncRing) Wait(min int) ([]uring.CQE, error) {
	cqes, err := r.Ring.Wait(min)
	for i := range cqes {
		if cqes[i].Res > 0 {
			cqes[i].Res = 0
		}
	}
	return cqes, err
}

// TestRetryExhaustionShortRead: retry budgets exhausted by short reads
// alone must surface an *IOError that says so — ShortRead set, zero
// Errno, and a message naming the short-read exhaustion — instead of
// the ambiguous zero-Errno error it used to produce.
func TestRetryExhaustionShortRead(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxIORetries = 3
	cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return truncRing{r}, nil
	}
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = w.SampleBatch(testTargets(ds, 8))
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("err = %v (%T), want *IOError", err, err)
	}
	if !ioe.ShortRead {
		t.Fatalf("IOError.ShortRead = false, want true: %+v", ioe)
	}
	if ioe.Errno != 0 {
		t.Fatalf("IOError.Errno = %v, want 0 for short-read exhaustion", ioe.Errno)
	}
	if ioe.Attempts != cfg.MaxIORetries {
		t.Fatalf("Attempts = %d, want %d", ioe.Attempts, cfg.MaxIORetries)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted by short reads") {
		t.Fatalf("error message lost the short-read context: %q", err.Error())
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("short-read IOError does not unwrap to io.ErrUnexpectedEOF")
	}
}

// refuseRing breaks the never-refuse-while-idle contract outright:
// PrepRead always returns false.
type refuseRing struct{ uring.Ring }

func (refuseRing) PrepRead(id uint64, off int64, buf []byte) bool { return false }

// limitRing accepts only the first n PrepReads, then refuses forever —
// combined with an all-transient fault plan it strands the retry queue
// with nothing staged and nothing in flight.
type limitRing struct {
	uring.Ring
	n int
}

func (r *limitRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if r.n <= 0 {
		return false
	}
	if !r.Ring.PrepRead(id, off, buf) {
		return false
	}
	r.n--
	return true
}

// TestRingStallGuard: a contract-breaking ring that refuses to stage
// while idle must surface ErrRingStalled instead of spinning forever —
// both on the fresh-request path and with requests stranded in the
// retry queue.
func TestRingStallGuard(t *testing.T) {
	ds := testDataset(t)
	t.Run("refuses-fresh", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
			return refuseRing{r}, nil
		}
		s, err := New(ds, cfg, uring.BackendSim)
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		_, err = w.SampleBatch(testTargets(ds, 8))
		if !errors.Is(err, ErrRingStalled) {
			t.Fatalf("err = %v, want ErrRingStalled", err)
		}
	})
	t.Run("strands-retries", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
			fr, err := uring.NewFault(r, uring.FaultPlan{Seed: 5, TransientRate: 1})
			if err != nil {
				return nil, err
			}
			return &limitRing{Ring: fr, n: 4}, nil
		}
		s, err := New(ds, cfg, uring.BackendSim)
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		_, err = w.SampleBatch(testTargets(ds, 8))
		if !errors.Is(err, ErrRingStalled) {
			t.Fatalf("err = %v, want ErrRingStalled", err)
		}
	})
}

// TestConfigRejectsNegativeRetries: validation satellite for the new
// knob.
func TestConfigRejectsNegativeRetries(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxIORetries = -1
	if _, err := New(ds, cfg, uring.BackendSim); err == nil {
		t.Fatal("negative MaxIORetries accepted")
	}
}
