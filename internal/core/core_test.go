package core

import (
	"testing"

	"ringsampler/internal/device"
	"ringsampler/internal/gen"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// testDataset generates a small deterministic R-MAT dataset on disk.
func testDataset(t *testing.T) *storage.Dataset {
	t.Helper()
	dir := t.TempDir()
	if _, err := gen.Generate(dir, "tiny", "rmat", 2_000, 30_000, 11); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func testTargets(ds *storage.Dataset, n int) []uint32 {
	r := sample.NewRNG(99)
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32n(uint32(ds.NumNodes()))
	}
	return out
}

func sampleOnce(t *testing.T, ds *storage.Dataset, cfg Config, backend uring.Backend, targets []uint32) *Batch {
	t.Helper()
	s, err := New(ds, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b, err := w.SampleBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertBatchesEqual(t *testing.T, a, b *Batch, label string) {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("%s: layer counts differ: %d vs %d", label, len(a.Layers), len(b.Layers))
	}
	for li := range a.Layers {
		la, lb := &a.Layers[li], &b.Layers[li]
		if len(la.Targets) != len(lb.Targets) || len(la.Neighbors) != len(lb.Neighbors) {
			t.Fatalf("%s: layer %d shapes differ", label, li)
		}
		for i := range la.Targets {
			if la.Targets[i] != lb.Targets[i] {
				t.Fatalf("%s: layer %d target %d differs", label, li, i)
			}
		}
		for i := range la.Starts {
			if la.Starts[i] != lb.Starts[i] {
				t.Fatalf("%s: layer %d start %d differs", label, li, i)
			}
		}
		for i := range la.Neighbors {
			if la.Neighbors[i] != lb.Neighbors[i] {
				t.Fatalf("%s: layer %d neighbor %d differs: %d vs %d",
					label, li, i, la.Neighbors[i], lb.Neighbors[i])
			}
		}
	}
}

// TestWorkerDeterminism: two independent samplers with the same seed
// and worker ID produce bit-identical sample sets.
func TestWorkerDeterminism(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	targets := testTargets(ds, 64)
	a := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	b := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	assertBatchesEqual(t, a, b, "pool/pool")
	if a.TotalSampled() == 0 {
		t.Fatal("deterministic batch sampled nothing")
	}
	// The deterministic sim backend must agree too: the sample set is a
	// property of (seed, worker ID), not of the I/O backend.
	c := sampleOnce(t, ds, cfg, uring.BackendSim, targets)
	assertBatchesEqual(t, a, c, "pool/sim")
	if uring.Probe().Ring {
		d := sampleOnce(t, ds, cfg, uring.BackendIOURing, targets)
		assertBatchesEqual(t, a, d, "pool/io_uring")
	}
}

// TestOffsetFullFetchSameSamples: the ablation baseline draws the same
// fanout indices, so both modes return identical neighbors — they
// differ only in what crosses the storage boundary.
func TestOffsetFullFetchSameSamples(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	targets := testTargets(ds, 64)
	offset := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	full := cfg
	full.OffsetSampling = false
	fetched := sampleOnce(t, ds, full, uring.BackendPool, targets)
	assertBatchesEqual(t, offset, fetched, "offset/full-fetch")
}

// TestDistinctWorkersDiverge: different worker IDs sample independent
// streams.
func TestDistinctWorkersDiverge(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	targets := testTargets(ds, 64)
	w0, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := s.NewWorker(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	b0, err := w0.SampleBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w1.SampleBatch(targets)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for li := range b0.Layers {
		la, lb := b0.Layers[li], b1.Layers[li]
		if len(la.Neighbors) != len(lb.Neighbors) {
			same = false
			break
		}
		for i := range la.Neighbors {
			if la.Neighbors[i] != lb.Neighbors[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("worker 0 and worker 1 drew identical samples")
	}
}

// TestSyncAsyncSameSamples: the pipeline switch changes scheduling,
// never sampling decisions.
func TestSyncAsyncSameSamples(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.RingSize = 16 // small ring so the async path actually wraps
	targets := testTargets(ds, 64)
	a := sampleOnce(t, ds, cfg, uring.BackendPool, targets)
	sync := cfg
	sync.AsyncPipeline = false
	b := sampleOnce(t, ds, sync, uring.BackendPool, targets)
	assertBatchesEqual(t, a, b, "async/sync")
}

func TestSimDeterministic(t *testing.T) {
	ds := testDataset(t)
	sc := SimConfig{
		Config:       DefaultConfig(),
		ScaleDivisor: 1,
		Targets:      256,
		WorkloadSeed: 5,
	}
	a := RunSim(ds, device.NVMe(), sc)
	b := RunSim(ds, device.NVMe(), sc)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("sim errors: %v / %v", a.Err, b.Err)
	}
	if a.ModeledSeconds != b.ModeledSeconds || a.DeviceBytes != b.DeviceBytes ||
		a.DeviceOps != b.DeviceOps || a.Sampled != b.Sampled {
		t.Fatalf("sim not deterministic: %+v vs %+v", a, b)
	}
	if a.Sampled == 0 || a.DeviceBytes == 0 || a.ModeledSeconds <= 0 {
		t.Fatalf("sim produced degenerate result: %+v", a)
	}
}

func TestSimOOM(t *testing.T) {
	ds := testDataset(t)
	sc := SimConfig{
		Config:       DefaultConfig(),
		ScaleDivisor: 20_000, // paper-scale index ≈ 300+ MB
		BudgetBytes:  1 << 20,
		Targets:      16,
		WorkloadSeed: 5,
	}
	r := RunSim(ds, device.NVMe(), sc)
	if !r.OOM || r.Err == nil {
		t.Fatalf("expected OOM under 1 MiB paper-scale budget, got %+v", r)
	}
}

func TestCountRuns(t *testing.T) {
	cases := []struct {
		idxs []int
		want int
	}{
		{nil, 0},
		{[]int{4}, 1},
		{[]int{4, 5, 6}, 1},
		{[]int{6, 4, 5}, 1}, // unsorted input, same runs
		{[]int{1, 3, 5}, 3},
		{[]int{9, 0, 1, 2, 8}, 2},
	}
	for _, c := range cases {
		if got := countRuns(c.idxs); got != c.want {
			t.Fatalf("countRuns(%v) = %d, want %d", c.idxs, got, c.want)
		}
	}
	// Exercise the heap fallback for fanouts beyond the stack buffer.
	big := make([]int, 100)
	for i := range big {
		big[i] = i * 2
	}
	if got := countRuns(big); got != 100 {
		t.Fatalf("countRuns(big) = %d, want 100", got)
	}
}

func TestWorkspaceBytesScaleIndependent(t *testing.T) {
	cfg := DefaultConfig()
	got := WorkspaceBytes(&cfg)
	// 1024 targets × (20 + 20·15 + 20·15·10) entries × 12 bytes.
	want := int64(1024) * (20 + 300 + 3000) * 12
	if got != want {
		t.Fatalf("WorkspaceBytes = %d, want %d", got, want)
	}
}
