package core

import (
	"errors"
	"fmt"
	"io"
	"syscall"
)

// ErrRingStalled marks a ring that violated the never-refuse-while-idle
// contract: the worker had reads outstanding (fresh or awaiting retry),
// nothing staged and nothing in flight, yet the ring refused every
// PrepRead and produced no completions — the iteration could not make
// progress and would have spun forever. Surfaced wrapped with the
// stalled request counts; match with errors.Is.
var ErrRingStalled = errors.New("ring refused to stage while idle")

// ErrWorkerBroken marks a worker whose ring could not be proven empty
// after a failed batch: the ring errored (or stopped producing
// completions it owed) while the worker was quarantining in-flight
// requests, so a reused worker could harvest stale completions whose
// IDs index into a newer batch's request table. Such a worker refuses
// SampleBatch; callers create a fresh worker instead. Match with
// errors.Is.
var ErrWorkerBroken = errors.New("worker ring may hold stale completions from a failed batch; create a new worker")

// IOError is the structured error a worker surfaces when one ring read
// cannot be completed: either a non-retryable errno came back, or the
// bounded retry budget was exhausted by transient results (-EINTR,
// -EAGAIN, short reads). Offset/Bytes describe the byte range that was
// still outstanding when the worker gave up — after partial progress
// through short reads, that is the unread tail, not the original
// request.
type IOError struct {
	// Offset is the edge-file byte offset of the failed read.
	Offset int64
	// Bytes is how many bytes were still outstanding.
	Bytes int64
	// Attempts is how many retries had been spent on the request.
	Attempts int
	// Errno is the final negated-errno result, or 0 when the retry
	// budget was exhausted by short reads alone.
	Errno syscall.Errno
	// ShortRead records that the final completion before giving up was
	// a short read — the device kept delivering truncated prefixes (or
	// zero bytes, as reads at or past EOF do) until the retry budget ran
	// out. It distinguishes a truncated-file/racing-writer condition
	// from an errno failure without overloading Errno with a sentinel.
	ShortRead bool
}

func (e *IOError) Error() string {
	if e.Errno != 0 {
		return fmt.Sprintf("core: read of %d bytes at offset %d failed after %d retries: %v",
			e.Bytes, e.Offset, e.Attempts, e.Errno)
	}
	if e.ShortRead {
		return fmt.Sprintf("core: read of %d bytes at offset %d: retry budget exhausted by short reads after %d attempts (truncated file or racing writer?)",
			e.Bytes, e.Offset, e.Attempts)
	}
	return fmt.Sprintf("core: read of %d bytes at offset %d still short after %d retries",
		e.Bytes, e.Offset, e.Attempts)
}

// Unwrap exposes the underlying cause for errors.Is/As: the final
// errno, or io.ErrUnexpectedEOF for short-read exhaustion.
func (e *IOError) Unwrap() error {
	if e.Errno != 0 {
		return e.Errno
	}
	return io.ErrUnexpectedEOF
}

// IOStats counts a worker's ring-level I/O activity, including the
// retry traffic the fault-injection suite provokes. Counters accumulate
// across batches for the lifetime of the worker.
type IOStats struct {
	// Reads is the number of planned read requests completed in full.
	Reads int64
	// BytesRead is the total bytes successfully read (short-read
	// prefixes included).
	BytesRead int64
	// Retries is the number of resubmissions (transient errnos plus
	// short-read remainders).
	Retries int64
	// ShortReads is how many completions returned fewer bytes than
	// requested.
	ShortReads int64
	// TransientErrs is how many completions returned -EINTR/-EAGAIN.
	TransientErrs int64
	// StaleDrained is how many completions were harvested and discarded
	// while quarantining a failed batch's in-flight requests (the
	// worker-reuse safety path).
	StaleDrained int64
	// CacheHits / CacheMisses count per-node lookups in the
	// hot-neighbor cache (one per non-isolated frontier node per layer;
	// always zero when the cache is disabled). CacheBytes is the bytes
	// served from the cache instead of the device — sampled-entry bytes
	// on the offset path, full list bytes on the full-fetch path.
	CacheHits   int64
	CacheMisses int64
	CacheBytes  int64
	// FeatReads / FeatBytesRead count the feature-file side of the ring
	// traffic: requests completed in full against features.bin and the
	// bytes they delivered. The edge-file counters above never include
	// feature traffic, so the two workloads stay separately attributable;
	// the retry-machinery counters (Retries, ShortReads, TransientErrs,
	// FixedReads, AlignSlackBytes) are shared across both files.
	FeatReads     int64
	FeatBytesRead int64
	// FeatCacheHits / FeatCacheMisses / FeatCacheBytes mirror the
	// neighbor-cache counters for the hot-node feature cache: per-node
	// vector lookups and the feature bytes served from memory instead of
	// the device.
	FeatCacheHits   int64
	FeatCacheMisses int64
	FeatCacheBytes  int64
	// FixedReads is how many requests completed through a registered
	// fixed buffer (IORING_OP_READ_FIXED, or its pool/sim emulation).
	FixedReads int64
	// AlignSlackBytes is the device bytes the O_DIRECT path read beyond
	// the requested entry ranges: alignment rounding plus re-read overlap
	// after aligned resubmission. Device traffic for a worker is
	// BytesRead + AlignSlackBytes.
	AlignSlackBytes int64
	// SubmitSyscalls / WaitSyscalls are the worker ring's kernel
	// crossings (see uring.Syscalls): submission-side enters (or preads
	// for pool/sim) and blocking completion-side enters. Divide by batch
	// count for the paper's syscalls-per-batch metric.
	SubmitSyscalls int64
	WaitSyscalls   int64
	// Active* record which fast-path knobs actually ran for this worker —
	// after capability downgrades — so benchmark output is honest about
	// what was measured. OR-merged by Add.
	ActiveFixed    bool
	ActiveRegFiles bool
	ActiveSQPoll   bool
	ActiveODirect  bool
}

// Add accumulates o's counters into s. The epoch runner uses it to
// merge per-worker stats into EpochStats totals.
func (s *IOStats) Add(o IOStats) {
	s.Reads += o.Reads
	s.BytesRead += o.BytesRead
	s.Retries += o.Retries
	s.ShortReads += o.ShortReads
	s.TransientErrs += o.TransientErrs
	s.StaleDrained += o.StaleDrained
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheBytes += o.CacheBytes
	s.FeatReads += o.FeatReads
	s.FeatBytesRead += o.FeatBytesRead
	s.FeatCacheHits += o.FeatCacheHits
	s.FeatCacheMisses += o.FeatCacheMisses
	s.FeatCacheBytes += o.FeatCacheBytes
	s.FixedReads += o.FixedReads
	s.AlignSlackBytes += o.AlignSlackBytes
	s.SubmitSyscalls += o.SubmitSyscalls
	s.WaitSyscalls += o.WaitSyscalls
	s.ActiveFixed = s.ActiveFixed || o.ActiveFixed
	s.ActiveRegFiles = s.ActiveRegFiles || o.ActiveRegFiles
	s.ActiveSQPoll = s.ActiveSQPoll || o.ActiveSQPoll
	s.ActiveODirect = s.ActiveODirect || o.ActiveODirect
}

// transientErrno reports whether errno is worth retrying: the request
// did not execute and may succeed verbatim. EWOULDBLOCK aliases EAGAIN
// on every platform this builds on.
func transientErrno(e syscall.Errno) bool {
	return e == syscall.EINTR || e == syscall.EAGAIN
}
