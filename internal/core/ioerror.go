package core

import (
	"fmt"
	"io"
	"syscall"
)

// IOError is the structured error a worker surfaces when one ring read
// cannot be completed: either a non-retryable errno came back, or the
// bounded retry budget was exhausted by transient results (-EINTR,
// -EAGAIN, short reads). Offset/Bytes describe the byte range that was
// still outstanding when the worker gave up — after partial progress
// through short reads, that is the unread tail, not the original
// request.
type IOError struct {
	// Offset is the edge-file byte offset of the failed read.
	Offset int64
	// Bytes is how many bytes were still outstanding.
	Bytes int64
	// Attempts is how many retries had been spent on the request.
	Attempts int
	// Errno is the final negated-errno result, or 0 when the retry
	// budget was exhausted by short reads alone.
	Errno syscall.Errno
}

func (e *IOError) Error() string {
	if e.Errno != 0 {
		return fmt.Sprintf("core: read of %d bytes at offset %d failed after %d retries: %v",
			e.Bytes, e.Offset, e.Attempts, e.Errno)
	}
	return fmt.Sprintf("core: read of %d bytes at offset %d still short after %d retries",
		e.Bytes, e.Offset, e.Attempts)
}

// Unwrap exposes the underlying cause for errors.Is/As: the final
// errno, or io.ErrUnexpectedEOF for short-read exhaustion.
func (e *IOError) Unwrap() error {
	if e.Errno != 0 {
		return e.Errno
	}
	return io.ErrUnexpectedEOF
}

// IOStats counts a worker's ring-level I/O activity, including the
// retry traffic the fault-injection suite provokes. Counters accumulate
// across batches for the lifetime of the worker.
type IOStats struct {
	// Reads is the number of planned read requests completed in full.
	Reads int64
	// BytesRead is the total bytes successfully read (short-read
	// prefixes included).
	BytesRead int64
	// Retries is the number of resubmissions (transient errnos plus
	// short-read remainders).
	Retries int64
	// ShortReads is how many completions returned fewer bytes than
	// requested.
	ShortReads int64
	// TransientErrs is how many completions returned -EINTR/-EAGAIN.
	TransientErrs int64
}

// transientErrno reports whether errno is worth retrying: the request
// did not execute and may succeed verbatim. EWOULDBLOCK aliases EAGAIN
// on every platform this builds on.
func transientErrno(e syscall.Errno) bool {
	return e == syscall.EINTR || e == syscall.EAGAIN
}
