package core

import (
	"fmt"

	"ringsampler/internal/device"
	"ringsampler/internal/memctl"
	"ringsampler/internal/sample"
	"ringsampler/internal/simrun"
	"ringsampler/internal/simtime"
	"ringsampler/internal/storage"
)

// SimConfig configures a modeled (virtual-time) RingSampler epoch over
// a scaled dataset. Memory is accounted at paper scale: graph-
// proportional structures are multiplied back up by ScaleDivisor
// before being charged against BudgetBytes, so a "4 GB cgroup" means
// the same thing it does in the paper (DESIGN.md §1).
type SimConfig struct {
	Config       Config
	ScaleDivisor int
	// BudgetBytes is the paper-scale memory budget (0 = unlimited).
	BudgetBytes int64
	// Targets is the number of epoch target nodes, drawn uniformly.
	Targets int
	// WorkloadSeed drives target selection and per-batch sampling.
	WorkloadSeed uint64
}

// SimResult is one modeled epoch.
type SimResult struct {
	Err error
	// OOM is set when Err is a memory-budget failure — the modeled
	// equivalent of the kernel killing the run (Figures 4/5).
	OOM bool
	// ModeledSeconds is the virtual-time epoch duration.
	ModeledSeconds float64
	// DeviceBytes / DeviceOps are what actually crossed the storage
	// boundary under the configured sampling mode.
	DeviceBytes int64
	DeviceOps   int64
	// FullFetchBytes is what fetching complete neighbor lists would
	// have moved for the same frontiers — the read-amplification
	// denominator of the paper's Fig 2 claim.
	FullFetchBytes int64
	// Sampled is the total sampled neighbor entries.
	Sampled int64
	// HighWaterBytes is the paper-scale memory high-water mark.
	HighWaterBytes int64
}

// Seconds returns the modeled epoch time.
func (r SimResult) Seconds() float64 { return r.ModeledSeconds }

// WorkspaceBytes returns the paper-scale bytes of one worker's private
// workspaces: the worst-case per-layer entry counts of the configured
// batch shape, at ~12 bytes per entry across the offset/neighbor/
// target arrays. Workspace size depends only on the batch shape —
// never on graph size — which is the paper's memory-proportionality
// claim.
func WorkspaceBytes(c *Config) int64 {
	per := int64(c.BatchSize)
	var entries int64
	for _, f := range c.Fanouts {
		per *= int64(f)
		entries += per
	}
	return entries * 12
}

// RunSim runs one modeled epoch: the same offset-sampling algorithm as
// the real engine, executed against the in-memory edge array, charging
// virtual time to per-thread pipelines and I/O to the device model.
// Mini-batches distribute round-robin across modeled threads with no
// cross-thread interaction (Fig 3a); the epoch is the slowest thread,
// clamped from below by aggregate device capacity (DESIGN.md's
// virtual-time correctness note).
func RunSim(ds *storage.Dataset, dev *device.Model, sc SimConfig) SimResult {
	cfg := sc.Config
	if err := cfg.validate(); err != nil {
		return SimResult{Err: err}
	}
	if sc.Targets <= 0 {
		return SimResult{Err: fmt.Errorf("core: sim needs a positive target count, got %d", sc.Targets)}
	}
	div := int64(sc.ScaleDivisor)
	if div <= 0 {
		div = 1
	}
	edges, err := ds.LoadEdges()
	if err != nil {
		return SimResult{Err: err}
	}

	// Paper-scale memory accounting: offset index (node-proportional,
	// scaled back up) + per-thread workspaces (batch-shape-
	// proportional, scale-independent).
	budget := memctl.New(sc.BudgetBytes)
	paperNodes := ds.NumNodes() * div
	if err := budget.Charge((paperNodes + 1) * storage.OffsetBytes); err != nil {
		return SimResult{Err: err, OOM: memctl.IsOOM(err)}
	}
	if err := budget.Charge(WorkspaceBytes(&cfg) * int64(cfg.Threads)); err != nil {
		return SimResult{Err: err, OOM: memctl.IsOOM(err)}
	}

	// Epoch workload: uniform targets, split into mini-batches, one
	// batch per thread round-robin.
	numNodes := uint32(ds.NumNodes())
	wl := sample.NewRNG(sample.Mix(sc.WorkloadSeed, 0))
	targets := make([]uint32, sc.Targets)
	for i := range targets {
		targets[i] = wl.Uint32n(numNodes)
	}
	pipes := make([]simtime.Pipeline, cfg.Threads)
	res := SimResult{HighWaterBytes: budget.HighWater()}
	// Threads contend for one device: each active thread sees its
	// share of channels and bandwidth, so queueing shows up inside the
	// per-thread clocks.
	numBatches := (len(targets) + cfg.BatchSize - 1) / cfg.BatchSize
	active := cfg.Threads
	if numBatches < active {
		active = numBatches
	}
	w := batchSim{ds: ds, edges: edges, dev: dev.Share(active), cfg: &cfg}
	for bi := 0; bi*cfg.BatchSize < len(targets); bi++ {
		lo := bi * cfg.BatchSize
		hi := lo + cfg.BatchSize
		if hi > len(targets) {
			hi = len(targets)
		}
		p := &pipes[bi%cfg.Threads]
		w.run(p, targets[lo:hi], sample.Mix(sc.WorkloadSeed, uint64(bi+1)))
	}
	res.DeviceBytes = w.devBytes
	res.DeviceOps = w.devOps
	res.FullFetchBytes = w.fullBytes
	res.Sampled = w.sampled
	var slowest float64
	for i := range pipes {
		pipes[i].WaitIO()
		if t := pipes[i].Now(); t > slowest {
			slowest = t
		}
	}
	res.ModeledSeconds = slowest
	if floor := dev.FloorSeconds(w.devOps, w.devBytes); floor > res.ModeledSeconds {
		res.ModeledSeconds = floor
	}
	return res
}

// batchSim walks mini-batches exactly like the real worker —
// offset-range lookup, Floyd fanout draws, run coalescing, I/O groups
// of RingSize, sort+dedup frontiers — but charges costs instead of
// performing reads.
type batchSim struct {
	ds    *storage.Dataset
	edges []uint32
	dev   *device.Model
	cfg   *Config

	devBytes, devOps, fullBytes, sampled int64

	frontier []uint32
	gathered []uint32
	idxs     []int
}

func (w *batchSim) run(p *simtime.Pipeline, targets []uint32, seed uint64) {
	cfg := w.cfg
	rng := sample.NewRNG(seed)
	w.frontier = append(w.frontier[:0], targets...)
	for _, fanout := range cfg.Fanouts {
		w.gathered = w.gathered[:0]
		// One I/O group accumulates until the ring is full, then the
		// group is submitted: its preparation cost lands on the CPU
		// clock, its device time on the I/O horizon. The synchronous
		// ablation waits out the horizon after every group; the
		// asynchronous pipeline keeps preparing the next group while
		// the previous one completes (Fig 3b).
		var gOps, gNodes int64
		var gBytes, gEntries int64
		flush := func() {
			if gOps == 0 {
				return
			}
			prep := float64(gNodes)*simrun.CPUTargetSec +
				float64(gEntries)*simrun.CPUSampleEntrySec +
				float64(gOps)*simrun.CPUPrepOpSec
			p.Compute(prep)
			p.Dispatch(w.dev.GroupSeconds(gOps, gBytes))
			if !cfg.AsyncPipeline {
				p.WaitIO()
			}
			p.Compute(float64(gOps) * simrun.CPUCompleteOpSec)
			w.devOps += gOps
			w.devBytes += gBytes
			gOps, gNodes, gBytes, gEntries = 0, 0, 0, 0
		}
		for _, v := range w.frontier {
			st, en := w.ds.Range(v)
			deg := int(en - st)
			if deg == 0 {
				continue
			}
			k := fanout
			if deg < k {
				k = deg
			}
			listBytes := int64(deg) * storage.EntryBytes
			w.fullBytes += listBytes
			w.idxs = sample.Floyd(&rng, deg, k, w.idxs[:0])
			// The real worker sorts the picks; for run counting only
			// adjacency matters, and for neighbor identity order is
			// irrelevant (the frontier is re-sorted anyway).
			if cfg.OffsetSampling {
				gOps += int64(countRuns(w.idxs))
				gBytes += int64(k) * storage.EntryBytes
			} else {
				gOps += w.dev.SplitOps(listBytes)
				gBytes += listBytes
			}
			gNodes++
			gEntries += int64(k)
			w.sampled += int64(k)
			for _, idx := range w.idxs {
				w.gathered = append(w.gathered, w.edges[st+int64(idx)])
			}
			if gOps >= int64(cfg.RingSize) {
				flush()
			}
		}
		flush()
		// Layer barrier: the frontier build needs every completion.
		p.WaitIO()
		p.Compute(float64(len(w.gathered)) * simrun.CPUSortEntrySec)
		w.frontier = append(w.frontier[:0], sample.SortDedup(w.gathered)...)
	}
}

// countRuns returns how many coalesced reads a node's picked entry
// indices need: adjacent picks merge into one request.
func countRuns(idxs []int) int {
	if len(idxs) == 0 {
		return 0
	}
	// idxs is in Floyd insertion order; count runs on the sorted view.
	// Fanouts are tiny, so an insertion-sorted copy on the stack is
	// cheaper than sorting the caller's slice twice.
	var buf [64]int
	s := buf[:0]
	if len(idxs) > len(buf) {
		s = make([]int, 0, len(idxs))
	}
	for _, x := range idxs {
		i := len(s)
		s = append(s, x)
		for i > 0 && s[i-1] > x {
			s[i] = s[i-1]
			i--
		}
		s[i] = x
	}
	runs := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1]+1 {
			runs++
		}
	}
	return runs
}
