package core

import (
	"fmt"
	"sort"

	"ringsampler/internal/memctl"
	"ringsampler/internal/storage"
)

// aliasBytesPerNode is the weighted strategy's memory rule: alias
// tables may use at most this many bytes per graph node, total. The
// budget is node-proportional by construction — like the offset index
// and the hot caches, never edge-proportional — so the paper's memory
// claim survives the strategy. 16 B/node tables the hubs of a skewed
// graph comfortably (one slot costs aliasSlotBytes).
const aliasBytesPerNode = 16

// aliasSlotBytes is the memory charge of one alias-table slot: the
// float64 acceptance probability plus the int32 alias index.
const aliasSlotBytes = 12

// aliasNodeOverheadBytes is the per-table bookkeeping charge (index
// map entry plus slice headers), mirroring the hot cache's honesty
// rule: node-proportional structures never hide from the budget.
const aliasNodeOverheadBytes = 48

// aliasTable is one node's Vose alias table over its neighbor list:
// slot i is accepted with probability prob[i], otherwise the draw
// becomes alias[i]. Immutable after build.
type aliasTable struct {
	prob  []float64
	alias []int32
}

// aliasSet holds the weighted strategy's per-node alias tables. Nodes
// without a table (the long tail that did not fit the budget) draw
// uniformly. Immutable after buildAliasSet, so workers consult it with
// no synchronization.
//
// On a shard dataset, phantom records the tabled nodes whose edge
// bytes live on other shards: table SELECTION is a pure function of the
// global offset index (present on every shard), but table CONTENTS need
// the node's neighbor list. A phantom node's draws consume the same two
// variates per pick as a real table — keeping the chunk's RNG stream
// bit-identical across the partition — with the pick values discarded,
// because the owning shard computes the real ones.
type aliasSet struct {
	tables  map[uint32]aliasTable
	phantom map[uint32]struct{}
	bytes   int64 // charged slot bytes (excluding per-node overhead)
}

func (a *aliasSet) lookup(v uint32) (aliasTable, bool) {
	if a == nil {
		return aliasTable{}, false
	}
	t, ok := a.tables[v]
	return t, ok
}

func (a *aliasSet) isPhantom(v uint32) bool {
	if a == nil {
		return false
	}
	_, ok := a.phantom[v]
	return ok
}

// buildAliasSet assembles degree-biased alias tables under the
// node-proportional memory rule: candidates are ordered degree-first
// (ties broken by ascending id, exactly like the hot-neighbor cache)
// and selected first-fit in that order, charging aliasSlotBytes per
// neighbor entry plus aliasNodeOverheadBytes per table against
// memctl.New(aliasBytesPerNode × NumNodes). A candidate that does not
// fit the remaining budget is skipped, not a stopping point — on
// heavily skewed graphs a single mega-hub can outweigh the entire
// budget, and stopping there would table nothing. First-fit over a
// fixed order is still a pure function of the dataset, which is what
// makes weighted draws deterministic across threads, backends and
// runs.
//
// A table's weights are deg(neighbor)+1, read through the offset
// index; the +1 keeps zero-degree neighbors drawable so the weighted
// sample space equals the uniform one.
func buildAliasSet(ds *storage.Dataset) (*aliasSet, error) {
	numNodes := ds.NumNodes()
	if numNodes <= 0 || numNodes > int64(^uint32(0)) {
		return nil, fmt.Errorf("core: node count %d outside uint32 range", numNodes)
	}
	budget := memctl.New(aliasBytesPerNode * numNodes)
	type cand struct {
		id  uint32
		deg int64
	}
	cands := make([]cand, 0, numNodes)
	for v := int64(0); v < numNodes; v++ {
		st, en := ds.Range(uint32(v))
		// Degree-1 lists are skipped: uniform and weighted draws agree
		// there, so a table would spend budget to change nothing but
		// RNG consumption.
		if deg := en - st; deg > 1 {
			cands = append(cands, cand{id: uint32(v), deg: deg})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].deg != cands[j].deg {
			return cands[i].deg > cands[j].deg
		}
		return cands[i].id < cands[j].id
	})

	// First-fit selection under the budget.
	var picked []cand
	for _, c := range cands {
		if err := budget.Charge(c.deg*aliasSlotBytes + aliasNodeOverheadBytes); err != nil {
			if memctl.IsOOM(err) {
				continue
			}
			return nil, err
		}
		picked = append(picked, c)
	}
	// Fill in file order so the build pass reads the edge file
	// sequentially rather than hopping hub to hub.
	sort.Slice(picked, func(i, j int) bool {
		si, _ := ds.Range(picked[i].id)
		sj, _ := ds.Range(picked[j].id)
		return si < sj
	})
	set := &aliasSet{tables: make(map[uint32]aliasTable, len(picked))}
	var listBuf []byte
	weights := make([]float64, 0, 256)
	for _, c := range picked {
		if !ds.Owns(c.id) {
			// Selected under the identical global rule, but the list bytes
			// live on another shard: record a phantom so draws consume the
			// stream without fabricating contents.
			if set.phantom == nil {
				set.phantom = make(map[uint32]struct{})
			}
			set.phantom[c.id] = struct{}{}
			continue
		}
		st, _ := ds.Range(c.id)
		n := c.deg * storage.EntryBytes
		if int64(cap(listBuf)) < n {
			listBuf = make([]byte, n)
		}
		buf := listBuf[:n]
		if _, err := ds.ReadAt(buf, st*storage.EntryBytes); err != nil {
			return nil, fmt.Errorf("core: read node %d list for alias table: %w", c.id, err)
		}
		weights = weights[:0]
		for i := int64(0); i < c.deg; i++ {
			u := leU32(buf[i*storage.EntryBytes:])
			us, ue := ds.Range(u)
			weights = append(weights, float64(ue-us+1))
		}
		set.tables[c.id] = buildAlias(weights)
		set.bytes += c.deg * aliasSlotBytes
	}
	return set, nil
}

// buildAlias runs Vose's algorithm over the weights: O(n), fully
// deterministic (classification order is ascending index, worklists
// are LIFO), yielding a table that draws index i with probability
// weights[i]/sum(weights) from two uniform variates.
func buildAlias(weights []float64) aliasTable {
	n := len(weights)
	t := aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Float round-off strands leftovers in either list; both mean
	// "accept unconditionally".
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}
