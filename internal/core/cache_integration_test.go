package core

import (
	"slices"
	"testing"

	"ringsampler/internal/sample"
	"ringsampler/internal/uring"
)

// Integration tests for the hot-neighbor cache (Config.CacheBudgetBytes):
// the cache may only change where bytes come from, never which bytes are
// sampled. Digests must be identical at every budget, on every backend,
// in both sampling modes, at every thread count — and device traffic
// must shrink monotonically as the budget grows (the prefix-rule
// guarantee).

var cacheBudgets = []int64{0, 16 << 10, 64 << 10, 1 << 30}

// TestCacheDigestInvariance: one batch, every backend × sampling mode ×
// budget, all byte-identical to the cache-off run of the same
// (backend, mode).
func TestCacheDigestInvariance(t *testing.T) {
	ds := testDataset(t)
	backends := []uring.Backend{uring.BackendPool, uring.BackendSim}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}
	targets := testTargets(ds, 128)
	for _, be := range backends {
		for _, offset := range []bool{true, false} {
			var ref *Batch
			for _, budget := range cacheBudgets {
				cfg := DefaultConfig()
				cfg.Seed = 21
				cfg.OffsetSampling = offset
				cfg.CacheBudgetBytes = budget
				s, err := New(ds, cfg, be)
				if err != nil {
					t.Fatal(err)
				}
				w, err := s.NewWorker(0)
				if err != nil {
					t.Fatal(err)
				}
				b, err := w.SampleBatchSeeded(targets, sample.Mix(cfg.Seed, 0))
				if err != nil {
					t.Fatalf("backend=%v offset=%v budget=%d: %v", be, offset, budget, err)
				}
				st := w.IOStats()
				w.Close()
				if budget > 0 && st.CacheHits == 0 {
					t.Fatalf("backend=%v offset=%v budget=%d: no cache hits — budget too small to prove anything", be, offset, budget)
				}
				if budget == 0 && (st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheBytes != 0) {
					t.Fatalf("cache-off run reported cache traffic: %+v", st)
				}
				if ref == nil {
					ref = b
					continue
				}
				assertBatchesEqual(t, ref, b, "cache-off/cache-on")
			}
		}
	}
}

// TestCacheAdversarialTargetOrder pins the byte-identical-cache
// guarantee for arbitrary (unsorted, duplicated) target order.
// Regression: run coalescing used to check only edge-file adjacency, so
// with targets [A, hub, A+1] — A and A+1 file-adjacent non-cached nodes,
// hub cached between them — A+1's picks were merged into A's run and
// written at A's buffer tail, overwriting the hub's cached bytes and
// leaving A+1's slots stale. Layer-0 targets arrive in caller order
// (the sorted deeper-layer frontiers masked this), so the trigger is
// built explicitly: fanout ≥ degree makes every entry of A and A+1 a
// pick, guaranteeing the file-adjacency the old condition mis-merged.
func TestCacheAdversarialTargetOrder(t *testing.T) {
	ds := testDataset(t)
	const fanout = 32
	cfg := DefaultConfig()
	cfg.Seed = 91
	cfg.Fanouts = []int{fanout}
	cfg.CacheBudgetBytes = 16 << 10
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	// A cached hub, and a file-adjacent pair of non-cached nodes with
	// degree in [1, fanout] so all their entries are picked.
	var hub uint32
	foundHub := false
	for v := int64(0); v < ds.NumNodes(); v++ {
		if s.hot.Lookup(uint32(v)) != nil {
			hub = uint32(v)
			foundHub = true
			break
		}
	}
	if !foundHub {
		t.Fatal("budget cached no nodes")
	}
	var a uint32
	foundPair := false
	for v := int64(0); v+1 < ds.NumNodes(); v++ {
		lo, hi := uint32(v), uint32(v+1)
		if s.hot.Lookup(lo) != nil || s.hot.Lookup(hi) != nil {
			continue
		}
		stA, enA := ds.Range(lo)
		stB, enB := ds.Range(hi)
		if degA, degB := enA-stA, enB-stB; degA > 0 && degA <= fanout &&
			degB > 0 && degB <= fanout && enA == stB {
			a = lo
			foundPair = true
			break
		}
	}
	if !foundPair {
		t.Fatal("no file-adjacent non-cached pair with degree ≤ fanout")
	}
	off := cfg
	off.CacheBudgetBytes = 0
	for _, targets := range [][]uint32{
		{a, hub, a + 1},
		{a, hub, a + 1, a, hub}, // duplicates interleaved with the hub
	} {
		w, err := s.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.SampleBatchSeeded(targets, sample.Mix(cfg.Seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		if w.IOStats().CacheHits == 0 {
			t.Fatal("hub target produced no cache hit — scenario does not exercise the hazard")
		}
		w.Close()
		so, err := New(ds, off, uring.BackendSim)
		if err != nil {
			t.Fatal(err)
		}
		wo, err := so.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wo.SampleBatchSeeded(targets, sample.Mix(cfg.Seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		wo.Close()
		assertBatchesEqual(t, want, got, "adversarial-order cache-off/cache-on")
	}
}

// TestCacheMonotoneDeviceBytes: the prefix rule makes a larger budget's
// cached node set a superset of a smaller one's, so for a fixed
// workload, device bytes are non-increasing and cache-served bytes
// non-decreasing in the budget.
func TestCacheMonotoneDeviceBytes(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 256)
	for _, offset := range []bool{true, false} {
		prevDevice := int64(-1)
		prevCached := int64(-1)
		for _, budget := range cacheBudgets {
			cfg := DefaultConfig()
			cfg.Seed = 33
			cfg.OffsetSampling = offset
			cfg.CacheBudgetBytes = budget
			s, err := New(ds, cfg, uring.BackendSim)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.SampleBatchSeeded(targets, sample.Mix(cfg.Seed, 0)); err != nil {
				t.Fatal(err)
			}
			st := w.IOStats()
			w.Close()
			if prevDevice >= 0 {
				if st.BytesRead > prevDevice {
					t.Fatalf("offset=%v budget=%d: device bytes grew %d -> %d", offset, budget, prevDevice, st.BytesRead)
				}
				if st.CacheBytes < prevCached {
					t.Fatalf("offset=%v budget=%d: cache bytes shrank %d -> %d", offset, budget, prevCached, st.CacheBytes)
				}
			}
			prevDevice, prevCached = st.BytesRead, st.CacheBytes
		}
		// The unlimited budget caches the whole edge file: zero device
		// traffic is the fixed point the sweep must reach.
		if prevDevice != 0 {
			t.Fatalf("offset=%v: full-cache run still read %d device bytes", offset, prevDevice)
		}
	}
}

// TestEpochCacheThreadInvariance is the tentpole guarantee at epoch
// scale: per-batch digests are identical across every
// (thread count × cache budget) cell.
func TestEpochCacheThreadInvariance(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 300)
	var ref []uint64
	for _, th := range []int{1, 2, 8} {
		for _, budget := range []int64{0, 32 << 10, 1 << 30} {
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.BatchSize = 32
			cfg.Threads = th
			cfg.CacheBudgetBytes = budget
			s, err := New(ds, cfg, uring.BackendPool)
			if err != nil {
				t.Fatal(err)
			}
			st, err := s.RunEpoch(targets, nil)
			if err != nil {
				t.Fatalf("Threads=%d budget=%d: %v", th, budget, err)
			}
			if budget > 0 && st.IO.CacheHits == 0 {
				t.Fatalf("Threads=%d budget=%d: epoch saw no cache hits", th, budget)
			}
			if ref == nil {
				ref = st.Digests
				continue
			}
			if !slices.Equal(ref, st.Digests) {
				t.Fatalf("Threads=%d budget=%d: digests diverge from Threads=1 cache-off", th, budget)
			}
		}
	}
}

// TestCacheUnderFaults: cache hits bypass the ring, misses ride the
// retry path — a fault-injected, cache-enabled epoch must still equal
// the fault-free cache-off reference byte for byte.
func TestCacheUnderFaults(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 150)
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.BatchSize = 32
	cfg.Threads = 2
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.RunEpoch(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	noisy := cfg
	noisy.Threads = 4
	noisy.CacheBudgetBytes = 48 << 10
	noisy.WrapRing = faultWrap(uring.FaultPlan{Seed: 78, ShortReadRate: 0.1, TransientRate: 0.05, RejectRate: 0.1, DelayRate: 0.2})
	sf, err := New(ds, noisy, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sf.RunEpoch(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ref.Digests, st.Digests) {
		t.Fatal("fault-injected cached epoch digests diverge from fault-free cache-off run")
	}
	if st.IO.CacheHits == 0 || st.IO.Retries == 0 {
		t.Fatalf("scenario too weak: hits=%d retries=%d, want both > 0", st.IO.CacheHits, st.IO.Retries)
	}
}

// TestCacheInfo: the sampler reports what was pinned; a zero budget
// pins nothing, a generous one stays within its memctl accounting.
func TestCacheInfo(t *testing.T) {
	ds := testDataset(t)
	s, err := New(ds, DefaultConfig(), uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	if n, b := s.CacheInfo(); n != 0 || b != 0 {
		t.Fatalf("cache-off CacheInfo = (%d, %d), want (0, 0)", n, b)
	}
	cfg := DefaultConfig()
	cfg.CacheBudgetBytes = 64 << 10
	sc, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	n, b := sc.CacheInfo()
	if n == 0 || b == 0 {
		t.Fatal("budgeted cache pinned nothing")
	}
	if b > cfg.CacheBudgetBytes {
		t.Fatalf("cache accounted %d bytes over the %d budget", b, cfg.CacheBudgetBytes)
	}
}
