package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"testing"
	"time"

	"ringsampler/internal/sample"
	"ringsampler/internal/uring"
)

// TestEpochThreadInvariance is the headline guarantee of the epoch
// runner: identical (dataset, Config, seed, targets) produce
// byte-identical per-batch sample digests at Threads = 1, 2 and 8, and
// EpochStats totals always equal the sum of the per-worker IOStats.
// CI runs this under -race (scripts/check.sh, the thread-invariance
// step), which also exercises the fan-out for data races.
func TestEpochThreadInvariance(t *testing.T) {
	ds := testDataset(t)
	targets := testTargets(ds, 300)
	var ref *EpochStats
	for _, th := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.BatchSize = 32
		cfg.Threads = th
		s, err := New(ds, cfg, uring.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunEpoch(targets, nil)
		if err != nil {
			t.Fatalf("Threads=%d: %v", th, err)
		}
		if st.Batches != 10 || len(st.Digests) != 10 {
			t.Fatalf("Threads=%d: got %d batches / %d digests, want 10", th, st.Batches, len(st.Digests))
		}
		if st.Sampled == 0 {
			t.Fatalf("Threads=%d: epoch sampled nothing", th)
		}
		wantWorkers := th
		if wantWorkers > st.Batches {
			wantWorkers = st.Batches
		}
		if st.Workers != wantWorkers || len(st.PerWorker) != wantWorkers {
			t.Fatalf("Threads=%d: Workers=%d PerWorker=%d, want %d", th, st.Workers, len(st.PerWorker), wantWorkers)
		}
		var sum IOStats
		for _, ws := range st.PerWorker {
			sum.Add(ws)
		}
		if sum != st.IO {
			t.Fatalf("Threads=%d: merged IO %+v != per-worker sum %+v", th, st.IO, sum)
		}
		if st.Latency.Total() != int64(st.Batches) {
			t.Fatalf("Threads=%d: latency histogram has %d observations, want %d", th, st.Latency.Total(), st.Batches)
		}
		if ref == nil {
			ref = st
			continue
		}
		if !slices.Equal(ref.Digests, st.Digests) {
			t.Fatalf("Threads=%d: per-batch digests diverge from Threads=1", th)
		}
		if ref.Sampled != st.Sampled || ref.IO.BytesRead != st.IO.BytesRead {
			t.Fatalf("Threads=%d: totals diverge: %d/%d sampled, %d/%d bytes",
				th, st.Sampled, ref.Sampled, st.IO.BytesRead, ref.IO.BytesRead)
		}
	}
	// The real io_uring backend must agree with the pool digests too.
	if uring.Probe().Ring {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.BatchSize = 32
		cfg.Threads = 4
		s, err := New(ds, cfg, uring.BackendIOURing)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunEpoch(targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(ref.Digests, st.Digests) {
			t.Fatal("io_uring epoch digests diverge from pool digests")
		}
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}
}

// TestEpochMatchesSeededBatches pins the reseeding contract: the epoch
// runner's batch bi equals a lone worker sampling the same shard after
// Reseed(Mix(Seed, bi)) — worker identity plays no role.
func TestEpochMatchesSeededBatches(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.BatchSize = 32
	cfg.Threads = 4
	targets := testTargets(ds, 200)
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunEpoch(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Worker id 9 deliberately outside the epoch's 0..3 range.
	w, err := s.NewWorker(9)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for bi := 0; bi < st.Batches; bi++ {
		lo := bi * cfg.BatchSize
		hi := min(lo+cfg.BatchSize, len(targets))
		b, err := w.SampleBatchSeeded(targets[lo:hi], sample.Mix(cfg.Seed, uint64(bi)))
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Digest(); got != st.Digests[bi] {
			t.Fatalf("batch %d: lone-worker digest %#x != epoch digest %#x", bi, got, st.Digests[bi])
		}
	}
}

// TestEpochInOrderDelivery: the handler sees batch 0, 1, 2, ... in
// strict order regardless of completion order, and each delivered
// batch matches its recorded digest.
func TestEpochInOrderDelivery(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.BatchSize = 16
	cfg.Threads = 8
	targets := testTargets(ds, 250)
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	var indices []int
	var digests []uint64
	st, err := s.RunEpoch(targets, func(i int, b *Batch) error {
		indices = append(indices, i)
		digests = append(digests, b.Digest())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(indices) != st.Batches {
		t.Fatalf("handler saw %d batches, want %d", len(indices), st.Batches)
	}
	for i, got := range indices {
		if got != i {
			t.Fatalf("delivery out of order: position %d got batch %d", i, got)
		}
	}
	if !slices.Equal(digests, st.Digests) {
		t.Fatal("delivered batches do not match recorded digests")
	}
}

// TestEpochUnderFaults: injected ring faults (absorbed by the retry
// path) must not change a single epoch byte at any thread count.
func TestEpochUnderFaults(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.BatchSize = 32
	cfg.Threads = 2
	targets := testTargets(ds, 150)
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.RunEpoch(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty := cfg
	faulty.Threads = 4
	faulty.WrapRing = faultWrap(uring.FaultPlan{Seed: 77, ShortReadRate: 0.1, TransientRate: 0.05, RejectRate: 0.1, DelayRate: 0.2})
	sf, err := New(ds, faulty, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sf.RunEpoch(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ref.Digests, st.Digests) {
		t.Fatal("fault-injected epoch digests diverge from fault-free run")
	}
	if st.IO.Retries == 0 {
		t.Fatal("fault plan injected nothing — plan too weak to prove anything")
	}
}

// TestEpochHandlerError: a failing handler aborts the epoch and
// surfaces its error.
func TestEpochHandlerError(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.BatchSize = 16
	cfg.Threads = 4
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, err = s.RunEpoch(testTargets(ds, 100), func(i int, b *Batch) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want wrapped handler error", err)
	}
}

// TestEpochEmptyTargets: a targetless epoch is rejected, not a no-op.
func TestEpochEmptyTargets(t *testing.T) {
	ds := testDataset(t)
	s, err := New(ds, DefaultConfig(), uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunEpoch(nil, nil); err == nil {
		t.Fatal("empty epoch accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(1 * time.Microsecond)  // bucket 0
	h.Observe(3 * time.Microsecond)  // bucket 1
	h.Observe(100 * time.Microsecond)
	h.Observe(10 * time.Second) // clamped into the last bucket
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[latencyBuckets-1] != 1 {
		t.Fatalf("unexpected bucket layout: %v", h.Counts)
	}
	if q := h.Quantile(0.5); q > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want ≤ 8µs", q)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if h.String() == "(empty)" {
		t.Fatal("non-empty histogram rendered as empty")
	}
	var empty LatencyHist
	if empty.Quantile(0.99) != 0 || empty.String() != "(empty)" {
		t.Fatal("empty histogram misrendered")
	}
}

// TestLatencyHistMedianOfThree pins the nearest-rank fix: the rank is
// ceil(q·total), so the median of 3 observations is the 2nd. The old
// truncating rank returned the 1st — a median below two thirds of the
// samples.
func TestLatencyHistMedianOfThree(t *testing.T) {
	var h LatencyHist
	h.Observe(1 * time.Microsecond)   // bucket 0, upper edge 2µs
	h.Observe(40 * time.Microsecond)  // bucket 5, upper edge 64µs
	h.Observe(900 * time.Microsecond) // bucket 9, upper edge 1024µs
	if got := h.Quantile(0.5); got != 64*time.Microsecond {
		t.Fatalf("median of 3 = %v, want 64µs (2nd observation)", got)
	}
	if got := h.Quantile(1); got != 1024*time.Microsecond {
		t.Fatalf("max of 3 = %v, want 1.024ms (3rd observation)", got)
	}
	if got := h.Quantile(1.0 / 3.0); got != 2*time.Microsecond {
		t.Fatalf("p33 of 3 = %v, want 2µs (1st observation)", got)
	}
	// Median of an even count is the lower of the middle pair
	// (nearest-rank), never rank 0.
	var h2 LatencyHist
	h2.Observe(1 * time.Microsecond)
	h2.Observe(900 * time.Microsecond)
	if got := h2.Quantile(0.5); got != 2*time.Microsecond {
		t.Fatalf("median of 2 = %v, want 2µs", got)
	}
}

// TestLatencyHistBucketZeroLabel: bucket 0 absorbs sub-microsecond
// observations, so its label must read [0,2µs), not [1µs,2µs).
func TestLatencyHistBucketZeroLabel(t *testing.T) {
	var h LatencyHist
	h.Observe(300 * time.Nanosecond)
	if got, want := h.String(), "[0,2µs):1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	h.Observe(3 * time.Microsecond)
	if got, want := h.String(), "[0,2µs):1 [2µs,4µs):1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestEpochCancellation: canceling the context mid-epoch stops the
// feeder promptly — RunEpochCtx returns context.Canceled with partial
// stats whose Completed counts only the batches that actually ran, and
// every batch that did run landed in order with its recorded digest.
func TestEpochCancellation(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.BatchSize = 16
	cfg.Threads = 2
	targets := testTargets(ds, 400) // 25 batches
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	st, err := s.RunEpochCtx(ctx, targets, func(i int, b *Batch) error {
		if i != delivered {
			t.Fatalf("delivery out of order: position %d got batch %d", delivered, i)
		}
		delivered++
		if i == 0 {
			cancel() // cancel from inside the first delivery
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st == nil {
		t.Fatal("canceled epoch returned nil stats")
	}
	if st.Completed < 1 || st.Completed >= st.Batches {
		t.Fatalf("Completed = %d, want in [1, %d)", st.Completed, st.Batches)
	}
	// The batches that DID complete must be the deterministic ones: the
	// recorded digest of every completed in-order batch matches a
	// direct seeded run.
	w, err := s.NewWorker(9)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for bi := 0; bi < delivered; bi++ {
		lo := bi * cfg.BatchSize
		hi := min(lo+cfg.BatchSize, len(targets))
		b, err := w.SampleBatchSeeded(targets[lo:hi], sample.Mix(cfg.Seed, uint64(bi)))
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Digest(); got != st.Digests[bi] {
			t.Fatalf("batch %d: digest %#x != epoch digest %#x", bi, got, st.Digests[bi])
		}
	}
}

// TestEpochCtxPreCanceled: an already-dead context runs nothing.
func TestEpochCtxPreCanceled(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.BatchSize = 16
	cfg.Threads = 2
	s, err := New(ds, cfg, uring.BackendPool)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := s.RunEpochCtx(ctx, testTargets(ds, 100), func(i int, b *Batch) error {
		t.Fatal("handler ran under a pre-canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Completed != 0 {
		t.Fatalf("Completed = %d, want 0", st.Completed)
	}
}
