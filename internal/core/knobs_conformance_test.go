package core

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Knob-combination conformance: every fast-path knob — fixed buffers,
// registered files, SQPOLL, O_DIRECT, bounded depth — is a pure
// performance lever. The sampled byte stream must be identical to the
// plain path for EVERY combination, on every backend that runs here.
// Combinations whose kernel feature isn't granted still run: resolveKnobs
// downgrades them (pool/sim ignore real-only knobs by design), and the
// IOStats Active* flags must report exactly what actually ran.

// testDatasetDir generates the standard conformance dataset and returns
// its directory, so tests can reopen it with different OpenOptions.
func testDatasetDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := gen.Generate(dir, "tiny", "rmat", 2_000, 30_000, 11); err != nil {
		t.Fatal(err)
	}
	return dir
}

func openDS(t *testing.T, dir string, direct bool) *storage.Dataset {
	t.Helper()
	ds, err := storage.OpenWith(dir, storage.OpenOptions{Direct: direct})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func TestKnobMatrixConformance(t *testing.T) {
	dir := testDatasetDir(t)
	base := DefaultConfig()
	base.Seed = 42
	base.RingSize = 32 // small ring so every combo wraps and backpressures
	targets := testTargets(openDS(t, dir, false), 128)

	ref := sampleOnce(t, openDS(t, dir, false), base, uring.BackendSim, targets)
	if ref.TotalSampled() == 0 {
		t.Fatal("reference plan sampled nothing")
	}

	backends := []uring.Backend{uring.BackendSim, uring.BackendPool}
	caps := uring.Probe()
	if caps.Ring {
		backends = append(backends, uring.BackendIOURing)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}

	for _, be := range backends {
		for _, direct := range []bool{false, true} {
			for mask := 0; mask < 8; mask++ {
				fixed := mask&1 != 0
				regFiles := mask&2 != 0
				sqpoll := mask&4 != 0
				name := fmt.Sprintf("%s/odirect=%v/fixed=%v/regfiles=%v/sqpoll=%v",
					be, direct, fixed, regFiles, sqpoll)
				t.Run(name, func(t *testing.T) {
					ds := openDS(t, dir, direct)
					cfg := base
					cfg.FixedBuffers = fixed
					cfg.RegisteredFiles = regFiles
					cfg.SQPoll = sqpoll
					s, err := New(ds, cfg, be)
					if err != nil {
						t.Fatal(err)
					}
					w, err := s.NewWorker(0)
					if err != nil {
						t.Fatal(err)
					}
					defer w.Close()
					got, err := w.SampleBatch(targets)
					if err != nil {
						t.Fatal(err)
					}
					assertBatchesEqual(t, ref, got, name)

					// The Active* flags must report what actually ran:
					// requested knobs intersected with backend + kernel
					// grants — never more, never less.
					st := w.IOStats()
					wantFixed, wantReg, wantSQ := fixed, false, false
					if be == uring.BackendIOURing {
						wantFixed = fixed && caps.ReadFixed
						wantReg = regFiles && caps.RegisteredFiles
						wantSQ = sqpoll && caps.SQPoll
					}
					wantDirect := ds.DirectAlign() > 0
					if st.ActiveFixed != wantFixed || st.ActiveRegFiles != wantReg ||
						st.ActiveSQPoll != wantSQ || st.ActiveODirect != wantDirect {
						t.Fatalf("active knobs (fixed=%v reg=%v sqpoll=%v odirect=%v), want (%v %v %v %v)",
							st.ActiveFixed, st.ActiveRegFiles, st.ActiveSQPoll, st.ActiveODirect,
							wantFixed, wantReg, wantSQ, wantDirect)
					}
					if st.ActiveFixed && st.FixedReads == 0 {
						t.Fatal("fixed buffers active but zero reads went through them")
					}
					if !st.ActiveFixed && st.FixedReads != 0 {
						t.Fatalf("fixed buffers inactive but FixedReads = %d", st.FixedReads)
					}
					if st.ActiveODirect && st.AlignSlackBytes == 0 {
						t.Fatal("O_DIRECT active but zero alignment slack — aligned windows not exercised")
					}
					if !st.ActiveODirect && st.AlignSlackBytes != 0 {
						t.Fatalf("buffered run reports AlignSlackBytes = %d", st.AlignSlackBytes)
					}
					if st.SubmitSyscalls+st.WaitSyscalls == 0 {
						t.Fatal("worker recorded zero ring syscalls")
					}
					if direct && ds.DirectAlign() == 0 {
						t.Logf("O_DIRECT fell back to buffered: %v", ds.DirectFallback())
					}
				})
			}
		}
	}
}

// TestDepthBoundedConformance: capping in-flight depth reshapes the
// pipeline (and the O_DIRECT scratch pool) but never the bytes. Depth 1
// degenerates to one-read-at-a-time and must still finish and agree.
func TestDepthBoundedConformance(t *testing.T) {
	dir := testDatasetDir(t)
	base := DefaultConfig()
	base.Seed = 42
	base.RingSize = 32
	targets := testTargets(openDS(t, dir, false), 128)
	ref := sampleOnce(t, openDS(t, dir, false), base, uring.BackendSim, targets)

	backends := []uring.Backend{uring.BackendSim, uring.BackendPool}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	}
	for _, be := range backends {
		for _, depth := range []int{1, 3, 8} {
			for _, direct := range []bool{false, true} {
				name := fmt.Sprintf("%s/depth=%d/odirect=%v", be, depth, direct)
				t.Run(name, func(t *testing.T) {
					cfg := base
					cfg.Depth = depth
					cfg.FixedBuffers = true // deepest interaction: fixed chunks + depth cap
					got := sampleOnce(t, openDS(t, dir, direct), cfg, be, targets)
					assertBatchesEqual(t, ref, got, name)
				})
			}
		}
	}
}

// TestKnobsWithFaultsConformance: fault injection composed with the
// fixed-buffer path (but never with O_DIRECT — truncating an aligned
// read's length would make it unaligned, which a real O_DIRECT fd
// rejects) must still retry to the exact reference bytes.
func TestKnobsWithFaultsConformance(t *testing.T) {
	dir := testDatasetDir(t)
	base := DefaultConfig()
	base.Seed = 42
	base.RingSize = 32
	targets := testTargets(openDS(t, dir, false), 128)
	ref := sampleOnce(t, openDS(t, dir, false), base, uring.BackendSim, targets)

	plan := uring.FaultPlan{Seed: 100, ShortReadRate: 0.1, TransientRate: 0.05, RejectRate: 0.1, DelayRate: 0.2}
	backends := []uring.Backend{uring.BackendSim, uring.BackendPool}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			cfg := base
			cfg.FixedBuffers = true
			cfg.WrapRing = faultWrap(plan)
			s, err := New(openDS(t, dir, false), cfg, be)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			got, err := w.SampleBatch(targets)
			if err != nil {
				t.Fatal(err)
			}
			assertBatchesEqual(t, ref, got, string(be))
			fs, _ := uring.Faults(w.edge.ring)
			if fs.Total() == 0 {
				t.Fatal("fault-wrapped run injected nothing")
			}
			if st := w.IOStats(); st.FixedReads == 0 {
				t.Fatal("fixed path inactive under faults")
			}
		})
	}
}

// TestBadBufIndexSurfacesIOError: a fault plan that corrupts every fixed
// read's buffer index makes the backend answer -EINVAL; the worker must
// surface that as a structured *IOError (EINVAL is not transient), not
// hang, panic, or silently fall back to plain reads.
func TestBadBufIndexSurfacesIOError(t *testing.T) {
	dir := testDatasetDir(t)
	for _, be := range []uring.Backend{uring.BackendSim, uring.BackendPool} {
		t.Run(string(be), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.FixedBuffers = true
			cfg.WrapRing = faultWrap(uring.FaultPlan{Seed: 7, BadBufIndexRate: 1})
			s, err := New(openDS(t, dir, false), cfg, be)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			_, err = w.SampleBatch(testTargets(openDS(t, dir, false), 8))
			var ioe *IOError
			if !errors.As(err, &ioe) {
				t.Fatalf("err = %v (%T), want *IOError", err, err)
			}
			if ioe.Errno != syscall.EINVAL {
				t.Fatalf("Errno = %v, want EINVAL", ioe.Errno)
			}
			if !errors.Is(err, syscall.EINVAL) {
				t.Fatal("IOError does not unwrap to EINVAL")
			}
			fs, _ := uring.Faults(w.edge.ring)
			if fs.BadBufIndex == 0 {
				t.Fatal("no buffer-index corruptions recorded")
			}
		})
	}
}

// TestODirectTinyFileStraddle: a dataset whose whole edge file is
// smaller than one O_DIRECT block means EVERY aligned read window
// straddles EOF and completes short — the worker's early-completion
// check (interior covered despite a short device read) carries the
// entire batch. Digest must match the buffered run exactly.
func TestODirectTinyFileStraddle(t *testing.T) {
	dir := t.TempDir()
	// 30 nodes, 100 edges -> 400-byte edge file, under even a 512 block.
	if _, err := gen.Generate(dir, "tiny", "rmat", 30, 100, 3); err != nil {
		t.Fatal(err)
	}
	direct := openDS(t, dir, true)
	if direct.DirectAlign() == 0 {
		t.Skipf("O_DIRECT unavailable: %v", direct.DirectFallback())
	}
	if sz := direct.NumEdges() * storage.EntryBytes; sz >= int64(direct.DirectAlign()) {
		t.Fatalf("edge file %d bytes not under the %d block — test premise broken", sz, direct.DirectAlign())
	}
	cfg := DefaultConfig()
	cfg.Seed = 9
	targets := testTargets(direct, 32)
	ref := sampleOnce(t, openDS(t, dir, false), cfg, uring.BackendSim, targets)

	backends := []uring.Backend{uring.BackendSim, uring.BackendPool}
	if uring.Probe().Ring {
		backends = append(backends, uring.BackendIOURing)
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			s, err := New(direct, cfg, be)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.NewWorker(0)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			got, err := w.SampleBatch(targets)
			if err != nil {
				t.Fatal(err)
			}
			assertBatchesEqual(t, ref, got, string(be))
			st := w.IOStats()
			if !st.ActiveODirect {
				t.Fatal("O_DIRECT inactive despite direct open")
			}
			if st.Reads > 0 && st.AlignSlackBytes == 0 {
				t.Fatal("every window straddles EOF yet zero slack recorded")
			}
		})
	}
}

// TestConfigRejectsNegativeKnobs: validation for the new knobs.
func TestConfigRejectsNegativeKnobs(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Depth = -1
	if _, err := New(ds, cfg, uring.BackendSim); err == nil {
		t.Fatal("negative Depth accepted")
	}
	cfg = DefaultConfig()
	cfg.ArenaBytes = -1
	if _, err := New(ds, cfg, uring.BackendSim); err == nil {
		t.Fatal("negative ArenaBytes accepted")
	}
}
