// Package core implements the RingSampler engine itself (paper §3):
// offset-based neighbor sampling over an on-disk edge file, per-thread
// workers with private rings/RNG/workspaces and zero cross-thread
// synchronization, an asynchronous I/O-group pipeline overlapping
// submission preparation with completion draining, and between-layer
// sort+dedup frontier building. The same algorithm runs two ways: for
// real against a uring backend (worker.go) and under the virtual-time
// device model for the cross-system experiments (sim.go).
package core

import (
	"fmt"

	"ringsampler/internal/uring"
)

// DefaultFanouts is the paper's 3-layer GraphSAGE fanout {20,15,10}.
var DefaultFanouts = []int{20, 15, 10}

// DefaultArenaBytes is the per-worker registered arena size when
// Config.FixedBuffers is on and ArenaBytes is 0: big enough that every
// layer of the default fanout/batch fits, small enough that 8 workers
// cost tens of megabytes.
const DefaultArenaBytes = 8 << 20

// Config controls the engine. The ablation switches (AsyncPipeline,
// OffsetSampling) exist so the paper's design choices can be measured
// against their alternatives; production use leaves both true.
type Config struct {
	// Fanouts is the per-layer sample count, outermost layer first.
	Fanouts []int
	// BatchSize is the number of target nodes per mini-batch.
	BatchSize int
	// Threads is the worker count for epoch runs (mini-batch-per-
	// thread, Fig 3a): RunEpoch fans mini-batches out to this many
	// OS-thread-pinned workers, and RunSim models the same distribution
	// in virtual time. Output never depends on it — per-batch RNG
	// reseeding makes the sampled stream identical at every thread
	// count — only throughput does.
	Threads int
	// RingSize is the SQ depth of each worker's ring; one I/O group is
	// at most one ring full (paper default 512).
	RingSize int
	// AsyncPipeline overlaps preparing group k+1 with draining group
	// k's completions (Fig 3b). False degrades to submit-then-wait.
	AsyncPipeline bool
	// OffsetSampling fetches only the sampled entries via offset-based
	// reads (Fig 2). False degrades to fetching full neighbor lists.
	OffsetSampling bool
	// Seed drives all sampling randomness. Identical seeds yield
	// bit-identical sample sets.
	Seed uint64
	// Strategy names the draw strategy (StrategyUniform/Weighted/Walk);
	// empty selects uniform — the paper's Floyd fanout draws, byte-
	// identical to the engine before strategies existed. Every strategy
	// rides the same ring pipeline and keeps the determinism contract:
	// output is a pure function of (dataset, config, targets, Seed),
	// invariant under Threads and backend.
	Strategy string
	// MaxIORetries bounds how many times one ring read is resubmitted
	// after a transient result (-EINTR/-EAGAIN, or a short read's
	// remaining byte range) before the worker surfaces a structured
	// *IOError. 0 disables retries entirely.
	MaxIORetries int
	// FixedBuffers registers each worker's workspace arena with its ring
	// (IORING_REGISTER_BUFFERS) and issues IORING_OP_READ_FIXED, skipping
	// per-read page pinning on the real backend. Pool/sim emulate the
	// validation, so conformance runs everywhere; on the real backend the
	// knob downgrades (with one log line) when the kernel refuses
	// registration. Byte output is identical either way.
	FixedBuffers bool
	// RegisteredFiles registers the edge file with each worker's ring
	// (IORING_REGISTER_FILES) so SQEs carry IOSQE_FIXED_FILE and skip the
	// per-SQE fd lookup. Real backend only; accepted and ignored by
	// pool/sim, downgraded with a log line when the kernel refuses.
	RegisteredFiles bool
	// SQPoll creates each worker's ring with IORING_SETUP_SQPOLL: a
	// kernel thread consumes the SQ and steady-state submission costs
	// zero syscalls. Real backend only; accepted and ignored by pool/sim,
	// downgraded with a log line when the kernel refuses.
	SQPoll bool
	// Depth caps each worker's in-flight read requests. 0 (default)
	// bounds staging only by the ring's own SQ/CQ capacity — the deepest
	// pipeline. A positive value trades pipeline depth for memory (the
	// O_DIRECT path allocates aligned scratch per in-flight request) and
	// latency.
	Depth int
	// ArenaBytes sizes each worker's registered workspace arena when
	// FixedBuffers is on (0 selects DefaultArenaBytes). Layers whose
	// buffers outgrow the arena fall back to plain reads for that layer —
	// correctness never depends on the arena being big enough.
	ArenaBytes int64
	// CacheBudgetBytes is the memory budget (bytes, accounted through
	// memctl) for the hot-neighbor cache: the complete neighbor lists of
	// the highest-degree nodes, pinned at sampler construction and
	// consulted before any read is planned, so cached nodes never touch
	// the ring. 0 (the default) disables the cache. Sampling decisions
	// are identical with the cache on or off — only device traffic
	// changes — so Batch digests never depend on this knob.
	CacheBudgetBytes int64
	// FetchFeatures appends the feature stage to every batch: after the
	// sampling layers complete, the deduplicated union of the batch's
	// nodes has its feature vectors fetched through the worker's feature
	// ring into Batch.Features. Requires a dataset with a feature file.
	// The stage runs after all draws, so it never perturbs the sampled
	// node set — only Batch digests (which fold the feature payload) and
	// device traffic change.
	FetchFeatures bool
	// FeatureCacheBudgetBytes is the memctl-accounted budget for the
	// hot-node feature cache — a second budget axis next to
	// CacheBudgetBytes, pinning the feature vectors of the highest-degree
	// nodes so their fetches never touch the ring. 0 disables it.
	// Requires a dataset with a feature file. Feature payloads are
	// identical at any budget — only device traffic changes.
	FeatureCacheBudgetBytes int64
	// WrapRing, when non-nil, wraps each of a worker's rings right after
	// construction — the hook fault-injection tests and resilience
	// experiments use to interpose uring.NewFault (or any other
	// decorator) without a separate backend name. It is called once for
	// the edge ring (at worker construction) and once for the feature
	// ring (on the first feature fetch), with the same workerID.
	// Production use leaves it nil.
	WrapRing func(r uring.Ring, workerID int) (uring.Ring, error)
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Fanouts:        append([]int(nil), DefaultFanouts...),
		BatchSize:      1024,
		Threads:        8,
		RingSize:       512,
		AsyncPipeline:  true,
		OffsetSampling: true,
		Seed:           1,
		MaxIORetries:   8,
	}
}

func (c *Config) validate() error {
	if len(c.Fanouts) == 0 {
		return fmt.Errorf("core: config needs at least one fanout layer")
	}
	for i, f := range c.Fanouts {
		if f <= 0 {
			return fmt.Errorf("core: fanout[%d] = %d must be positive", i, f)
		}
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: batch size %d must be positive", c.BatchSize)
	}
	if c.Threads <= 0 {
		return fmt.Errorf("core: thread count %d must be positive", c.Threads)
	}
	if c.RingSize <= 0 {
		return fmt.Errorf("core: ring size %d must be positive", c.RingSize)
	}
	if c.MaxIORetries < 0 {
		return fmt.Errorf("core: max I/O retries %d must be non-negative", c.MaxIORetries)
	}
	if !ValidStrategy(c.Strategy) {
		return fmt.Errorf("core: unknown sampling strategy %q (known: %v)", c.Strategy, StrategyNames())
	}
	if c.Depth < 0 {
		return fmt.Errorf("core: depth %d must be non-negative", c.Depth)
	}
	if c.ArenaBytes < 0 {
		return fmt.Errorf("core: arena bytes %d must be non-negative", c.ArenaBytes)
	}
	if c.CacheBudgetBytes < 0 {
		return fmt.Errorf("core: cache budget %d must be non-negative", c.CacheBudgetBytes)
	}
	if c.FeatureCacheBudgetBytes < 0 {
		return fmt.Errorf("core: feature cache budget %d must be non-negative", c.FeatureCacheBudgetBytes)
	}
	return nil
}
