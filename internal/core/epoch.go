package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"strings"
	"sync"
	"time"

	"ringsampler/internal/sample"
)

// latencyBuckets is the fixed bucket count of LatencyHist: bucket i
// counts batches whose latency fell in [2^i, 2^(i+1)) microseconds.
// Bucket 0 also absorbs sub-microsecond batches and the last bucket
// everything slower than ~2^23 µs (≈8.4 s) — far beyond any sane
// mini-batch.
const latencyBuckets = 24

// LatencyHist is a fixed-bucket log2 histogram of per-batch sampling
// latencies. Fixed buckets keep the epoch runner allocation-free on the
// hot path and make histograms from different runs directly addable.
type LatencyHist struct {
	Counts [latencyBuckets]int64
}

// Observe records one batch latency.
func (h *LatencyHist) Observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	if us > 0 {
		b = bits.Len64(uint64(us)) - 1
	}
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.Counts[b]++
}

// Total returns the number of observations.
func (h *LatencyHist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound for the q-quantile latency (the upper
// edge of the bucket the quantile falls in). The rank is the ceiling of
// q·total — the standard nearest-rank definition — so the median of 3
// observations is the 2nd, not the 1st. q outside (0,1] is clamped; an
// empty histogram returns 0.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1 / float64(total)
	}
	if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= need {
			return time.Duration(int64(1)<<(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<latencyBuckets) * time.Microsecond
}

// String renders the non-empty buckets compactly, e.g.
// "[0,2µs):2 [64µs,128µs):12". Bucket 0 is labeled [0,2µs) because it
// absorbs sub-microsecond batches alongside the nominal [1µs,2µs)
// range.
func (h *LatencyHist) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		lo := (time.Duration(int64(1)<<i) * time.Microsecond).String()
		if i == 0 {
			lo = "0"
		}
		hi := time.Duration(int64(1)<<(i+1)) * time.Microsecond
		fmt.Fprintf(&b, "[%s,%v):%d", lo, hi, c)
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// EpochStats aggregates one RunEpoch: merged ring-level I/O counters,
// the per-worker breakdown they were merged from, per-batch sample
// digests (in batch order), a batch-latency histogram, and wall-clock
// throughput. IO always equals the sum of PerWorker.
type EpochStats struct {
	// Batches is the number of mini-batches the target stream sharded
	// into; Targets is the epoch's target-node count.
	Batches int
	Targets int
	// Workers is how many workers actually ran: Config.Threads, capped
	// by the batch count.
	Workers int
	// Completed is how many batches actually finished sampling. It
	// equals Batches except when the epoch was canceled mid-run, in
	// which case only the first Completed dispatched batches have
	// digests and latency observations.
	Completed int
	// Sampled is the total sampled neighbor entries across all batches.
	Sampled int64
	// Digests holds each batch's sample digest in batch order. For a
	// fixed (dataset, Config, seed, targets) this slice is identical at
	// every thread count — the runner's determinism guarantee.
	Digests []uint64
	// IO is the merged ring-level I/O accounting; PerWorker is the
	// per-worker breakdown (indexed by worker id).
	IO        IOStats
	PerWorker []IOStats
	// Latency is the per-batch sampling latency histogram.
	Latency LatencyHist
	// Seconds is the wall-clock epoch duration; EntriesPerSec and
	// BytesPerSec are the headline sampled-entry and device-byte
	// throughputs derived from it.
	Seconds       float64
	EntriesPerSec float64
	BytesPerSec   float64
}

// epochResult carries one finished mini-batch from a worker to the
// collector.
type epochResult struct {
	index int
	batch *Batch
	lat   time.Duration
	err   error
}

// RunEpoch samples every target through the real engine: the target
// stream is sharded into Config.BatchSize mini-batches and fanned out
// to Config.Threads workers, each pinned to its OS thread for the
// worker's lifetime (io_uring's mmap'd SQ/CQ rings and the Go
// scheduler interact badly when a ring migrates threads mid-submit).
//
// Output is thread-count-invariant: each batch's RNG is reseeded from
// sample.Mix(Config.Seed, batchIndex) rather than from the worker id,
// so Threads=1 and Threads=16 produce byte-identical Batch streams for
// the same seed — regardless of which worker ran which batch or in
// what order completions landed. Workers still contend for the device,
// so throughput (not output) is what scales with Threads.
//
// onBatch, when non-nil, is called once per batch with its index —
// strictly in batch order (0, 1, 2, ...), on the calling goroutine,
// with out-of-order completions buffered until their turn. A handler
// error aborts the epoch. Passing nil skips delivery; per-batch
// digests are recorded in EpochStats either way.
func (s *Sampler) RunEpoch(targets []uint32, onBatch func(index int, b *Batch) error) (*EpochStats, error) {
	return s.RunEpochCtx(context.Background(), targets, onBatch)
}

// RunEpochCtx is RunEpoch with graceful cancellation: when ctx is
// canceled mid-epoch no further batches are dispatched, every batch
// already in flight finishes (workers never die mid-batch), and the
// partial stats accumulated so far are returned ALONGSIDE the context's
// error — callers that want the drained numbers (cmd/epoch flushing on
// SIGINT) read the stats, callers that only check err lose nothing.
// EpochStats.Completed records how many batches actually ran.
func (s *Sampler) RunEpochCtx(ctx context.Context, targets []uint32, onBatch func(index int, b *Batch) error) (*EpochStats, error) {
	return s.RunEpochSeeded(ctx, s.cfg.Seed, targets, onBatch)
}

// RunEpochSeeded is RunEpochCtx with an explicit epoch seed overriding
// Config.Seed: batch bi draws from sample.Mix(seed, bi). Multi-epoch
// consumers (the trainer) pass a fresh per-epoch seed so each epoch
// resamples different neighborhoods while keeping the determinism
// contract — the batch stream is still a pure function of (dataset,
// config, targets, seed), independent of Threads.
func (s *Sampler) RunEpochSeeded(ctx context.Context, seed uint64, targets []uint32, onBatch func(index int, b *Batch) error) (*EpochStats, error) {
	cfg := &s.cfg
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: epoch needs at least one target")
	}
	numBatches := (len(targets) + cfg.BatchSize - 1) / cfg.BatchSize
	workers := cfg.Threads
	if numBatches < workers {
		workers = numBatches
	}

	var (
		idxCh = make(chan int)
		resCh = make(chan epochResult, workers)
		stop  = make(chan struct{})
		// fedCh reports how many batches the feeder actually dispatched;
		// buffered so the feeder never blocks when nobody asks (the
		// uncanceled path).
		fedCh = make(chan int, 1)
		wg    sync.WaitGroup
	)
	perWorker := make([]IOStats, workers)
	start := time.Now()
	go func() {
		defer close(idxCh)
		for bi := 0; bi < numBatches; bi++ {
			// Pre-check so a cancellation always stops dispatch here, even
			// when a worker is simultaneously ready to receive (select
			// picks ready cases at random).
			if ctx.Err() != nil {
				fedCh <- bi
				return
			}
			select {
			case idxCh <- bi:
			case <-stop:
				fedCh <- bi
				return
			case <-ctx.Done():
				fedCh <- bi
				return
			}
		}
		fedCh <- numBatches
	}()
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			w, err := s.NewWorker(wid)
			if err != nil {
				select {
				case resCh <- epochResult{index: -1, err: fmt.Errorf("core: epoch worker %d: %w", wid, err)}:
				case <-stop:
				}
				return
			}
			defer func() {
				perWorker[wid] = w.IOStats()
				w.Close()
			}()
			for bi := range idxCh {
				lo := bi * cfg.BatchSize
				hi := lo + cfg.BatchSize
				if hi > len(targets) {
					hi = len(targets)
				}
				t0 := time.Now()
				b, err := w.SampleBatchSeeded(targets[lo:hi], sample.Mix(seed, uint64(bi)))
				r := epochResult{index: bi, batch: b, lat: time.Since(t0), err: err}
				if err != nil {
					r.err = fmt.Errorf("core: epoch batch %d (worker %d): %w", bi, wid, err)
				}
				select {
				case resCh <- r:
				case <-stop:
					return
				}
				if err != nil {
					return
				}
			}
		}(wid)
	}

	stats := &EpochStats{
		Batches: numBatches,
		Targets: len(targets),
		Workers: workers,
		Digests: make([]uint64, numBatches),
	}
	// In-order delivery: completions arrive in any order; pending parks
	// the early ones until every predecessor has been handed out.
	pending := make(map[int]*Batch)
	nextDeliver := 0
	var firstErr error
	expected := numBatches
	ctxDone := ctx.Done()
	canceled := false
collect:
	for got := 0; got < expected; {
		var r epochResult
		select {
		case r = <-resCh:
		case <-ctxDone:
			// Graceful drain: stop waiting for batches that were never
			// dispatched. The feeder reports how many actually went out
			// and the loop shrinks to collecting exactly those.
			canceled = true
			ctxDone = nil
			expected = <-fedCh
			continue
		}
		got++
		if r.err != nil {
			firstErr = r.err
			break
		}
		stats.Latency.Observe(r.lat)
		stats.Sampled += r.batch.TotalSampled()
		stats.Digests[r.index] = r.batch.Digest()
		stats.Completed++
		if onBatch == nil {
			continue
		}
		pending[r.index] = r.batch
		for {
			b, ok := pending[nextDeliver]
			if !ok {
				break
			}
			delete(pending, nextDeliver)
			if err := onBatch(nextDeliver, b); err != nil {
				firstErr = fmt.Errorf("core: epoch batch %d handler: %w", nextDeliver, err)
				break collect
			}
			nextDeliver++
		}
	}
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	stats.Seconds = time.Since(start).Seconds()
	for _, st := range perWorker {
		stats.IO.Add(st)
	}
	stats.PerWorker = perWorker
	if stats.Seconds > 0 {
		stats.EntriesPerSec = float64(stats.Sampled) / stats.Seconds
		stats.BytesPerSec = float64(stats.IO.BytesRead) / stats.Seconds
	}
	if canceled {
		return stats, context.Cause(ctx)
	}
	return stats, nil
}
