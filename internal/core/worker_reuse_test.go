package core

import (
	"errors"
	"syscall"
	"testing"

	"ringsampler/internal/sample"
	"ringsampler/internal/uring"
)

// Regression tests for the stale-completion hazard: a batch that fails
// mid-flight used to return with requests still outstanding in the
// ring, so a reused worker's next Wait harvested stale CQEs whose IDs
// were routed into the NEW batch's request table — silent buffer and
// accounting corruption (or an index panic when an old ID exceeded the
// new table). issue() now quarantines in-flight requests before
// surfacing the error, and SampleBatch refuses a worker whose ring
// could not be proven empty.

// dribbleRing wraps a ring, delivers completions at most `per` per
// Wait call (holding the rest back), and poisons the failAt-th
// delivered completion with -EIO. When the poisoned completion is
// delivered there are still held + undelivered completions owed — the
// exact mid-flight failure the quarantine path exists for. With
// dieAfterFail set, every Wait after the poisoned one errors, modeling
// a ring that dies outright.
type dribbleRing struct {
	inner        uring.Ring
	queued       []uring.CQE
	delivered    int
	failAt       int
	per          int
	dieAfterFail bool
}

var errRingDead = errors.New("dribbleRing: ring died")

func (r *dribbleRing) PrepRead(id uint64, off int64, buf []byte) bool {
	return r.inner.PrepRead(id, off, buf)
}
func (r *dribbleRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	return r.inner.PrepReadFixed(id, off, buf, bufIndex)
}
func (r *dribbleRing) Submit() (int, error) { return r.inner.Submit() }
func (r *dribbleRing) Entries() int         { return r.inner.Entries() }
func (r *dribbleRing) Close() error         { return r.inner.Close() }

func (r *dribbleRing) Wait(min int) ([]uring.CQE, error) {
	if r.dieAfterFail && r.delivered >= r.failAt {
		return nil, errRingDead
	}
	need := min
	if need < 1 {
		need = 1
	}
	for len(r.queued) < need {
		cqes, err := r.inner.Wait(1)
		if err != nil {
			return nil, err
		}
		if len(cqes) == 0 {
			break
		}
		r.queued = append(r.queued, cqes...)
	}
	n := need
	if r.per > 0 && n < r.per {
		n = r.per
	}
	if n > len(r.queued) {
		n = len(r.queued)
	}
	out := append([]uring.CQE(nil), r.queued[:n]...)
	r.queued = r.queued[n:]
	for i := range out {
		r.delivered++
		if r.delivered == r.failAt {
			out[i].Res = -int32(syscall.EIO)
		}
	}
	return out, nil
}

// TestWorkerReuseAfterFailedBatch: a batch fails on its 3rd completion
// with the ring still owing every later completion; the worker must
// drain them (StaleDrained > 0) and the NEXT batch on the same worker
// must be byte-identical to the same batch on a fresh worker.
func TestWorkerReuseAfterFailedBatch(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &dribbleRing{inner: r, failAt: 3}, nil
	}
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	t1 := testTargets(ds, 64)
	_, err = w.SampleBatchSeeded(t1, sample.Mix(cfg.Seed, 1))
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Errno != syscall.EIO {
		t.Fatalf("failed batch: err = %v, want *IOError with EIO", err)
	}
	if w.IOStats().StaleDrained == 0 {
		t.Fatal("failure left nothing in flight — the scenario does not exercise the hazard")
	}

	// Reuse after quarantine: the second batch must match a fresh
	// worker sampling the same (targets, seed) fault-free.
	t2 := testTargets(ds, 48)
	got, err := w.SampleBatchSeeded(t2, sample.Mix(cfg.Seed, 2))
	if err != nil {
		t.Fatalf("reused worker: %v", err)
	}
	clean := cfg
	clean.WrapRing = nil
	sc, err := New(ds, clean, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := sc.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	want, err := wf.SampleBatchSeeded(t2, sample.Mix(cfg.Seed, 2))
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, want, got, "reused-after-failure/fresh")
	if got.Digest() != want.Digest() {
		t.Fatalf("reused worker digest %#x != fresh worker digest %#x", got.Digest(), want.Digest())
	}
}

// TestWorkerReuseUnderFaultRing is the same hazard driven through
// uring.NewFault: a seeded fault plan whose -EIO fails a batch while
// delayed completions are still owed. The reused worker's next batch
// (and a fresh worker's run of the same batch, through its own fault
// ring) must both land on the fault-free digest. Seeds are searched
// deterministically until the -EIO lands in batch 1 and spares batch 2
// on both workers, so the test does not depend on one magic seed
// staying aligned with the engine's RNG consumption. Fanouts are kept
// small so a batch issues a few hundred requests, not tens of
// thousands — at the default fanout no hard-error rate both fails
// batch 1 and plausibly spares batch 2.
func TestWorkerReuseUnderFaultRing(t *testing.T) {
	ds := testDataset(t)
	t1 := testTargets(ds, 24)
	t2 := testTargets(ds, 16)
	seed1, seed2 := sample.Mix(13, 1), sample.Mix(13, 2)

	// Fault-free reference digest of batch 2.
	cleanCfg := DefaultConfig()
	cleanCfg.Seed = 13
	cleanCfg.Fanouts = []int{4, 3}
	sc, err := New(ds, cleanCfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sc.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	ref, err := wc.SampleBatchSeeded(t2, seed2)
	if err != nil {
		t.Fatal(err)
	}

	for fs := uint64(1); fs <= 200; fs++ {
		plan := uring.FaultPlan{
			Seed:          fs,
			HardErrRate:   0.002,
			ShortReadRate: 0.05,
			TransientRate: 0.05,
			DelayRate:     0.5,
			MaxDelay:      6,
		}
		cfg := cleanCfg
		cfg.WrapRing = faultWrap(plan)
		s, err := New(ds, cfg, uring.BackendSim)
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		_, err1 := w.SampleBatchSeeded(t1, seed1)
		var ioe *IOError
		if !errors.As(err1, &ioe) || ioe.Errno != syscall.EIO || w.IOStats().StaleDrained == 0 {
			w.Close()
			continue // batch 1 didn't fail mid-flight under this seed
		}
		got, err2 := w.SampleBatchSeeded(t2, seed2)
		if err2 != nil {
			w.Close()
			continue // injected -EIO hit batch 2 as well; try another seed
		}
		if got.Digest() != ref.Digest() {
			t.Fatalf("fault seed %d: reused worker digest %#x != fault-free digest %#x",
				fs, got.Digest(), ref.Digest())
		}
		w.Close()

		// A fresh worker through its own fault ring must agree too.
		wf, err := s.NewWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := wf.SampleBatchSeeded(t2, seed2)
		wf.Close()
		if err != nil {
			continue // fresh worker's ring replay hit -EIO earlier; seed unusable
		}
		if fresh.Digest() != ref.Digest() {
			t.Fatalf("fault seed %d: fresh worker digest %#x != fault-free digest %#x",
				fs, fresh.Digest(), ref.Digest())
		}
		return
	}
	t.Fatal("no fault seed in [1,200] produced a mid-flight EIO in batch 1 and a clean batch 2")
}

// TestWorkerBrokenRefusal: when the ring dies during quarantine the
// worker cannot prove its ring empty — it must refuse the next batch
// with ErrWorkerBroken instead of sampling through a poisoned ring.
func TestWorkerBrokenRefusal(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.WrapRing = func(r uring.Ring, workerID int) (uring.Ring, error) {
		return &dribbleRing{inner: r, failAt: 3, dieAfterFail: true}, nil
	}
	s, err := New(ds, cfg, uring.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.SampleBatch(testTargets(ds, 64)); err == nil {
		t.Fatal("poisoned batch succeeded")
	}
	_, err = w.SampleBatch(testTargets(ds, 16))
	if !errors.Is(err, ErrWorkerBroken) {
		t.Fatalf("reuse of undrainable worker: err = %v, want ErrWorkerBroken", err)
	}
	// Refusal is sticky.
	if _, err := w.SampleBatch(testTargets(ds, 8)); !errors.Is(err, ErrWorkerBroken) {
		t.Fatal("broken worker accepted a batch on the second try")
	}
}
