// Package device models the storage hardware the cross-system
// experiments charge their I/O against. The model is deliberately
// simple — per-group latency, per-op channel service, aggregate
// bandwidth — because the paper's comparative figures depend on how
// much data each system moves and in what batch shape, not on NVMe
// microarchitecture (DESIGN.md §1).
package device

import "math"

// Model is a storage device for modeled runs.
type Model struct {
	Name string
	// LatencySec is the fixed latency charged once per submitted I/O
	// group (submission syscall + device turnaround).
	LatencySec float64
	// PerOpSec is the service time of one request on one channel.
	PerOpSec float64
	// Channels is the device's internal parallelism; ops in a group
	// spread across channels.
	Channels int
	// BytesPerSec caps aggregate data movement.
	BytesPerSec float64
	// MaxTransfer is the largest single request; bigger reads split.
	MaxTransfer int64
}

// NVMe returns the modeled datacenter NVMe drive used by every
// experiment: ~80us turnaround, 100k IOPS per channel across 16
// channels (1.6M IOPS aggregate), 3.2 GB/s, 128 KiB max transfer.
func NVMe() *Model {
	return &Model{
		Name:        "nvme",
		LatencySec:  80e-6,
		PerOpSec:    10e-6,
		Channels:    16,
		BytesPerSec: 3.2e9,
		MaxTransfer: 128 << 10,
	}
}

// Share returns a copy of the model with 1/n of the channels and
// bandwidth: the per-actor view of a device under n concurrent
// actors. Sequentially simulated threads charge their I/O against
// their share, so device contention lands inside each thread's clock
// instead of as an after-the-fact clamp (which would erase schedule
// differences like sync-vs-async).
func (m *Model) Share(n int) *Model {
	if n <= 1 {
		return m
	}
	s := *m
	s.Channels = m.Channels / n
	if s.Channels < 1 {
		s.Channels = 1
	}
	s.BytesPerSec = m.BytesPerSec * float64(s.Channels) / float64(m.Channels)
	return &s
}

// GroupSeconds returns the completion time of a group of ops totalling
// the given bytes, submitted together: one latency plus the larger of
// the channel-service bound and the bandwidth bound.
func (m *Model) GroupSeconds(ops int64, bytes int64) float64 {
	if ops <= 0 {
		return 0
	}
	service := float64(ops) * m.PerOpSec / float64(m.Channels)
	bw := float64(bytes) / m.BytesPerSec
	return m.LatencySec + math.Max(service, bw)
}

// FloorSeconds is the device-capacity lower bound for an entire run:
// no schedule can finish the given aggregate ops and bytes faster.
// Modeled multi-threaded epochs are clamped to it (DESIGN.md's
// virtual-time correctness note).
func (m *Model) FloorSeconds(ops int64, bytes int64) float64 {
	service := float64(ops) * m.PerOpSec / float64(m.Channels)
	bw := float64(bytes) / m.BytesPerSec
	return math.Max(service, bw)
}

// SplitOps returns how many device requests a contiguous read of n
// bytes costs under the MaxTransfer limit.
func (m *Model) SplitOps(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + m.MaxTransfer - 1) / m.MaxTransfer
}
