package device

import "testing"

// TestGroupSeconds pins the cost law: one latency per group plus the
// max of the channel-service and bandwidth bounds.
func TestGroupSeconds(t *testing.T) {
	m := &Model{LatencySec: 1e-4, PerOpSec: 1e-5, Channels: 4, BytesPerSec: 1e9, MaxTransfer: 1 << 17}
	if got := m.GroupSeconds(0, 0); got != 0 {
		t.Fatalf("empty group costs %v, want 0", got)
	}
	// 8 ops over 4 channels = 2e-5 service; 1 KB / 1e9 = 1e-6 bandwidth
	// → service-bound.
	want := 1e-4 + 2e-5
	if got := m.GroupSeconds(8, 1024); got != want {
		t.Fatalf("service-bound group = %v, want %v", got, want)
	}
	// 1 op, 1 GB → bandwidth-bound: latency + 1s.
	if got := m.GroupSeconds(1, 1e9); got != 1e-4+1 {
		t.Fatalf("bandwidth-bound group = %v, want %v", got, 1e-4+1)
	}
}

// TestGroupSecondsMonotone: charging more ops or more bytes never makes
// a group faster.
func TestGroupSecondsMonotone(t *testing.T) {
	m := NVMe()
	prev := 0.0
	for ops := int64(1); ops <= 1<<12; ops *= 2 {
		got := m.GroupSeconds(ops, ops*4096)
		if got < prev {
			t.Fatalf("GroupSeconds(%d) = %v < previous %v", ops, got, prev)
		}
		prev = got
	}
}

// TestFloorMatchesGroup: for a single submitted group, the run floor is
// exactly the group cost minus the one-time latency.
func TestFloorMatchesGroup(t *testing.T) {
	m := NVMe()
	ops, bytes := int64(1000), int64(1<<20)
	if got, want := m.FloorSeconds(ops, bytes), m.GroupSeconds(ops, bytes)-m.LatencySec; got != want {
		t.Fatalf("FloorSeconds = %v, want group-latency = %v", got, want)
	}
}

// TestShare: n concurrent actors each see 1/n of the channels and a
// proportionally reduced bandwidth; degenerate n never drops below one
// channel.
func TestShare(t *testing.T) {
	m := NVMe()
	if s := m.Share(1); s != m {
		t.Fatal("Share(1) must return the model unchanged")
	}
	s := m.Share(4)
	if s.Channels != m.Channels/4 {
		t.Fatalf("Share(4).Channels = %d, want %d", s.Channels, m.Channels/4)
	}
	wantBW := m.BytesPerSec * float64(s.Channels) / float64(m.Channels)
	if s.BytesPerSec != wantBW {
		t.Fatalf("Share(4).BytesPerSec = %v, want %v", s.BytesPerSec, wantBW)
	}
	if m.Channels != 16 {
		t.Fatalf("NVMe channels changed: %d", m.Channels) // Share must copy
	}
	if huge := m.Share(1 << 20); huge.Channels != 1 {
		t.Fatalf("oversubscribed Share floor = %d channels, want 1", huge.Channels)
	}
}

// TestSplitOps pins MaxTransfer request splitting at the boundaries.
func TestSplitOps(t *testing.T) {
	m := NVMe() // MaxTransfer 128 KiB
	cases := []struct {
		n    int64
		want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {m.MaxTransfer, 1}, {m.MaxTransfer + 1, 2},
		{10*m.MaxTransfer - 1, 10}, {10 * m.MaxTransfer, 10},
	}
	for _, c := range cases {
		if got := m.SplitOps(c.n); got != c.want {
			t.Fatalf("SplitOps(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
