// Package cache implements the hot-neighbor cache: the complete
// neighbor lists of the highest-degree nodes, pinned in memory under an
// explicit memctl budget. On skewed (R-MAT-like) graphs a small number
// of hub nodes appear in a large fraction of sampled frontiers, so
// caching their lists slashes device traffic the way DiskGNN and GIDS
// report — while the engine's memory story stays honest, because every
// cached byte is charged against the budget.
//
// The cache is strictly an I/O bypass: it stores the same little-endian
// entry bytes the edge file holds, so a consumer that draws its fanout
// indices first and only then consults the cache produces bit-identical
// samples with the cache on or off, at any budget.
package cache

import (
	"fmt"
	"sort"

	"ringsampler/internal/memctl"
)

// Graph is the subset of a dataset the cache builder reads: the node
// count, each node's entry-index range, and raw byte access to the edge
// file. storage.Dataset satisfies it.
type Graph interface {
	NumNodes() int64
	Range(v uint32) (start, end int64)
	ReadAt(p []byte, off int64) (int, error)
}

// Owner is optionally implemented by graphs that hold only a node
// range's bytes (shard datasets). The builders restrict candidates to
// owned nodes — only their bytes are readable locally, and the caches
// are pure I/O bypasses, so membership never affects sampled output.
type Owner interface {
	Owns(v uint32) bool
}

// ownsFn returns g's ownership predicate, or an always-true one.
func ownsFn(g any) func(uint32) bool {
	if o, ok := g.(Owner); ok {
		return o.Owns
	}
	return func(uint32) bool { return true }
}

// EntryBytes is the on-disk size of one neighbor entry (little-endian
// u32), mirrored from the storage layout so this package does not
// depend on it.
const EntryBytes = 4

// nodeOverheadBytes is the per-node bookkeeping charge: the index map
// entry (key + span) plus amortized map internals. Charged against the
// budget alongside the list bytes so the cache cannot hide
// node-proportional memory from memctl.
const nodeOverheadBytes = 48

// span locates one cached node's list inside the flat data buffer.
// n is int64 so a pathologically large list (> 2 GiB of entry bytes)
// cannot silently truncate into a short Lookup slice.
type span struct {
	off int64
	n   int64 // bytes
}

// Hot is an immutable hot-neighbor cache. Safe for concurrent Lookup
// use after Build returns; a nil *Hot is a valid always-miss cache.
type Hot struct {
	index map[uint32]span
	data  []byte
	bytes int64 // cached list bytes (excluding overhead)
}

// Build selects nodes degree-first (ties broken by ascending node id)
// and pins their complete neighbor lists, charging listBytes +
// nodeOverheadBytes per node against budget. Selection stops at the
// first candidate that does not fit: the selected set is a prefix of
// the fixed degree-ordered candidate list, so a larger budget always
// caches a superset of a smaller one — which is what makes device
// traffic provably monotone in the budget for a fixed workload.
func Build(g Graph, budget *memctl.Budget) (*Hot, error) {
	if budget == nil {
		return nil, fmt.Errorf("cache: nil budget")
	}
	numNodes := g.NumNodes()
	if numNodes <= 0 || numNodes > int64(^uint32(0)) {
		return nil, fmt.Errorf("cache: node count %d outside uint32 range", numNodes)
	}
	type cand struct {
		id  uint32
		deg int64
	}
	owns := ownsFn(g)
	cands := make([]cand, 0, numNodes)
	for v := int64(0); v < numNodes; v++ {
		st, en := g.Range(uint32(v))
		if deg := en - st; deg > 0 && owns(uint32(v)) {
			cands = append(cands, cand{id: uint32(v), deg: deg})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].deg != cands[j].deg {
			return cands[i].deg > cands[j].deg
		}
		return cands[i].id < cands[j].id
	})

	// Prefix selection under the budget.
	var picked []cand
	var dataBytes int64
	for _, c := range cands {
		listBytes := c.deg * EntryBytes
		if err := budget.Charge(listBytes + nodeOverheadBytes); err != nil {
			if memctl.IsOOM(err) {
				break
			}
			return nil, err
		}
		picked = append(picked, c)
		dataBytes += listBytes
	}
	h := &Hot{
		index: make(map[uint32]span, len(picked)),
		data:  make([]byte, dataBytes),
		bytes: dataBytes,
	}
	// Fill in file order so the build pass reads the edge file
	// sequentially rather than hopping hub to hub.
	sort.Slice(picked, func(i, j int) bool {
		si, _ := g.Range(picked[i].id)
		sj, _ := g.Range(picked[j].id)
		return si < sj
	})
	var at int64
	for _, c := range picked {
		st, _ := g.Range(c.id)
		n := c.deg * EntryBytes
		if _, err := g.ReadAt(h.data[at:at+n], st*EntryBytes); err != nil {
			return nil, fmt.Errorf("cache: read node %d list: %w", c.id, err)
		}
		h.index[c.id] = span{off: at, n: n}
		at += n
	}
	return h, nil
}

// Lookup returns node v's complete neighbor list as raw little-endian
// entry bytes (EntryBytes per neighbor), or nil when v is not cached.
// The returned slice aliases the cache; callers must not modify it.
func (h *Hot) Lookup(v uint32) []byte {
	if h == nil {
		return nil
	}
	s, ok := h.index[v]
	if !ok {
		return nil
	}
	return h.data[s.off : s.off+s.n]
}

// Nodes returns how many nodes are cached.
func (h *Hot) Nodes() int {
	if h == nil {
		return 0
	}
	return len(h.index)
}

// Bytes returns the cached list bytes (excluding per-node overhead).
func (h *Hot) Bytes() int64 {
	if h == nil {
		return 0
	}
	return h.bytes
}
