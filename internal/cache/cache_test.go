package cache

import (
	"encoding/binary"
	"testing"

	"ringsampler/internal/memctl"
)

// fakeGraph is an in-memory CSR standing in for storage.Dataset.
type fakeGraph struct {
	offsets []int64
	edges   []byte // little-endian u32 entries
}

func (g *fakeGraph) NumNodes() int64 { return int64(len(g.offsets) - 1) }
func (g *fakeGraph) Range(v uint32) (int64, int64) {
	return g.offsets[v], g.offsets[v+1]
}
func (g *fakeGraph) ReadAt(p []byte, off int64) (int, error) {
	return copy(p, g.edges[off:]), nil
}

// buildFake makes a graph where node v has degrees[v] neighbors, each
// entry value encoding (node, position) so cached bytes are checkable.
func buildFake(degrees []int64) *fakeGraph {
	offsets := make([]int64, len(degrees)+1)
	for i, d := range degrees {
		offsets[i+1] = offsets[i] + d
	}
	edges := make([]byte, offsets[len(degrees)]*EntryBytes)
	for v, d := range degrees {
		for j := int64(0); j < d; j++ {
			binary.LittleEndian.PutUint32(edges[(offsets[v]+j)*EntryBytes:], uint32(v)<<16|uint32(j))
		}
	}
	return &fakeGraph{offsets: offsets, edges: edges}
}

// TestBuildDegreeFirstPrefix: selection is degree-first with id
// tie-break, stops at the first candidate that does not fit, and the
// cached bytes are exactly the file bytes.
func TestBuildDegreeFirstPrefix(t *testing.T) {
	// Degrees: node 3 is hottest, then node 1, then 0 and 4 tie, node 2
	// is degree-0 and must never be cached.
	g := buildFake([]int64{4, 10, 0, 20, 4})
	// Budget fits node 3 (80B + overhead) and node 1 (40B + overhead)
	// but not node 0 (16B + overhead): prefix rule stops there even
	// though node 4 would also not fit.
	budget := memctl.New(20*EntryBytes + 10*EntryBytes + 2*nodeOverheadBytes + 8)
	h, err := Build(g, budget)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", h.Nodes())
	}
	if h.Bytes() != 30*EntryBytes {
		t.Fatalf("Bytes = %d, want %d", h.Bytes(), 30*EntryBytes)
	}
	for _, v := range []uint32{0, 2, 4} {
		if h.Lookup(v) != nil {
			t.Fatalf("node %d unexpectedly cached", v)
		}
	}
	for _, v := range []uint32{1, 3} {
		nb := h.Lookup(v)
		st, en := g.Range(v)
		if int64(len(nb)) != (en-st)*EntryBytes {
			t.Fatalf("node %d cached %d bytes, want %d", v, len(nb), (en-st)*EntryBytes)
		}
		for j := st; j < en; j++ {
			got := binary.LittleEndian.Uint32(nb[(j-st)*EntryBytes:])
			want := binary.LittleEndian.Uint32(g.edges[j*EntryBytes:])
			if got != want {
				t.Fatalf("node %d entry %d: cached %#x, file %#x", v, j-st, got, want)
			}
		}
	}
}

// TestBuildBudgetMonotone: a larger budget caches a superset of a
// smaller one (the property the device-byte monotonicity of the
// budget-sweep ablation rests on).
func TestBuildBudgetMonotone(t *testing.T) {
	degrees := make([]int64, 64)
	for i := range degrees {
		degrees[i] = int64((i*37)%29 + 1)
	}
	g := buildFake(degrees)
	var prev map[uint32]bool
	for _, limit := range []int64{200, 400, 800, 1600, 0} {
		h, err := Build(g, memctl.New(limit))
		if err != nil {
			t.Fatal(err)
		}
		cur := make(map[uint32]bool)
		for v := uint32(0); int64(v) < g.NumNodes(); v++ {
			if h.Lookup(v) != nil {
				cur[v] = true
			}
		}
		for v := range prev {
			if !cur[v] {
				t.Fatalf("budget %d dropped node %d cached at the smaller budget", limit, v)
			}
		}
		prev = cur
	}
	// Unlimited budget caches every non-isolated node.
	if len(prev) != 64 {
		t.Fatalf("unlimited budget cached %d nodes, want 64", len(prev))
	}
}

// TestBuildTinyBudget: a budget too small for even the hottest node
// yields a valid empty cache, not an error.
func TestBuildTinyBudget(t *testing.T) {
	g := buildFake([]int64{100, 200})
	h, err := Build(g, memctl.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 0 || h.Bytes() != 0 {
		t.Fatalf("tiny budget cached %d nodes / %d bytes, want empty", h.Nodes(), h.Bytes())
	}
}

// TestNilCacheMisses: a nil *Hot is a valid always-miss cache.
func TestNilCacheMisses(t *testing.T) {
	var h *Hot
	if h.Lookup(7) != nil || h.Nodes() != 0 || h.Bytes() != 0 {
		t.Fatal("nil cache not an always-miss cache")
	}
}

// TestBuildChargesOverhead: the budget is charged for per-node
// bookkeeping, not just list bytes.
func TestBuildChargesOverhead(t *testing.T) {
	g := buildFake([]int64{2, 2})
	budget := memctl.New(2*2*EntryBytes + 2*nodeOverheadBytes)
	h, err := Build(g, budget)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", h.Nodes())
	}
	if budget.Used() != 2*2*EntryBytes+2*nodeOverheadBytes {
		t.Fatalf("budget used %d, want full charge", budget.Used())
	}
	// One byte less and only one node fits.
	h, err = Build(g, memctl.New(2*2*EntryBytes+2*nodeOverheadBytes-1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1 under the reduced budget", h.Nodes())
	}
}
