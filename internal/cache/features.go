package cache

import (
	"fmt"
	"sort"

	"ringsampler/internal/memctl"
)

// FeatureSource is the subset of a dataset the feature-cache builder
// reads: node count, per-node degree (the heat signal), the feature
// record stride, and raw byte access to the feature file.
// storage.Dataset satisfies it.
type FeatureSource interface {
	NumNodes() int64
	Range(v uint32) (start, end int64)
	FeatureStride() int64
	FeatureReadAt(p []byte, off int64) (int, error)
}

// BuildFeatures pins the feature vectors of the highest-degree nodes
// (ties broken by ascending node id) under budget — the second,
// much-larger-byte-per-node cache axis next to Build's neighbor lists.
// Degree is the right heat proxy here too: a node's feature vector is
// fetched whenever it appears in any sampled frontier, and hubs
// dominate frontiers on skewed graphs. Every pinned vector is charged
// stride + nodeOverheadBytes against budget, and selection stops at the
// first candidate that does not fit, so the pinned set is a prefix of
// one fixed order: a larger budget caches a superset of a smaller one,
// making device feature bytes provably monotone non-increasing in the
// budget for a fixed workload.
func BuildFeatures(g FeatureSource, budget *memctl.Budget) (*Hot, error) {
	if budget == nil {
		return nil, fmt.Errorf("cache: nil budget")
	}
	stride := g.FeatureStride()
	if stride <= 0 {
		return nil, fmt.Errorf("cache: feature stride %d must be positive", stride)
	}
	numNodes := g.NumNodes()
	if numNodes <= 0 || numNodes > int64(^uint32(0)) {
		return nil, fmt.Errorf("cache: node count %d outside uint32 range", numNodes)
	}
	type cand struct {
		id  uint32
		deg int64
	}
	// Unlike neighbor lists, every node has a feature vector — degree-0
	// nodes are candidates too (they can appear as layer-0 targets).
	// Shard sources restrict candidates to owned nodes (see Owner).
	owns := ownsFn(g)
	cands := make([]cand, 0, numNodes)
	for v := int64(0); v < numNodes; v++ {
		st, en := g.Range(uint32(v))
		if owns(uint32(v)) {
			cands = append(cands, cand{id: uint32(v), deg: en - st})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].deg != cands[j].deg {
			return cands[i].deg > cands[j].deg
		}
		return cands[i].id < cands[j].id
	})

	// Prefix selection under the budget.
	var picked []uint32
	for _, c := range cands {
		if err := budget.Charge(stride + nodeOverheadBytes); err != nil {
			if memctl.IsOOM(err) {
				break
			}
			return nil, err
		}
		picked = append(picked, c.id)
	}
	h := &Hot{
		index: make(map[uint32]span, len(picked)),
		data:  make([]byte, int64(len(picked))*stride),
		bytes: int64(len(picked)) * stride,
	}
	// Fill in node-id order (= file order for the fixed-stride layout)
	// so the build pass reads the feature file sequentially.
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	var at int64
	for _, id := range picked {
		if _, err := g.FeatureReadAt(h.data[at:at+stride], int64(id)*stride); err != nil {
			return nil, fmt.Errorf("cache: read node %d features: %w", id, err)
		}
		h.index[id] = span{off: at, n: stride}
		at += stride
	}
	return h, nil
}
