package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFeatureDataset builds a tiny featureful dataset by hand: the
// 4-node fuzz graph plus a features.bin whose record for node v is
// [v*dim, v*dim+1, ...) as little-endian f32 bit patterns — distinct
// per node, so a read that lands on the wrong record is caught.
func writeFeatureDataset(t testing.TB, dim int) (dir string, feats []byte) {
	t.Helper()
	dir = t.TempDir()
	w, err := NewWriter(dir, "feat", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 2}} {
		if err := w.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	feats = make([]byte, 4*dim*FeatureElemBytes)
	for i := 0; i < 4*dim; i++ {
		binary.LittleEndian.PutUint32(feats[i*FeatureElemBytes:], uint32(i))
	}
	featPath := filepath.Join(dir, FeaturesFile)
	if err := os.WriteFile(featPath, feats, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := ChecksumFile(featPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetFeatures(dim, int64(len(feats)), sum); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return dir, feats
}

func TestOpenFeaturesRoundTrip(t *testing.T) {
	const dim = 3
	dir, feats := writeFeatureDataset(t, dim)
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !ds.HasFeatures() {
		t.Fatal("dataset with features.bin opened as edge-only")
	}
	if got := ds.FeatureDim(); got != dim {
		t.Fatalf("FeatureDim = %d, want %d", got, dim)
	}
	if got, want := ds.FeatureStride(), int64(dim*FeatureElemBytes); got != want {
		t.Fatalf("FeatureStride = %d, want %d", got, want)
	}
	stride := ds.FeatureStride()
	buf := make([]byte, stride)
	for v := int64(0); v < ds.NumNodes(); v++ {
		if _, err := ds.FeatureReadAt(buf, v*stride); err != nil {
			t.Fatalf("FeatureReadAt(node %d): %v", v, err)
		}
		if want := feats[v*stride : (v+1)*stride]; !bytes.Equal(buf, want) {
			t.Fatalf("node %d feature bytes = %x, want %x", v, buf, want)
		}
	}
}

func TestOpenEdgeOnlyHasNoFeatures(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "plain", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]uint32{{0, 1}, {2, 3}} {
		if err := w.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.HasFeatures() || ds.FeatureDim() != 0 || ds.FeatureStride() != 0 {
		t.Fatalf("edge-only dataset reports features: has=%v dim=%d stride=%d",
			ds.HasFeatures(), ds.FeatureDim(), ds.FeatureStride())
	}
	if _, err := ds.FeatureReadAt(make([]byte, 4), 0); err == nil {
		t.Fatal("FeatureReadAt on an edge-only dataset did not error")
	}
}

// TestOpenFeaturesRejectsCorruption applies each single-point corruption
// a capture could suffer and asserts open-time validation refuses it
// with a diagnostic naming the problem — never a clean open that would
// surface as wrong vectors mid-epoch.
func TestOpenFeaturesRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr string
	}{
		{"truncated feature file", func(t *testing.T, dir string) {
			p := filepath.Join(dir, FeaturesFile)
			b, _ := os.ReadFile(p)
			if err := os.WriteFile(p, b[:len(b)-1], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "truncated capture"},
		{"flipped feature byte", func(t *testing.T, dir string) {
			p := filepath.Join(dir, FeaturesFile)
			b, _ := os.ReadFile(p)
			b[len(b)/2] ^= 0xff
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "corrupt capture"},
		{"missing feature file", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, FeaturesFile)); err != nil {
				t.Fatal(err)
			}
		}, "stat feature file"},
		{"stride mismatch", func(t *testing.T, dir string) {
			editManifest(t, dir, `"featBytes": 64`, `"featBytes": 60`)
		}, "stride mismatch"},
		{"dim zero with feature bytes", func(t *testing.T, dir string) {
			editManifest(t, dir, `"featureDim": 4`, `"featureDim": 0`)
		}, "inconsistent feature fields"},
		{"negative dim", func(t *testing.T, dir string) {
			editManifest(t, dir, `"featureDim": 4`, `"featureDim": -4`)
		}, "negative featureDim"},
		{"checksum flip", func(t *testing.T, dir string) {
			man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(man, []byte(`"featChecksum": "`))
			if i < 0 {
				t.Fatal("no featChecksum in manifest")
			}
			c := &man[i+len(`"featChecksum": "`)]
			if *c == 'f' {
				*c = '0'
			} else {
				*c = 'f'
			}
			if err := os.WriteFile(filepath.Join(dir, ManifestFile), man, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "checksum"},
		{"missing checksum", func(t *testing.T, dir string) {
			man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(man, []byte(`"featChecksum": "`))
			j := bytes.IndexByte(man[i+len(`"featChecksum": "`):], '"')
			out := append([]byte(nil), man[:i+len(`"featChecksum": "`)]...)
			out = append(out, man[i+len(`"featChecksum": "`)+j:]...)
			if err := os.WriteFile(filepath.Join(dir, ManifestFile), out, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "no featChecksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := writeFeatureDataset(t, 4)
			tc.corrupt(t, dir)
			ds, err := Open(dir)
			if err == nil {
				ds.Close()
				t.Fatalf("Open accepted a dataset with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func editManifest(t *testing.T, dir, old, new string) {
	t.Helper()
	p := filepath.Join(dir, ManifestFile)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(old)) {
		t.Fatalf("manifest does not contain %q:\n%s", old, b)
	}
	b = bytes.Replace(b, []byte(old), []byte(new), 1)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSetFeaturesValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetFeatures(0, 0, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetFeatures accepted dim 0")
	}
	if err := w.SetFeatures(-1, 16, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetFeatures accepted negative dim")
	}
	if err := w.SetFeatures(2, 31, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetFeatures accepted featBytes that disagree with numNodes*dim*4")
	}
	if err := w.SetFeatures(2, 32, "deadbeefdeadbeef"); err != nil {
		t.Fatalf("SetFeatures rejected consistent fields: %v", err)
	}
}

func TestChecksumFile(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	content := bytes.Repeat([]byte{0xab, 0x12, 0x00, 0x7f}, 5000)
	for _, p := range []string{p1, p2} {
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := ChecksumFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ChecksumFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("identical content hashed differently: %s vs %s", s1, s2)
	}
	if len(s1) != 16 {
		t.Fatalf("checksum %q is not fixed-width 16 hex chars", s1)
	}
	content[0] ^= 1
	if err := os.WriteFile(p2, content, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := ChecksumFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("single-bit flip did not change the checksum")
	}
	if _, err := ChecksumFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("ChecksumFile of a missing path did not error")
	}
}

// FuzzOpenFeatures extends FuzzOpen's contract to the fourth file:
// arbitrary manifest/offsets/edges/features byte quadruples must either
// be rejected at open or yield a dataset whose feature surface is
// internally consistent — never a panic, and never an accepted dataset
// whose declared stride escapes the feature file. Seed corpus
// (testdata/fuzz/FuzzOpenFeatures) covers the valid featureful dataset
// plus each targeted corruption; explore further with
// `go test -fuzz=FuzzOpenFeatures ./internal/storage`.
func FuzzOpenFeatures(f *testing.F) {
	man, off, edges, feats := validFeatureDatasetBytes(f)
	f.Add(man, off, edges, feats)
	f.Add(man, off, edges, feats[:len(feats)-3])                                   // truncated feature file
	f.Add(man, off, edges, flipByte(feats, 7))                                     // checksum mismatch
	f.Add(swapField(man, `"featBytes": 64`, `"featBytes": 60`), off, edges, feats) // stride mismatch
	f.Add(swapField(man, `"featureDim": 4`, `"featureDim": 0`), off, edges, feats) // dim 0, featBytes kept
	f.Add(swapField(man, `"featureDim": 4`, `"featureDim": -4`), off, edges, feats)
	f.Add(swapField(man, `"featureDim": 4`, `"featureDim": 1048577`), off, edges, feats)
	f.Add(man, off, edges, []byte{})

	f.Fuzz(func(t *testing.T, man, off, edges, feats []byte) {
		dir := t.TempDir()
		for _, w := range []struct {
			name string
			data []byte
		}{
			{ManifestFile, man},
			{OffsetsFile, off},
			{EdgesFile, edges},
			{FeaturesFile, feats},
		} {
			if err := os.WriteFile(filepath.Join(dir, w.name), w.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := Open(dir)
		if err != nil {
			return // rejected, as corrupted inputs should be
		}
		defer ds.Close()
		if !ds.HasFeatures() {
			if ds.FeatureDim() != 0 || ds.FeatureStride() != 0 {
				t.Fatalf("edge-only dataset reports dim %d / stride %d", ds.FeatureDim(), ds.FeatureStride())
			}
			return
		}
		// Accepted featureful datasets must be internally consistent:
		// positive dim, matching stride, and every node's record readable
		// in full from the actual file.
		dim := ds.FeatureDim()
		stride := ds.FeatureStride()
		if dim <= 0 || stride != int64(dim)*FeatureElemBytes {
			t.Fatalf("accepted dataset has dim %d / stride %d", dim, stride)
		}
		if int64(len(feats)) != ds.NumNodes()*stride {
			t.Fatalf("accepted feature file of %d bytes for %d nodes at stride %d",
				len(feats), ds.NumNodes(), stride)
		}
		buf := make([]byte, stride)
		last := ds.NumNodes() - 1
		if _, err := ds.FeatureReadAt(buf, last*stride); err != nil {
			t.Fatalf("accepted dataset cannot read node %d's record: %v", last, err)
		}
	})
}

// validFeatureDatasetBytes builds the canonical tiny featureful dataset
// and returns its four files' bytes.
func validFeatureDatasetBytes(f *testing.F) (man, off, edges, feats []byte) {
	f.Helper()
	dir, _ := writeFeatureDataset(f, 4)
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	return read(ManifestFile), read(OffsetsFile), read(EdgesFile), read(FeaturesFile)
}

func swapField(man []byte, old, new string) []byte {
	return bytes.Replace(append([]byte(nil), man...), []byte(old), []byte(new), 1)
}
