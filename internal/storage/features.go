package storage

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// Feature-store layout (DESIGN.md §10): features.bin is a flat array of
// NumNodes fixed-stride records, record v at byte v*stride, where
// stride = FeatureDim * FeatureElemBytes. Like the edge file it is raw
// little-endian bytes with no framing — the offset IS the index — so
// the same coalesced-run ring machinery reads both.
const (
	FeaturesFile = "features.bin"

	FeatureElemBytes = 4 // one little-endian f32 feature value

	// maxFeatureDim bounds the per-node vector width accepted at open.
	// Generous for any real embedding table, small enough that
	// NumNodes*stride arithmetic cannot overflow int64 for any node
	// count the manifest accepts.
	maxFeatureDim = 1 << 20
)

// ChecksumFile streams path through FNV-1a 64 and returns the
// fixed-width hex digest recorded in (and verified against) the
// manifest's featChecksum field.
func ChecksumFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("storage: open %s for checksum: %w", path, err)
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<16)); err != nil {
		return "", fmt.Errorf("storage: checksum %s: %w", path, err)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// validateFeatures checks the manifest's feature fields against the
// directory contents with the same strictness as the edge-file checks:
// a featureful dataset whose file is truncated, whose stride disagrees
// with the manifest, or whose bytes fail the checksum is rejected at
// open rather than surfacing as short reads or silently wrong vectors
// mid-epoch. Returns the feature file path for a featureful dataset, or
// "" for a valid edge-only one. [lo, hi) is the owned node range — the
// local file holds exactly those nodes' records ([0, NumNodes) when
// unsharded, so the sizes reduce to the historical whole-file checks).
func validateFeatures(dir string, man Manifest, lo, hi int64) (string, error) {
	if man.FeatureDim < 0 {
		return "", fmt.Errorf("storage: manifest %s has negative featureDim %d", dir, man.FeatureDim)
	}
	if man.FeatureDim == 0 {
		if man.FeatBytes != 0 || man.FeatChecksum != "" {
			return "", fmt.Errorf("storage: manifest %s has featureDim 0 but featBytes %d / checksum %q — inconsistent feature fields",
				dir, man.FeatBytes, man.FeatChecksum)
		}
		return "", nil
	}
	if man.FeatureDim > maxFeatureDim {
		return "", fmt.Errorf("storage: manifest %s featureDim %d exceeds limit %d", dir, man.FeatureDim, maxFeatureDim)
	}
	stride := int64(man.FeatureDim) * FeatureElemBytes
	want := (hi - lo) * stride
	if man.FeatBytes != want {
		return "", fmt.Errorf("storage: manifest %s featBytes %d != ownedNodes*dim*%d = %d (stride mismatch)",
			dir, man.FeatBytes, FeatureElemBytes, want)
	}
	if man.FeatChecksum == "" {
		return "", fmt.Errorf("storage: manifest %s declares %d feature dims but no featChecksum", dir, man.FeatureDim)
	}
	path := filepath.Join(dir, FeaturesFile)
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("storage: stat feature file: %w", err)
	}
	if fi.Size() != want {
		return "", fmt.Errorf("storage: feature file %s is %d bytes, manifest expects %d (truncated capture?)", path, fi.Size(), want)
	}
	sum, err := ChecksumFile(path)
	if err != nil {
		return "", err
	}
	if sum != man.FeatChecksum {
		return "", fmt.Errorf("storage: feature file %s checksum %s != manifest %s (corrupt capture?)", path, sum, man.FeatChecksum)
	}
	return path, nil
}

// HasFeatures reports whether the dataset carries a feature file.
func (d *Dataset) HasFeatures() bool { return d.featF != nil }

// FeatureDim returns the per-node feature vector width (f32 values), or
// 0 for an edge-only dataset.
func (d *Dataset) FeatureDim() int { return d.man.FeatureDim }

// FeatureStride returns the on-disk byte stride of one node's feature
// record (FeatureDim * FeatureElemBytes); node v's vector starts at
// byte v*stride of features.bin. 0 for an edge-only dataset.
func (d *Dataset) FeatureStride() int64 {
	return int64(d.man.FeatureDim) * FeatureElemBytes
}

// FeatureFile exposes the feature file for ring backends that read it
// directly (nil for an edge-only dataset). When FeatureAlign() > 0 the
// handle is O_DIRECT and ring reads through it must use aligned
// offsets, lengths, and memory.
func (d *Dataset) FeatureFile() *os.File { return d.featF }

// FeatureAlign returns the O_DIRECT transfer granularity of the feature
// file handle, or 0 when the handle is buffered (or absent).
func (d *Dataset) FeatureAlign() int { return d.featAlign }

// FeatureReadAt reads raw feature-file bytes at the given GLOBAL byte
// offset (node id * stride over the whole graph) — the ringless access
// path the feature-cache builder uses, with the same aligned bounce
// handling as ReadAt when the handle is O_DIRECT. On a shard dataset
// the offset is translated into the local slice of owned nodes'
// records, mirroring ReadAt.
func (d *Dataset) FeatureReadAt(p []byte, off int64) (int, error) {
	if d.featF == nil {
		return 0, fmt.Errorf("storage: dataset %s has no feature file", d.dir)
	}
	return readAtMaybeDirect(d.featF, d.featAlign, p, off-d.shardLo*d.FeatureStride())
}
