//go:build linux

package storage

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// openDirect opens path with O_DIRECT and empirically probes the
// required alignment: a 512-byte aligned read is attempted first (the
// common logical block size), then 4096 (4Kn devices and some
// filesystems). The filesystem rejects a misaligned O_DIRECT read with
// EINVAL at issue time, so a successful probe read proves the
// granularity. Returns the open file and the working alignment.
func openDirect(path string, size int64) (*os.File, int, error) {
	f, err := os.OpenFile(path, os.O_RDONLY|syscall.O_DIRECT, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: open O_DIRECT: %w", err)
	}
	if size == 0 {
		// Nothing to read through it; any alignment claim would be
		// unverifiable. Report the conventional minimum.
		return f, 512, nil
	}
	var lastErr error
	for _, align := range []int{512, 4096} {
		buf := AlignedSlice(align, align)
		n, rerr := f.ReadAt(buf, 0)
		if n > 0 || rerr == nil || rerr == io.EOF {
			return f, align, nil
		}
		lastErr = rerr
	}
	f.Close()
	return nil, 0, fmt.Errorf("storage: O_DIRECT alignment probe failed at 512 and 4096: %w", lastErr)
}
