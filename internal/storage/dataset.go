package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Dataset is an opened on-disk graph: the manifest, the in-memory
// offset index, and the edge file handle the sampler reads through.
// The edge data itself stays on disk; LoadEdges pulls it into memory
// only for the modeled experiments (which need closed-form access) and
// caches it.
//
// Dataset is safe for concurrent read use: the offset index is
// immutable after Open and reads go through (*os.File).ReadAt.
type Dataset struct {
	dir     string
	man     Manifest
	offsets []int64
	f       *os.File

	// shardLo/shardHi is the owned node range [lo, hi); [0, NumNodes)
	// for an unsharded dataset. entryBase is the global entry index of
	// the first entry present in the local edge file (offsets[shardLo]),
	// so local byte offset = (globalEntry - entryBase) * EntryBytes.
	shardLo   int64
	shardHi   int64
	entryBase int64

	// directAlign is the O_DIRECT transfer granularity (offset, length,
	// and memory must all be multiples of it); 0 means the file is open
	// buffered and reads have no alignment constraint.
	directAlign int
	// directErr records why a requested O_DIRECT open fell back to
	// buffered, so callers can log the downgrade instead of silently
	// benchmarking the page cache.
	directErr error

	// featF is the feature file handle (nil for edge-only datasets);
	// featAlign is its O_DIRECT granularity, probed independently of the
	// edge file's.
	featF     *os.File
	featAlign int

	edgesOnce sync.Once
	edges     []uint32
	edgesErr  error

	// labelPath is the validated label file (empty for unlabeled
	// datasets); the decoded array is lazily loaded by Labels.
	labelPath  string
	labelsOnce sync.Once
	labels     []uint32
	labelsErr  error
}

// Manifest re-exported to avoid forcing every caller to import graph.
type Manifest = manifestAlias

// OpenOptions configures how the edge file is opened.
type OpenOptions struct {
	// Direct opens the edge file with O_DIRECT, bypassing the page cache
	// so device reads are measured (and counted) honestly. The required
	// alignment is probed empirically (512 then 4096); if O_DIRECT or
	// the probe fails, Open falls back to a buffered handle and records
	// the reason in DirectFallback.
	Direct bool
}

// Open validates and opens the dataset in dir with a buffered edge-file
// handle. Shorthand for OpenWith(dir, OpenOptions{}).
func Open(dir string) (*Dataset, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenWith validates and opens the dataset in dir. Validation is strict —
// a truncated or inconsistent directory is rejected here rather than
// surfacing as short reads mid-epoch.
//
// A shard dataset (manifest NumShards > 0, DESIGN.md §12) carries the
// full offset index but only the owned node range's slice of the edge
// and feature files; the size checks then apply to the local slices and
// reads are translated by the slice base.
func OpenWith(dir string, opts OpenOptions) (*Dataset, error) {
	man, err := loadManifest(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	if man.NumNodes <= 0 || man.NumEdges < 0 {
		return nil, fmt.Errorf("storage: manifest %s has invalid counts (%d nodes, %d edges)", dir, man.NumNodes, man.NumEdges)
	}
	shardLo, shardHi := int64(0), man.NumNodes
	if man.NumShards > 0 {
		if man.ShardIndex < 0 || man.ShardIndex >= man.NumShards {
			return nil, fmt.Errorf("storage: manifest %s shard index %d out of range [0,%d)", dir, man.ShardIndex, man.NumShards)
		}
		if man.ShardLo < 0 || man.ShardLo > man.ShardHi || man.ShardHi > man.NumNodes {
			return nil, fmt.Errorf("storage: manifest %s shard range [%d,%d) invalid for %d nodes", dir, man.ShardLo, man.ShardHi, man.NumNodes)
		}
		shardLo, shardHi = man.ShardLo, man.ShardHi
	}
	// The offset index is read before the edge-file size check because a
	// shard's expected edge bytes are offsets[hi]-offsets[lo] entries; for
	// an unsharded dataset the two orderings accept/reject identically
	// (offsets must span exactly [0, NumEdges]).
	offPath := filepath.Join(dir, OffsetsFile)
	offsets, err := readOffsets(offPath, man.NumNodes)
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 || offsets[man.NumNodes] != man.NumEdges {
		return nil, fmt.Errorf("storage: offset index %s spans [%d,%d], want [0,%d]", offPath, offsets[0], offsets[man.NumNodes], man.NumEdges)
	}
	for v := int64(0); v < man.NumNodes; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("storage: offset index %s not monotone at node %d", offPath, v)
		}
	}
	wantEdgeBytes := (offsets[shardHi] - offsets[shardLo]) * EntryBytes
	if man.BinBytes != wantEdgeBytes {
		return nil, fmt.Errorf("storage: manifest %s binBytes %d != local entries*%d = %d", dir, man.BinBytes, EntryBytes, wantEdgeBytes)
	}
	edgePath := filepath.Join(dir, EdgesFile)
	fi, err := os.Stat(edgePath)
	if err != nil {
		return nil, fmt.Errorf("storage: stat edge file: %w", err)
	}
	if fi.Size() != wantEdgeBytes {
		return nil, fmt.Errorf("storage: edge file %s is %d bytes, manifest expects %d (truncated capture?)", edgePath, fi.Size(), wantEdgeBytes)
	}
	featPath, err := validateFeatures(dir, man, shardLo, shardHi)
	if err != nil {
		return nil, err
	}
	labelPath, err := validateLabels(dir, man)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		dir: dir, man: man, offsets: offsets,
		shardLo: shardLo, shardHi: shardHi, entryBase: offsets[shardLo],
		labelPath: labelPath,
	}
	if featPath != "" {
		d.featF, d.featAlign, err = openMaybeDirect(featPath, man.FeatBytes, opts.Direct)
		if err != nil {
			return nil, fmt.Errorf("storage: open feature file: %w", err)
		}
	}
	if opts.Direct {
		f, align, derr := openDirect(edgePath, fi.Size())
		if derr == nil {
			d.f = f
			d.directAlign = align
			return d, nil
		}
		d.directErr = derr
	}
	f, err := os.Open(edgePath)
	if err != nil {
		d.Close()
		return nil, fmt.Errorf("storage: open edge file: %w", err)
	}
	d.f = f
	return d, nil
}

// openMaybeDirect opens path O_DIRECT when direct is requested and the
// probe succeeds, falling back to a buffered handle otherwise (align 0).
func openMaybeDirect(path string, size int64, direct bool) (*os.File, int, error) {
	if direct {
		if f, align, err := openDirect(path, size); err == nil {
			return f, align, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	return f, 0, nil
}

func readOffsets(path string, numNodes int64) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read offset index: %w", err)
	}
	want := (numNodes + 1) * OffsetBytes
	if int64(len(data)) != want {
		return nil, fmt.Errorf("storage: offset index %s is %d bytes, want %d (truncated capture?)", path, len(data), want)
	}
	offsets := make([]int64, numNodes+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(data[i*OffsetBytes:]))
	}
	return offsets, nil
}

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// Manifest returns the dataset manifest.
func (d *Dataset) Manifest() Manifest { return d.man }

// NumNodes returns the node count.
func (d *Dataset) NumNodes() int64 { return d.man.NumNodes }

// NumEdges returns the edge count.
func (d *Dataset) NumEdges() int64 { return d.man.NumEdges }

// Range returns the half-open entry-index range of node v's neighbors
// in the edge file (paper Fig 2). Byte offsets are index*EntryBytes.
func (d *Dataset) Range(v uint32) (start, end int64) {
	return d.offsets[v], d.offsets[v+1]
}

// Degree returns node v's out-degree.
func (d *Dataset) Degree(v uint32) int64 {
	return d.offsets[v+1] - d.offsets[v]
}

// IsSharded reports whether this dataset is one node-range shard of a
// partitioned graph (DESIGN.md §12). Range/Degree still answer for
// every node (the offset index is global); only the edge and feature
// BYTES of non-owned nodes are absent.
func (d *Dataset) IsSharded() bool { return d.man.NumShards > 0 }

// NumShards returns the partition width (0 for an unsharded dataset).
func (d *Dataset) NumShards() int { return d.man.NumShards }

// ShardIndex returns this shard's position in the partition (0 for an
// unsharded dataset).
func (d *Dataset) ShardIndex() int { return d.man.ShardIndex }

// ShardRange returns the owned node range [lo, hi); [0, NumNodes) for
// an unsharded dataset.
func (d *Dataset) ShardRange() (lo, hi int64) { return d.shardLo, d.shardHi }

// Owns reports whether node v's edge list (and feature vector) is
// present in this dataset's local files. Always true when unsharded.
func (d *Dataset) Owns(v uint32) bool {
	return int64(v) >= d.shardLo && int64(v) < d.shardHi
}

// EntryBase returns the global entry index of the first edge entry in
// the local edge file (0 when unsharded). Ring consumers that plan
// reads in global entry coordinates subtract it before issuing.
func (d *Dataset) EntryBase() int64 { return d.entryBase }

// File exposes the edge file for ring backends that read it directly.
// When DirectAlign() > 0 the handle is O_DIRECT: ring reads through it
// must use aligned offsets, lengths, and memory.
func (d *Dataset) File() *os.File { return d.f }

// DirectAlign returns the O_DIRECT transfer granularity of the edge
// file handle, or 0 when the handle is buffered and reads are
// unconstrained.
func (d *Dataset) DirectAlign() int { return d.directAlign }

// DirectFallback returns why a requested O_DIRECT open fell back to a
// buffered handle (nil when O_DIRECT is active or was never requested).
func (d *Dataset) DirectFallback() error { return d.directErr }

// ReadAt reads raw edge-file bytes at the given GLOBAL byte offset
// (entry index * EntryBytes over the whole graph). It is the access
// path for consumers that want file bytes without a ring — the
// hot-neighbor cache builder reads each pinned node's list through it.
// On a shard dataset the offset is translated into the local slice, so
// callers address owned nodes exactly as they would on the full
// dataset; reads outside the owned slice fail like any out-of-file
// read. On an O_DIRECT handle, arbitrary offsets and lengths are
// served through an aligned bounce buffer, so callers stay oblivious
// to the alignment constraint.
func (d *Dataset) ReadAt(p []byte, off int64) (int, error) {
	return readAtMaybeDirect(d.f, d.directAlign, p, off-d.entryBase*EntryBytes)
}

// readAtMaybeDirect serves an arbitrary (offset, length) read from f,
// bouncing through an aligned buffer when the handle is O_DIRECT.
func readAtMaybeDirect(f *os.File, align int, p []byte, off int64) (int, error) {
	if align == 0 || len(p) == 0 {
		return f.ReadAt(p, off)
	}
	lo := AlignDown(off, align)
	hi := AlignUp(off+int64(len(p)), align)
	buf := AlignedSlice(int(hi-lo), align)
	n, err := f.ReadAt(buf, lo)
	got := int64(n) - (off - lo)
	if got < 0 {
		got = 0
	}
	if got > int64(len(p)) {
		got = int64(len(p))
	}
	copy(p[:got], buf[off-lo:])
	if int(got) == len(p) {
		// The aligned over-read may have hit EOF past the requested
		// range; the caller's read is still complete.
		return len(p), nil
	}
	if err == nil {
		err = io.EOF
	}
	return int(got), err
}

// LoadEdges reads the whole edge file into memory (cached after the
// first call). Only the modeled experiments use this; the real engine
// never does.
func (d *Dataset) LoadEdges() ([]uint32, error) {
	if d.IsSharded() {
		return nil, fmt.Errorf("storage: LoadEdges on shard %d/%d of %s: modeled experiments need the whole edge file", d.man.ShardIndex, d.man.NumShards, d.dir)
	}
	d.edgesOnce.Do(func() {
		data, err := os.ReadFile(filepath.Join(d.dir, EdgesFile))
		if err != nil {
			d.edgesErr = fmt.Errorf("storage: load edges: %w", err)
			return
		}
		edges := make([]uint32, len(data)/EntryBytes)
		for i := range edges {
			edges[i] = binary.LittleEndian.Uint32(data[i*EntryBytes:])
		}
		d.edges = edges
	})
	return d.edges, d.edgesErr
}

// Close releases the edge and feature file handles.
func (d *Dataset) Close() error {
	var err error
	if d.f != nil {
		err = d.f.Close()
		d.f = nil
	}
	if d.featF != nil {
		if ferr := d.featF.Close(); err == nil {
			err = ferr
		}
		d.featF = nil
	}
	return err
}
