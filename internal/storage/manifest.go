package storage

import "ringsampler/internal/graph"

// manifestAlias lets the rest of the repo say storage.Manifest while
// the schema itself lives with the graph plumbing.
type manifestAlias = graph.Manifest

func loadManifest(path string) (graph.Manifest, error) {
	return graph.LoadManifest(path)
}
