package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLabeledDataset builds a tiny labeled dataset by hand: the 4-node
// fuzz graph plus a labels.bin assigning node v class v%classes —
// distinct per node modulo classes, every value in range.
func writeLabeledDataset(t testing.TB, classes int) (dir string, labs []byte) {
	t.Helper()
	dir = t.TempDir()
	w, err := NewWriter(dir, "lab", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 2}} {
		if err := w.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	labs = make([]byte, 4*LabelBytes)
	for v := 0; v < 4; v++ {
		binary.LittleEndian.PutUint32(labs[v*LabelBytes:], uint32(v%classes))
	}
	labPath := filepath.Join(dir, LabelsFile)
	if err := os.WriteFile(labPath, labs, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := ChecksumFile(labPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetLabels(classes, sum); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return dir, labs
}

func TestOpenLabelsRoundTrip(t *testing.T) {
	const classes = 3
	dir, _ := writeLabeledDataset(t, classes)
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !ds.HasLabels() {
		t.Fatal("dataset with labels.bin opened as unlabeled")
	}
	if got := ds.NumClasses(); got != classes {
		t.Fatalf("NumClasses = %d, want %d", got, classes)
	}
	labels, err := ds.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(labels)) != ds.NumNodes() {
		t.Fatalf("Labels() has %d entries for %d nodes", len(labels), ds.NumNodes())
	}
	for v, lab := range labels {
		if want := uint32(v % classes); lab != want {
			t.Fatalf("label[%d] = %d, want %d", v, lab, want)
		}
	}
	// Second call returns the cached array.
	again, err := ds.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &labels[0] {
		t.Fatal("Labels() reloaded instead of returning the cached array")
	}
}

func TestOpenUnlabeledHasNoLabels(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "plain", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.HasLabels() || ds.NumClasses() != 0 {
		t.Fatalf("unlabeled dataset reports labels: has=%v classes=%d", ds.HasLabels(), ds.NumClasses())
	}
	if _, err := ds.Labels(); err == nil {
		t.Fatal("Labels() on an unlabeled dataset did not error")
	}
}

// TestOpenLabelsRejectsCorruption applies each single-point corruption
// a labeled capture could suffer and asserts open-time validation
// refuses it with a diagnostic naming the problem — mirroring the
// feature corruption suite; a clean open would surface as silently
// wrong supervision mid-training.
func TestOpenLabelsRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr string
	}{
		{"truncated label file", func(t *testing.T, dir string) {
			p := filepath.Join(dir, LabelsFile)
			b, _ := os.ReadFile(p)
			if err := os.WriteFile(p, b[:len(b)-1], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "truncated capture"},
		{"flipped low label byte", func(t *testing.T, dir string) {
			// Flips within the class range (0..2 -> small values), so the
			// checksum — not the range scan — must catch it.
			p := filepath.Join(dir, LabelsFile)
			b, _ := os.ReadFile(p)
			b[0] ^= 0x01
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "corrupt capture"},
		{"out-of-range label", func(t *testing.T, dir string) {
			// Writes a huge class id AND fixes the checksum, so only the
			// value-range scan can reject it.
			p := filepath.Join(dir, LabelsFile)
			b, _ := os.ReadFile(p)
			binary.LittleEndian.PutUint32(b[LabelBytes:], 0xdead)
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			sum, err := ChecksumFile(p)
			if err != nil {
				t.Fatal(err)
			}
			man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(man, []byte(`"labelChecksum": "`))
			if i < 0 {
				t.Fatal("no labelChecksum in manifest")
			}
			i += len(`"labelChecksum": "`)
			copy(man[i:i+16], sum)
			if err := os.WriteFile(filepath.Join(dir, ManifestFile), man, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "out of range"},
		{"missing label file", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, LabelsFile)); err != nil {
				t.Fatal(err)
			}
		}, "stat label file"},
		{"numClasses zero with checksum", func(t *testing.T, dir string) {
			editManifest(t, dir, `"numClasses": 3`, `"numClasses": 0`)
		}, "inconsistent label fields"},
		{"negative numClasses", func(t *testing.T, dir string) {
			editManifest(t, dir, `"numClasses": 3`, `"numClasses": -3`)
		}, "negative numClasses"},
		{"numClasses over limit", func(t *testing.T, dir string) {
			editManifest(t, dir, `"numClasses": 3`, `"numClasses": 1048577`)
		}, "exceeds limit"},
		{"numClasses mismatch", func(t *testing.T, dir string) {
			// Shrinking the class count makes node 2's label (class 2) out
			// of range — the scan catches a manifest/file disagreement.
			editManifest(t, dir, `"numClasses": 3`, `"numClasses": 2`)
		}, "out of range"},
		{"checksum flip", func(t *testing.T, dir string) {
			man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(man, []byte(`"labelChecksum": "`))
			if i < 0 {
				t.Fatal("no labelChecksum in manifest")
			}
			c := &man[i+len(`"labelChecksum": "`)]
			if *c == 'f' {
				*c = '0'
			} else {
				*c = 'f'
			}
			if err := os.WriteFile(filepath.Join(dir, ManifestFile), man, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "checksum"},
		{"missing checksum", func(t *testing.T, dir string) {
			man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(man, []byte(`"labelChecksum": "`))
			j := bytes.IndexByte(man[i+len(`"labelChecksum": "`):], '"')
			out := append([]byte(nil), man[:i+len(`"labelChecksum": "`)]...)
			out = append(out, man[i+len(`"labelChecksum": "`)+j:]...)
			if err := os.WriteFile(filepath.Join(dir, ManifestFile), out, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "no labelChecksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := writeLabeledDataset(t, 3)
			tc.corrupt(t, dir)
			ds, err := Open(dir)
			if err == nil {
				ds.Close()
				t.Fatalf("Open accepted a dataset with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSetLabelsValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetLabels(0, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetLabels accepted 0 classes")
	}
	if err := w.SetLabels(1, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetLabels accepted 1 class")
	}
	if err := w.SetLabels(maxNumClasses+1, "deadbeefdeadbeef"); err == nil {
		t.Fatal("SetLabels accepted a class count over the limit")
	}
	if err := w.SetLabels(2, "deadbeefdeadbeef"); err != nil {
		t.Fatalf("SetLabels rejected consistent fields: %v", err)
	}
}

// FuzzOpenLabels extends the FuzzOpen contract to the label file:
// arbitrary manifest/offsets/edges/labels byte quadruples must either
// be rejected at open or yield a dataset whose label surface is
// internally consistent — never a panic, and never an accepted label
// array with a class id at or above NumClasses. Seed corpus
// (testdata/fuzz/FuzzOpenLabels) covers the valid labeled dataset plus
// each targeted corruption; explore further with
// `go test -fuzz=FuzzOpenLabels ./internal/storage`.
func FuzzOpenLabels(f *testing.F) {
	man, off, edges, labs := validLabeledDatasetBytes(f)
	f.Add(man, off, edges, labs)
	f.Add(man, off, edges, labs[:len(labs)-3])                                          // truncated label file
	f.Add(man, off, edges, flipByte(labs, 1))                                           // checksum mismatch
	f.Add(swapField(man, `"numClasses": 3`, `"numClasses": 0`), off, edges, labs)       // classes 0, checksum kept
	f.Add(swapField(man, `"numClasses": 3`, `"numClasses": -3`), off, edges, labs)      // negative classes
	f.Add(swapField(man, `"numClasses": 3`, `"numClasses": 2`), off, edges, labs)       // label out of shrunk range
	f.Add(swapField(man, `"numClasses": 3`, `"numClasses": 1048577`), off, edges, labs) // over the limit
	f.Add(man, off, edges, []byte{})

	f.Fuzz(func(t *testing.T, man, off, edges, labs []byte) {
		dir := t.TempDir()
		for _, w := range []struct {
			name string
			data []byte
		}{
			{ManifestFile, man},
			{OffsetsFile, off},
			{EdgesFile, edges},
			{LabelsFile, labs},
		} {
			if err := os.WriteFile(filepath.Join(dir, w.name), w.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := Open(dir)
		if err != nil {
			return // rejected, as corrupted inputs should be
		}
		defer ds.Close()
		if !ds.HasLabels() {
			if ds.NumClasses() != 0 {
				t.Fatalf("unlabeled dataset reports %d classes", ds.NumClasses())
			}
			if _, err := ds.Labels(); err == nil {
				t.Fatal("unlabeled dataset served a label array")
			}
			return
		}
		// Accepted labeled datasets must be internally consistent: a
		// label per node, every value strictly below NumClasses.
		classes := ds.NumClasses()
		if classes < 2 {
			t.Fatalf("accepted dataset has %d classes", classes)
		}
		labels, err := ds.Labels()
		if err != nil {
			t.Fatalf("accepted dataset cannot load labels: %v", err)
		}
		if int64(len(labels)) != ds.NumNodes() {
			t.Fatalf("accepted label array has %d entries for %d nodes", len(labels), ds.NumNodes())
		}
		for v, lab := range labels {
			if lab >= uint32(classes) {
				t.Fatalf("accepted label[%d] = %d escapes %d classes", v, lab, classes)
			}
		}
	})
}

// validLabeledDatasetBytes builds the canonical tiny labeled dataset
// and returns its four files' bytes.
func validLabeledDatasetBytes(f *testing.F) (man, off, edges, labs []byte) {
	f.Helper()
	dir, _ := writeLabeledDataset(f, 3)
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	return read(ManifestFile), read(OffsetsFile), read(EdgesFile), read(LabelsFile)
}
