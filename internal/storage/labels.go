package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// Label-store layout (DESIGN.md §13): labels.bin is a flat array of
// NumNodes little-endian uint32 class ids, node v's label at byte
// v*LabelBytes, every value in [0, NumClasses). Unlike the edge and
// feature files, a shard dataset carries the WHOLE graph's labels —
// the file is node-proportional like the offset index, and a training
// consumer downstream of the router needs every target's label no
// matter which shard owned the target's bytes.
const (
	LabelsFile = "labels.bin"

	LabelBytes = 4 // one little-endian uint32 class id

	// maxNumClasses bounds the class count accepted at open. Generous
	// for any real node-classification task, small enough that a corrupt
	// manifest cannot make the out-of-range scan meaningless.
	maxNumClasses = 1 << 20
)

// validateLabels checks the manifest's label fields against the
// directory contents with the same strictness as the feature checks: a
// labeled dataset whose file is truncated, whose bytes fail the
// checksum, or which contains a class id at or above NumClasses is
// rejected at open rather than surfacing as a panic (or silently wrong
// supervision) mid-training. The scan and the checksum share one pass
// over the file. Returns the label file path for a labeled dataset, or
// "" for a valid unlabeled one. Labels are always whole-graph, so the
// expected size is NumNodes*LabelBytes even on a shard dataset.
func validateLabels(dir string, man Manifest) (string, error) {
	if man.NumClasses < 0 {
		return "", fmt.Errorf("storage: manifest %s has negative numClasses %d", dir, man.NumClasses)
	}
	if man.NumClasses == 0 {
		if man.LabelChecksum != "" {
			return "", fmt.Errorf("storage: manifest %s has numClasses 0 but labelChecksum %q — inconsistent label fields",
				dir, man.LabelChecksum)
		}
		return "", nil
	}
	if man.NumClasses > maxNumClasses {
		return "", fmt.Errorf("storage: manifest %s numClasses %d exceeds limit %d", dir, man.NumClasses, maxNumClasses)
	}
	if man.LabelChecksum == "" {
		return "", fmt.Errorf("storage: manifest %s declares %d classes but no labelChecksum", dir, man.NumClasses)
	}
	path := filepath.Join(dir, LabelsFile)
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("storage: stat label file: %w", err)
	}
	want := man.NumNodes * LabelBytes
	if fi.Size() != want {
		return "", fmt.Errorf("storage: label file %s is %d bytes, manifest expects %d (truncated capture?)", path, fi.Size(), want)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("storage: open label file: %w", err)
	}
	defer f.Close()
	h := fnv.New64a()
	br := bufio.NewReaderSize(io.TeeReader(f, h), 1<<16)
	var rec [LabelBytes]byte
	for v := int64(0); v < man.NumNodes; v++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return "", fmt.Errorf("storage: read label file %s at node %d: %w", path, v, err)
		}
		if lab := binary.LittleEndian.Uint32(rec[:]); lab >= uint32(man.NumClasses) {
			return "", fmt.Errorf("storage: label file %s has label %d out of range [0,%d) at node %d",
				path, lab, man.NumClasses, v)
		}
	}
	if sum := fmt.Sprintf("%016x", h.Sum64()); sum != man.LabelChecksum {
		return "", fmt.Errorf("storage: label file %s checksum %s != manifest %s (corrupt capture?)", path, sum, man.LabelChecksum)
	}
	return path, nil
}

// HasLabels reports whether the dataset carries a per-node label file.
func (d *Dataset) HasLabels() bool { return d.labelPath != "" }

// NumClasses returns the label class count, or 0 for an unlabeled
// dataset.
func (d *Dataset) NumClasses() int { return d.man.NumClasses }

// Labels returns the whole graph's per-node label array (labels[v] is
// node v's class id), lazily loaded and cached on first call. The array
// is node-proportional — 4 bytes per node, half the offset index the
// sampler already holds — which is what lets the training consumer keep
// every target's supervision in memory while the features stay on disk
// behind the ring. Callers must not mutate the returned slice.
func (d *Dataset) Labels() ([]uint32, error) {
	if d.labelPath == "" {
		return nil, fmt.Errorf("storage: dataset %s has no label file", d.dir)
	}
	d.labelsOnce.Do(func() {
		data, err := os.ReadFile(d.labelPath)
		if err != nil {
			d.labelsErr = fmt.Errorf("storage: load labels: %w", err)
			return
		}
		labels := make([]uint32, len(data)/LabelBytes)
		for i := range labels {
			labels[i] = binary.LittleEndian.Uint32(data[i*LabelBytes:])
		}
		d.labels = labels
	})
	return d.labels, d.labelsErr
}
