package storage

import (
	"io"
	"testing"
	"unsafe"
)

func TestAlignHelpers(t *testing.T) {
	cases := []struct {
		v        int64
		align    int
		down, up int64
	}{
		{0, 512, 0, 0},
		{1, 512, 0, 512},
		{511, 512, 0, 512},
		{512, 512, 512, 512},
		{513, 512, 512, 1024},
		{120000, 4096, 118784, 122880},
	}
	for _, c := range cases {
		if got := AlignDown(c.v, c.align); got != c.down {
			t.Fatalf("AlignDown(%d, %d) = %d, want %d", c.v, c.align, got, c.down)
		}
		if got := AlignUp(c.v, c.align); got != c.up {
			t.Fatalf("AlignUp(%d, %d) = %d, want %d", c.v, c.align, got, c.up)
		}
	}
	for _, align := range []int{512, 4096} {
		s := AlignedSlice(3*align, align)
		if len(s) != 3*align {
			t.Fatalf("AlignedSlice length %d, want %d", len(s), 3*align)
		}
		if addr := uintptr(unsafe.Pointer(&s[0])); addr%uintptr(align) != 0 {
			t.Fatalf("AlignedSlice(%d) starts at %#x, not %d-aligned", align, addr, align)
		}
	}
}

// TestOpenWithDirect: an O_DIRECT open either activates (positive probed
// alignment, no fallback reason) or falls back to buffered with the
// reason recorded — never both, never neither.
func TestOpenWithDirect(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	ds, err := OpenWith(dir, OpenOptions{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.DirectAlign() > 0 {
		if ds.DirectFallback() != nil {
			t.Fatalf("O_DIRECT active (align %d) but fallback recorded: %v",
				ds.DirectAlign(), ds.DirectFallback())
		}
		if a := ds.DirectAlign(); a != 512 && a != 4096 {
			t.Fatalf("probed alignment %d, want 512 or 4096", a)
		}
	} else if ds.DirectFallback() == nil {
		t.Fatal("buffered fallback with no recorded reason")
	} else {
		t.Logf("O_DIRECT unavailable here: %v", ds.DirectFallback())
	}
	// A plain open never claims O_DIRECT.
	plain, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.DirectAlign() != 0 || plain.DirectFallback() != nil {
		t.Fatalf("buffered open reports direct state: align %d, fallback %v",
			plain.DirectAlign(), plain.DirectFallback())
	}
}

// TestDirectReadAtBounce: Dataset.ReadAt over an O_DIRECT handle must be
// byte-identical to the buffered handle at arbitrary (unaligned)
// offsets and lengths, including reads whose aligned window straddles
// EOF — the 24-byte test dataset is smaller than any O_DIRECT block, so
// every single read exercises the EOF-straddling tail path.
func TestDirectReadAtBounce(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	ds, err := OpenWith(dir, OpenOptions{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.DirectAlign() == 0 {
		t.Skipf("O_DIRECT unavailable: %v", ds.DirectFallback())
	}
	ref, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	size := ds.NumEdges() * EntryBytes // 24 bytes
	for off := int64(0); off <= size+4; off++ {
		for _, n := range []int{1, 3, 4, 8, int(size), int(size) + 8} {
			want := make([]byte, n)
			wn, werr := ref.ReadAt(want, off)
			got := make([]byte, n)
			gn, gerr := ds.ReadAt(got, off)
			if gn != wn {
				t.Fatalf("ReadAt(%d bytes @ %d): direct read %d, buffered %d", n, off, gn, wn)
			}
			// Errors must agree on presence; both report io.EOF for
			// truncated reads (a full-count read may carry nil or io.EOF
			// on either handle).
			if (gerr == nil) != (werr == nil) && gn < n {
				t.Fatalf("ReadAt(%d bytes @ %d): direct err %v, buffered %v", n, off, gerr, werr)
			}
			if gn < n && gerr != io.EOF {
				t.Fatalf("ReadAt(%d bytes @ %d): short direct read err %v, want io.EOF", n, off, gerr)
			}
			for i := 0; i < gn; i++ {
				if got[i] != want[i] {
					t.Fatalf("ReadAt(%d bytes @ %d): byte %d is %#x, want %#x", n, off, i, got[i], want[i])
				}
			}
		}
	}

	// Zero-length reads stay trivially fine on the direct handle.
	if n, err := ds.ReadAt(nil, 13); n != 0 || err != nil {
		t.Fatalf("zero-length direct read: (%d, %v)", n, err)
	}
}
