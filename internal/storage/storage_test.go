package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestDataset builds a 4-node dataset with a known adjacency:
// node 0 -> {1,2,3}, node 1 -> {}, node 2 -> {0,3}, node 3 -> {2}.
func writeTestDataset(t *testing.T, dir string) {
	t.Helper()
	w, err := NewWriter(dir, "tiny", 4)
	if err != nil {
		t.Fatal(err)
	}
	edges := [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 2}}
	for _, e := range edges {
		if err := w.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	man, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if man.NumEdges != 6 || man.BinBytes != 24 {
		t.Fatalf("manifest counts wrong: %+v", man)
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	wantDeg := []int64{3, 0, 2, 1}
	for v, want := range wantDeg {
		if got := ds.Degree(uint32(v)); got != want {
			t.Fatalf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	edges, err := ds.LoadEdges()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 3, 0, 3, 2}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
	st, en := ds.Range(2)
	if st != 3 || en != 5 {
		t.Fatalf("Range(2) = [%d,%d), want [3,5)", st, en)
	}
}

func TestWriterRejectsUnsortedAndOutOfRange(t *testing.T) {
	w, err := NewWriter(t.TempDir(), "bad", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(1, 1); err == nil {
		t.Fatal("out-of-order source accepted")
	}
	if err := w.Add(2, 9); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestOpenRejectsTruncatedFiles(t *testing.T) {
	for _, victim := range []string{EdgesFile, OffsetsFile} {
		dir := t.TempDir()
		writeTestDataset(t, dir)
		path := filepath.Join(dir, victim)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatalf("Open accepted truncated %s", victim)
		}
	}
}

func TestOpenRejectsManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	man, err := loadManifest(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	man.NumEdges++
	man.BinBytes += EntryBytes
	if err := man.Save(filepath.Join(dir, ManifestFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted dataset with wrong manifest counts")
	}
}
