package storage

import (
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeTestDataset builds a 4-node dataset with a known adjacency:
// node 0 -> {1,2,3}, node 1 -> {}, node 2 -> {0,3}, node 3 -> {2}.
func writeTestDataset(t *testing.T, dir string) {
	t.Helper()
	w, err := NewWriter(dir, "tiny", 4)
	if err != nil {
		t.Fatal(err)
	}
	edges := [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 2}}
	for _, e := range edges {
		if err := w.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	man, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if man.NumEdges != 6 || man.BinBytes != 24 {
		t.Fatalf("manifest counts wrong: %+v", man)
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	wantDeg := []int64{3, 0, 2, 1}
	for v, want := range wantDeg {
		if got := ds.Degree(uint32(v)); got != want {
			t.Fatalf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	edges, err := ds.LoadEdges()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 3, 0, 3, 2}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
	st, en := ds.Range(2)
	if st != 3 || en != 5 {
		t.Fatalf("Range(2) = [%d,%d), want [3,5)", st, en)
	}
}

func TestWriterRejectsUnsortedAndOutOfRange(t *testing.T) {
	w, err := NewWriter(t.TempDir(), "bad", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(1, 1); err == nil {
		t.Fatal("out-of-order source accepted")
	}
	if err := w.Add(2, 9); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestOpenRejectsTruncatedFiles(t *testing.T) {
	for _, victim := range []string{EdgesFile, OffsetsFile} {
		dir := t.TempDir()
		writeTestDataset(t, dir)
		path := filepath.Join(dir, victim)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatalf("Open accepted truncated %s", victim)
		}
	}
}

func TestOpenRejectsManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	man, err := loadManifest(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	man.NumEdges++
	man.BinBytes += EntryBytes
	if err := man.Save(filepath.Join(dir, ManifestFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted dataset with wrong manifest counts")
	}
}

// TestReadAtEdgeCases pins Dataset.ReadAt's contract at the file
// boundaries — the hot-neighbor cache builder and the ring backends
// both read through the same pread semantics, so zero-length reads,
// reads ending exactly at EOF, reads crossing EOF, and reads starting
// at or past EOF must behave like pread(2).
func TestReadAtEdgeCases(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir) // 6 edges × 4 bytes = 24-byte edge file
	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	size := ds.NumEdges() * EntryBytes

	// Zero-length read: 0 bytes, no error, at any offset.
	for _, off := range []int64{0, size / 2, size, size + 100} {
		n, err := ds.ReadAt(nil, off)
		if n != 0 || err != nil {
			t.Fatalf("zero-length read at %d: (%d, %v), want (0, nil)", off, n, err)
		}
	}

	// A read ending exactly at EOF returns full bytes. os.File.ReadAt
	// may report io.EOF alongside the full count; both are valid.
	buf := make([]byte, EntryBytes)
	n, err := ds.ReadAt(buf, size-EntryBytes)
	if n != EntryBytes || (err != nil && err != io.EOF) {
		t.Fatalf("read ending at EOF: (%d, %v), want (%d, nil|io.EOF)", n, err, EntryBytes)
	}
	// The last entry is node 3's single neighbor, 2.
	if got := binary.LittleEndian.Uint32(buf); got != 2 {
		t.Fatalf("last entry = %d, want 2", got)
	}

	// A read crossing EOF returns the in-range prefix and io.EOF.
	big := make([]byte, 16)
	n, err = ds.ReadAt(big, size-4)
	if n != 4 || err != io.EOF {
		t.Fatalf("read crossing EOF: (%d, %v), want (4, io.EOF)", n, err)
	}

	// Reads starting at EOF or past it return (0, io.EOF).
	for _, off := range []int64{size, size + 1, size + 1<<20} {
		n, err := ds.ReadAt(buf, off)
		if n != 0 || err != io.EOF {
			t.Fatalf("read at/past EOF offset %d: (%d, %v), want (0, io.EOF)", off, n, err)
		}
	}

	// ReadAt and LoadEdges must agree byte for byte over the whole file.
	all := make([]byte, size)
	if n, err := ds.ReadAt(all, 0); int64(n) != size || (err != nil && err != io.EOF) {
		t.Fatalf("full read: (%d, %v)", n, err)
	}
	edges, err := ds.LoadEdges()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		if got := binary.LittleEndian.Uint32(all[i*EntryBytes:]); got != e {
			t.Fatalf("entry %d: ReadAt sees %d, LoadEdges sees %d", i, got, e)
		}
	}
}
