// Package storage implements the on-disk dataset layout of paper Fig 2:
// a flat little-endian u32 edge file grouped by source node
// (edges.dat), an offset index of numNodes+1 little-endian int64 entry
// indices (offsets.idx) so offsets[x]..offsets[x+1] delimit node x's
// neighbors, and a JSON manifest. The offset index is the only
// edge-file metadata the sampler keeps in memory — node-proportional,
// never edge-proportional.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"ringsampler/internal/graph"
)

// File names and record sizes of the on-disk layout.
const (
	EdgesFile    = "edges.dat"
	OffsetsFile  = "offsets.idx"
	ManifestFile = "manifest.json"

	EntryBytes  = 4 // one u32 neighbor ID in edges.dat
	OffsetBytes = 8 // one int64 entry index in offsets.idx
)

// Writer builds a dataset directory from a source-sorted edge stream.
// It holds only the offset index (node-proportional) in memory.
type Writer struct {
	dir      string
	name     string
	numNodes int64
	f        *os.File
	bw       *bufio.Writer
	offsets  []int64
	lastSrc  int64 // highest source seen; -1 before the first edge
	count    int64

	// Staged feature metadata (SetFeatures), folded into the manifest by
	// Finish. Zero values mean an edge-only dataset.
	featDim      int
	featBytes    int64
	featChecksum string

	// Staged label metadata (SetLabels). Zero values mean an unlabeled
	// dataset.
	numClasses    int
	labelChecksum string
}

// NewWriter creates dir (if needed) and opens the edge file for a
// graph with numNodes nodes. Edges must be Added in non-decreasing
// source order (the external sorter guarantees this).
func NewWriter(dir, name string, numNodes int64) (*Writer, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("storage: numNodes must be positive, got %d", numNodes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dataset dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, EdgesFile))
	if err != nil {
		return nil, fmt.Errorf("storage: create edge file: %w", err)
	}
	return &Writer{
		dir:      dir,
		name:     name,
		numNodes: numNodes,
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		offsets:  make([]int64, numNodes+1),
		lastSrc:  -1,
	}, nil
}

// Add appends one edge. Sources must arrive sorted.
func (w *Writer) Add(src, dst uint32) error {
	s := int64(src)
	if s >= w.numNodes || int64(dst) >= w.numNodes {
		return fmt.Errorf("storage: edge (%d,%d) outside node range [0,%d)", src, dst, w.numNodes)
	}
	if s < w.lastSrc {
		return fmt.Errorf("storage: edges out of order: source %d after %d", src, w.lastSrc)
	}
	if s > w.lastSrc {
		// Close the offset ranges of every node in (lastSrc, s].
		for v := w.lastSrc + 1; v <= s; v++ {
			w.offsets[v] = w.count
		}
		w.lastSrc = s
	}
	var rec [EntryBytes]byte
	binary.LittleEndian.PutUint32(rec[:], dst)
	if _, err := w.bw.Write(rec[:]); err != nil {
		return fmt.Errorf("storage: write edge: %w", err)
	}
	w.count++
	return nil
}

// SetFeatures stages the feature-file metadata Finish records in the
// manifest. The caller is responsible for having written
// dir/features.bin with exactly featBytes = numNodes*dim*
// FeatureElemBytes bytes whose FNV-1a 64 digest is checksum — Open
// re-verifies all three.
func (w *Writer) SetFeatures(dim int, featBytes int64, checksum string) error {
	if dim <= 0 {
		return fmt.Errorf("storage: feature dim %d must be positive", dim)
	}
	if want := w.numNodes * int64(dim) * FeatureElemBytes; featBytes != want {
		return fmt.Errorf("storage: feature bytes %d != numNodes*dim*%d = %d", featBytes, FeatureElemBytes, want)
	}
	w.featDim = dim
	w.featBytes = featBytes
	w.featChecksum = checksum
	return nil
}

// SetLabels stages the label-file metadata Finish records in the
// manifest. The caller is responsible for having written dir/labels.bin
// with numNodes little-endian uint32 class ids, all in
// [0, numClasses), whose FNV-1a 64 digest is checksum — Open re-verifies
// every record.
func (w *Writer) SetLabels(numClasses int, checksum string) error {
	if numClasses < 2 {
		return fmt.Errorf("storage: numClasses %d must be at least 2", numClasses)
	}
	if numClasses > maxNumClasses {
		return fmt.Errorf("storage: numClasses %d exceeds limit %d", numClasses, maxNumClasses)
	}
	w.numClasses = numClasses
	w.labelChecksum = checksum
	return nil
}

// Finish flushes the edge file, writes the offset index and manifest,
// and returns the manifest. The writer is unusable afterwards.
func (w *Writer) Finish() (graph.Manifest, error) {
	var man graph.Manifest
	for v := w.lastSrc + 1; v <= w.numNodes; v++ {
		w.offsets[v] = w.count
	}
	if err := w.bw.Flush(); err != nil {
		return man, fmt.Errorf("storage: flush edge file: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return man, fmt.Errorf("storage: close edge file: %w", err)
	}
	of, err := os.Create(filepath.Join(w.dir, OffsetsFile))
	if err != nil {
		return man, fmt.Errorf("storage: create offset index: %w", err)
	}
	ow := bufio.NewWriterSize(of, 1<<16)
	var rec [OffsetBytes]byte
	for _, o := range w.offsets {
		binary.LittleEndian.PutUint64(rec[:], uint64(o))
		if _, err := ow.Write(rec[:]); err != nil {
			of.Close()
			return man, fmt.Errorf("storage: write offset index: %w", err)
		}
	}
	if err := ow.Flush(); err != nil {
		of.Close()
		return man, fmt.Errorf("storage: flush offset index: %w", err)
	}
	if err := of.Close(); err != nil {
		return man, fmt.Errorf("storage: close offset index: %w", err)
	}
	man = graph.Manifest{
		Version:       graph.ManifestVersion,
		Name:          w.name,
		NumNodes:      w.numNodes,
		NumEdges:      w.count,
		BinBytes:      w.count * EntryBytes,
		FeatureDim:    w.featDim,
		FeatBytes:     w.featBytes,
		FeatChecksum:  w.featChecksum,
		NumClasses:    w.numClasses,
		LabelChecksum: w.labelChecksum,
	}
	if err := man.Save(filepath.Join(w.dir, ManifestFile)); err != nil {
		return man, err
	}
	return man, nil
}
