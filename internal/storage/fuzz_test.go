package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen throws arbitrary manifest/offset-index/edge-file byte
// triples at open-time validation: Open must reject truncated,
// corrupted, or inconsistent datasets with an error — never panic, and
// never return a dataset whose offset index could send the sampler out
// of bounds. Seed corpus (testdata/fuzz/FuzzOpen) covers the valid
// dataset plus each single-file corruption; run with
// `go test -fuzz=FuzzOpen ./internal/storage` to explore further.
func FuzzOpen(f *testing.F) {
	// A valid 4-node dataset and targeted corruptions of each file.
	man, off, edges := validDatasetBytes(f)
	f.Add(man, off, edges)
	f.Add(man, off, edges[:len(edges)-3])        // truncated edge file
	f.Add(man, off[:len(off)-1], edges)          // truncated offset index
	f.Add(man[:len(man)/2], off, edges)          // truncated manifest JSON
	f.Add([]byte("not json"), off, edges)        // garbage manifest
	f.Add(man, flipByte(off, 8), edges)          // non-monotone offsets
	f.Add(man, flipByte(off, len(off)-1), edges) // offsets overrun the edge file
	f.Add(corruptCount(man), off, edges)         // manifest/file count mismatch
	f.Add([]byte(`{"version":1,"name":"x","numNodes":-4,"numEdges":6,"binBytes":24}`), off, edges)
	f.Add([]byte{}, []byte{}, []byte{})

	f.Fuzz(func(t *testing.T, man, off, edges []byte) {
		dir := t.TempDir()
		for _, w := range []struct {
			name string
			data []byte
		}{
			{ManifestFile, man},
			{OffsetsFile, off},
			{EdgesFile, edges},
		} {
			if err := os.WriteFile(filepath.Join(dir, w.name), w.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := Open(dir)
		if err != nil {
			return // rejected, as corrupted inputs should be
		}
		defer ds.Close()
		// Accepted datasets must be internally consistent: every node's
		// range stays within the edge file.
		n := ds.NumNodes()
		if n <= 0 {
			t.Fatalf("Open accepted dataset with %d nodes", n)
		}
		for v := int64(0); v < n; v++ {
			st, en := ds.Range(uint32(v))
			if st < 0 || st > en || en > ds.NumEdges() {
				t.Fatalf("node %d range [%d,%d) escapes %d edges", v, st, en, ds.NumEdges())
			}
		}
	})
}

// validDatasetBytes builds the canonical tiny dataset in a temp dir and
// returns its three files' bytes.
func validDatasetBytes(f *testing.F) (man, off, edges []byte) {
	f.Helper()
	dir := f.TempDir()
	w, err := NewWriter(dir, "fuzz", 4)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 2}} {
		if err := w.Add(e[0], e[1]); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	return read(ManifestFile), read(OffsetsFile), read(EdgesFile)
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	if len(out) > 0 {
		out[i%len(out)] ^= 0xff
	}
	return out
}

func corruptCount(man []byte) []byte {
	out := append([]byte(nil), man...)
	for i := range out {
		if out[i] == '6' {
			out[i] = '7'
			break
		}
	}
	return out
}
