//go:build !linux

package storage

import (
	"errors"
	"os"
)

// O_DIRECT handling is Linux-only; elsewhere OpenWith falls back to
// buffered reads and records the reason.
func openDirect(path string, size int64) (*os.File, int, error) {
	return nil, 0, errors.New("storage: O_DIRECT is linux-only")
}
