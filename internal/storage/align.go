package storage

import "unsafe"

// Alignment helpers for the O_DIRECT read path. O_DIRECT demands that
// file offsets, transfer lengths, and user memory are all multiples of
// the device's logical block size; these helpers do the rounding and
// produce block-aligned slices from Go's (merely word-aligned) heap.

// AlignDown rounds v down to a multiple of align (a power of two).
func AlignDown(v int64, align int) int64 {
	return v &^ (int64(align) - 1)
}

// AlignUp rounds v up to a multiple of align (a power of two).
func AlignUp(v int64, align int) int64 {
	return (v + int64(align) - 1) &^ (int64(align) - 1)
}

// AlignedSlice returns a length-n byte slice whose backing memory
// starts on an align-byte boundary (align a power of two), suitable as
// an O_DIRECT read destination. The slice keeps its own backing array
// alive; no registration or pinning is implied.
func AlignedSlice(n, align int) []byte {
	raw := make([]byte, n+align)
	var off int
	if align > 0 {
		base := int64(sliceAddr(raw))
		off = int(AlignUp(base, align) - base)
	}
	return raw[off : off+n : off+n]
}

func sliceAddr(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }
