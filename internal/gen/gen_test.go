package gen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ringsampler/internal/storage"
)

// TestRMATDeterminism: the same (nodes, edges, seed, params) streams
// the identical edge sequence, twice.
func TestRMATDeterminism(t *testing.T) {
	collect := func() [][2]uint32 {
		var out [][2]uint32
		if err := RMAT(1024, 5000, 7, RMATParams, func(s, d uint32) {
			out = append(out, [2]uint32{s, d})
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("edge counts: %d / %d, want 5000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestGenerateByteIdentical: the full on-disk pipeline (generate →
// external sort → edge file + offset index + manifest) is byte-identical
// across runs with the same seed, and diverges for a different seed.
func TestGenerateByteIdentical(t *testing.T) {
	read := func(dir, name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	build := func(seed uint64) string {
		dir := t.TempDir()
		if _, err := Generate(dir, "det", "rmat", 500, 4000, seed); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	d1, d2, d3 := build(11), build(11), build(12)
	for _, name := range []string{"edges.dat", "offsets.idx"} {
		if !bytes.Equal(read(d1, name), read(d2, name)) {
			t.Fatalf("%s differs across runs with the same seed", name)
		}
	}
	if bytes.Equal(read(d1, "edges.dat"), read(d3, "edges.dat")) {
		t.Fatal("different seeds produced identical edge files")
	}
}

// TestGenerateWithFeatures: generation with a feature dim emits a
// deterministic features.bin (byte-identical across runs, divergent
// across seeds) whose size, manifest fields, and checksum all pass
// storage's open-time validation.
func TestGenerateWithFeatures(t *testing.T) {
	const dim = 5
	read := func(dir, name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	build := func(seed uint64) string {
		dir := t.TempDir()
		if _, err := GenerateWith(dir, "det", "rmat", 300, 2500, seed, Options{FeatureDim: dim}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	d1, d2, d3 := build(11), build(11), build(12)
	f1 := read(d1, storage.FeaturesFile)
	if want := int64(300 * dim * storage.FeatureElemBytes); int64(len(f1)) != want {
		t.Fatalf("features.bin is %d bytes, want %d", len(f1), want)
	}
	if !bytes.Equal(f1, read(d2, storage.FeaturesFile)) {
		t.Fatal("features.bin differs across runs with the same seed")
	}
	if bytes.Equal(f1, read(d3, storage.FeaturesFile)) {
		t.Fatal("different seeds produced identical feature files")
	}
	ds, err := storage.Open(d1)
	if err != nil {
		t.Fatalf("generated featureful dataset fails open-time validation: %v", err)
	}
	defer ds.Close()
	if !ds.HasFeatures() || ds.FeatureDim() != dim {
		t.Fatalf("opened dataset: has=%v dim=%d, want features with dim %d",
			ds.HasFeatures(), ds.FeatureDim(), dim)
	}
	if _, err := GenerateWith(t.TempDir(), "bad", "rmat", 10, 20, 1, Options{FeatureDim: -1}); err == nil {
		t.Fatal("GenerateWith accepted a negative feature dim")
	}
}

// TestGenerateDefaultEdgeOnly: the plain Generate path emits no feature
// file and leaves the manifest's feature fields zero, so pre-feature
// callers are untouched.
func TestGenerateDefaultEdgeOnly(t *testing.T) {
	dir := t.TempDir()
	if _, err := Generate(dir, "plain", "rmat", 200, 1500, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, storage.FeaturesFile)); !os.IsNotExist(err) {
		t.Fatalf("plain Generate left a feature file (stat err %v)", err)
	}
	ds, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.HasFeatures() {
		t.Fatal("plain Generate produced a featureful dataset")
	}
}

// TestRMATSkew: the paper-shaped quadrant probabilities concentrate
// edge mass on low-ID nodes far beyond what a uniform generator does —
// the hub-dominated regime offset-based sampling is designed for.
func TestRMATSkew(t *testing.T) {
	const nodes, edges = 4096, 40_000
	lowFrac := func(gen func(func(src, dst uint32)) error) float64 {
		low := 0
		total := 0
		if err := gen(func(s, d uint32) {
			total++
			if s < nodes/10 {
				low++
			}
		}); err != nil {
			t.Fatal(err)
		}
		return float64(low) / float64(total)
	}
	rmat := lowFrac(func(emit func(uint32, uint32)) error {
		return RMAT(nodes, edges, 3, RMATParams, emit)
	})
	uni := lowFrac(func(emit func(uint32, uint32)) error {
		return Uniform(nodes, edges, 3, emit)
	})
	if uni < 0.05 || uni > 0.15 {
		t.Fatalf("uniform low-ID source fraction %.3f implausible (want ≈0.10)", uni)
	}
	if rmat < 2*uni {
		t.Fatalf("R-MAT low-ID source fraction %.3f not skewed vs uniform %.3f", rmat, uni)
	}
}

// TestRMATParamsSane: quadrant probabilities are a distribution and
// keep the top-left (hub-forming) corner dominant.
func TestRMATParamsSane(t *testing.T) {
	p := RMATParams
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("RMATParams sum to %v, want 1", sum)
	}
	if p.A <= p.B || p.A <= p.C || p.A <= p.D {
		t.Fatalf("RMATParams %+v: quadrant A must dominate for hub skew", p)
	}
}

// TestGeneratorRangeValidation: node counts outside [1, 2^32-1] and
// negative edge counts are rejected; emitted endpoints stay in range.
func TestGeneratorRangeValidation(t *testing.T) {
	emit := func(uint32, uint32) {}
	if err := RMAT(0, 10, 1, RMATParams, emit); err == nil {
		t.Fatal("RMAT accepted 0 nodes")
	}
	if err := RMAT(1<<33, 10, 1, RMATParams, emit); err == nil {
		t.Fatal("RMAT accepted 2^33 nodes")
	}
	if err := RMAT(8, -1, 1, RMATParams, emit); err == nil {
		t.Fatal("RMAT accepted negative edge count")
	}
	if err := Uniform(0, 10, 1, emit); err == nil {
		t.Fatal("Uniform accepted 0 nodes")
	}
	// Non-power-of-two node count: the rejection loop must keep every
	// endpoint in range.
	const n = 1000
	if err := RMAT(n, 5000, 2, RMATParams, func(s, d uint32) {
		if s >= n || d >= n {
			t.Fatalf("edge (%d,%d) outside [0,%d)", s, d, n)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
