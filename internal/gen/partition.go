package gen

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ringsampler/internal/storage"
)

// Partition slices the dataset in srcDir into `shards` node-range shard
// datasets under dstRoot (DESIGN.md §12): shard i owns the contiguous
// node range [cut[i], cut[i+1]) chosen so that edge entries — the bytes
// the ring actually reads — are balanced across shards, not node
// counts. Every shard gets the FULL offset index (node-proportional,
// the same in-memory structure a single node holds) plus only its own
// slice of edges.dat and features.bin, with the manifest's BinBytes,
// FeatBytes, and FeatChecksum recomputed for the local files. The label
// file, when present, is copied WHOLE to every shard — it is
// node-proportional like the offset index, and a training consumer
// fronted by the router needs every target's label regardless of which
// shard owns the target's bytes — so the manifest's label fields carry
// over unchanged.
//
// The slicing is pure byte copying — no re-encoding — so a shard's
// bytes for an owned node are identical to the single-node dataset's,
// which is half of the scatter/gather determinism argument. Returns the
// shard directories in shard order; each is re-opened through the full
// storage validation before returning. Deterministic for a fixed
// source dataset.
func Partition(srcDir, dstRoot string, shards int) ([]string, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("gen: shard count %d must be positive", shards)
	}
	ds, err := storage.Open(srcDir)
	if err != nil {
		return nil, err
	}
	defer ds.Close()
	if ds.IsSharded() {
		return nil, fmt.Errorf("gen: %s is already shard %d/%d; partition the unsharded dataset", srcDir, ds.ShardIndex(), ds.NumShards())
	}
	man := ds.Manifest()
	numNodes, numEdges := ds.NumNodes(), ds.NumEdges()

	// entryAt(v) is the global entry index where node v's list begins
	// (== total entries when v == numNodes).
	entryAt := func(v int64) int64 {
		if v >= numNodes {
			return numEdges
		}
		st, _ := ds.Range(uint32(v))
		return st
	}
	// cuts[i] = first node of shard i: the smallest v whose list begins
	// at or after the i-th equal slice of the edge entries. Monotone
	// because the targets and the offset index both are. Shards of a
	// tiny or extremely skewed graph may own zero nodes; that is valid.
	cuts := make([]int64, shards+1)
	cuts[shards] = numNodes
	for i := 1; i < shards; i++ {
		target := numEdges * int64(i) / int64(shards)
		cuts[i] = int64(sort.Search(int(numNodes), func(v int) bool {
			return entryAt(int64(v)) >= target
		}))
	}

	stride := ds.FeatureStride()
	dirs := make([]string, shards)
	for i := 0; i < shards; i++ {
		lo, hi := cuts[i], cuts[i+1]
		sdir := filepath.Join(dstRoot, fmt.Sprintf("shard-%d-of-%d", i, shards))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return nil, err
		}
		entLo, entHi := entryAt(lo), entryAt(hi)
		if err := copySlice(
			filepath.Join(srcDir, storage.EdgesFile),
			filepath.Join(sdir, storage.EdgesFile),
			entLo*storage.EntryBytes, entHi*storage.EntryBytes); err != nil {
			return nil, err
		}
		if err := copySlice(
			filepath.Join(srcDir, storage.OffsetsFile),
			filepath.Join(sdir, storage.OffsetsFile),
			0, (numNodes+1)*storage.OffsetBytes); err != nil {
			return nil, err
		}
		sman := man
		sman.BinBytes = (entHi - entLo) * storage.EntryBytes
		sman.NumShards = shards
		sman.ShardIndex = i
		sman.ShardLo = lo
		sman.ShardHi = hi
		sman.CreatedAt = time.Time{} // deterministic output
		if ds.HasFeatures() {
			featPath := filepath.Join(sdir, storage.FeaturesFile)
			if err := copySlice(filepath.Join(srcDir, storage.FeaturesFile), featPath, lo*stride, hi*stride); err != nil {
				return nil, err
			}
			sman.FeatBytes = (hi - lo) * stride
			sman.FeatChecksum, err = storage.ChecksumFile(featPath)
			if err != nil {
				return nil, err
			}
		}
		if ds.HasLabels() {
			if err := copySlice(
				filepath.Join(srcDir, storage.LabelsFile),
				filepath.Join(sdir, storage.LabelsFile),
				0, numNodes*storage.LabelBytes); err != nil {
				return nil, err
			}
		}
		if err := sman.Save(filepath.Join(sdir, storage.ManifestFile)); err != nil {
			return nil, err
		}
		// Round-trip through the strict open-time validation so a
		// partitioner bug surfaces here, not as a short read mid-serve.
		sds, err := storage.Open(sdir)
		if err != nil {
			return nil, fmt.Errorf("gen: partition self-check: %w", err)
		}
		sds.Close()
		dirs[i] = sdir
	}
	return dirs, nil
}

// copySlice copies src[lo:hi) into a new file at dst.
func copySlice(src, dst string, lo, hi int64) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, io.NewSectionReader(in, lo, hi-lo)); err != nil {
		out.Close()
		return fmt.Errorf("gen: copy %s[%d:%d): %w", src, lo, hi, err)
	}
	return out.Close()
}
