package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
)

// labelSalt decorrelates the per-class label-weight RNG streams from
// both the edge-generation and the feature streams that mix the same
// seed.
const labelSalt = 0x1abe1b17

// classWeights derives the synthetic labeling hyperplanes: one
// dim-wide weight vector per class, entries uniform in [-1, 1), class
// c's vector a pure function of (seed, c). The label task is then
// linearly realizable from the features — a trained linear (or deeper)
// model can actually fit it, which is what makes epochs-to-accuracy a
// meaningful benchmark axis rather than noise-fitting.
func classWeights(seed uint64, classes, dim int) [][]float32 {
	w := make([][]float32, classes)
	for c := range w {
		rng := sample.NewRNG(sample.Mix(seed^labelSalt, uint64(c)))
		w[c] = make([]float32, dim)
		for d := range w[c] {
			w[c][d] = float32(rng.Float64()*2 - 1)
		}
	}
	return w
}

// nodeLabel scores vec (one node's feature vector) against every class
// hyperplane and returns the argmax class, lowest class winning ties.
// Features are centered by 0.5 (they are uniform in [0,1)) so the
// scores straddle zero and the classes come out roughly balanced.
func nodeLabel(weights [][]float32, vec []float32) uint32 {
	best, bestScore := uint32(0), float64(0)
	for c, w := range weights {
		score := 0.0
		for d, x := range vec {
			score += float64(w[d]) * (float64(x) - 0.5)
		}
		if c == 0 || score > bestScore {
			best, bestScore = uint32(c), score
		}
	}
	return best
}

// writeLabels emits dir/labels.bin: one little-endian uint32 class id
// per node, label(v) = argmax_c w_c·(x_v − 0.5) over the classWeights
// hyperplanes, where x_v is exactly the feature vector writeFeatures
// emits for node v. Like the features, every label is a pure function
// of (seed, v, classes) — independent of write order. Returns the
// FNV-1a 64 hex checksum for the manifest.
func writeLabels(dir string, nodes int64, dim, classes int, seed uint64) (string, error) {
	if dim <= 0 {
		return "", fmt.Errorf("gen: labels need features (dim %d must be positive)", dim)
	}
	if classes < 2 {
		return "", fmt.Errorf("gen: numClasses %d must be at least 2", classes)
	}
	weights := classWeights(seed, classes, dim)
	f, err := os.Create(filepath.Join(dir, storage.LabelsFile))
	if err != nil {
		return "", fmt.Errorf("gen: create label file: %w", err)
	}
	h := fnv.New64a()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<16)
	vec := make([]float32, dim)
	var rec [storage.LabelBytes]byte
	for v := int64(0); v < nodes; v++ {
		nodeFeature(seed, v, vec)
		binary.LittleEndian.PutUint32(rec[:], nodeLabel(weights, vec))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return "", fmt.Errorf("gen: write label file: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", fmt.Errorf("gen: flush label file: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("gen: close label file: %w", err)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
