package gen

import (
	"fmt"
	"os"
	"path/filepath"

	"ringsampler/internal/graph"
	"ringsampler/internal/storage"
)

// Options selects the optional dataset components Generate can emit
// beyond the edge file and offset index.
type Options struct {
	// FeatureDim, when positive, emits features.bin: one FeatureDim-wide
	// f32 vector per node, deterministic per (seed, node), with its size
	// and FNV-1a checksum recorded in the manifest.
	FeatureDim int

	// NumClasses, when ≥ 2, emits labels.bin: one uint32 class id per
	// node derived from the node's feature vector (so the labeling is
	// linearly realizable — see writeLabels), with the class count and
	// FNV-1a checksum recorded in the manifest. Requires FeatureDim > 0.
	NumClasses int
}

// Generate builds a complete on-disk dataset in dir: stream a synthetic
// graph (kind "rmat" or "uniform"), externally sort it by source, and
// write the edge file + offset index + manifest. The whole pipeline is
// streaming, so graphs larger than memory generate fine. Deterministic
// for a fixed (kind, nodes, edges, seed).
func Generate(dir, name, kind string, nodes, edges int64, seed uint64) (graph.Manifest, error) {
	return GenerateWith(dir, name, kind, nodes, edges, seed, Options{})
}

// GenerateWith is Generate with explicit component options (e.g. a node
// feature file).
func GenerateWith(dir, name, kind string, nodes, edges int64, seed uint64, o Options) (graph.Manifest, error) {
	var man graph.Manifest
	if o.FeatureDim < 0 {
		return man, fmt.Errorf("gen: feature dim %d must be non-negative", o.FeatureDim)
	}
	if o.NumClasses != 0 {
		if o.NumClasses < 2 {
			return man, fmt.Errorf("gen: numClasses %d must be 0 (no labels) or at least 2", o.NumClasses)
		}
		if o.FeatureDim == 0 {
			return man, fmt.Errorf("gen: labels need features (numClasses %d with featureDim 0)", o.NumClasses)
		}
	}
	tmpDir := filepath.Join(dir, ".extsort")
	sorter, err := graph.NewExternalSorter(tmpDir, 1<<20)
	if err != nil {
		return man, err
	}
	defer os.RemoveAll(tmpDir)

	var addErr error
	add := func(src, dst uint32) {
		if addErr == nil {
			addErr = sorter.Add(graph.Edge{Src: src, Dst: dst})
		}
	}
	switch kind {
	case "rmat":
		err = RMAT(nodes, edges, seed, RMATParams, add)
	case "uniform":
		err = Uniform(nodes, edges, seed, add)
	default:
		return man, fmt.Errorf("gen: unknown graph kind %q (want rmat or uniform)", kind)
	}
	if err != nil {
		return man, err
	}
	if addErr != nil {
		return man, addErr
	}

	w, err := storage.NewWriter(dir, name, nodes)
	if err != nil {
		return man, err
	}
	if err := sorter.Merge(func(e graph.Edge) error {
		return w.Add(e.Src, e.Dst)
	}); err != nil {
		return man, err
	}
	if o.FeatureDim > 0 {
		featBytes, sum, err := writeFeatures(dir, nodes, o.FeatureDim, seed)
		if err != nil {
			return man, err
		}
		if err := w.SetFeatures(o.FeatureDim, featBytes, sum); err != nil {
			return man, err
		}
	}
	if o.NumClasses >= 2 {
		sum, err := writeLabels(dir, nodes, o.FeatureDim, o.NumClasses, seed)
		if err != nil {
			return man, err
		}
		if err := w.SetLabels(o.NumClasses, sum); err != nil {
			return man, err
		}
	}
	return w.Finish()
}
