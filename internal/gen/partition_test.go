package gen

import (
	"os"
	"path/filepath"
	"testing"

	"ringsampler/internal/storage"
)

// TestPartitionCoversGraphAndPreservesBytes: shard ranges tile
// [0, NumNodes) contiguously, every owned node's edge list and feature
// vector read back byte-identical to the single-node dataset through
// the global-offset API, and non-owned reads fail rather than return
// wrong bytes.
func TestPartitionCoversGraphAndPreservesBytes(t *testing.T) {
	src := filepath.Join(t.TempDir(), "g")
	if _, err := GenerateWith(src, "part", "rmat", 2000, 30_000, 11, Options{FeatureDim: 5}); err != nil {
		t.Fatal(err)
	}
	full, err := storage.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	for _, shards := range []int{1, 2, 3, 4} {
		dirs, err := Partition(src, filepath.Join(t.TempDir(), "shards"), shards)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if len(dirs) != shards {
			t.Fatalf("%d shards: got %d dirs", shards, len(dirs))
		}
		next := int64(0)
		for i, dir := range dirs {
			sd, err := storage.Open(dir)
			if err != nil {
				t.Fatalf("open shard %d: %v", i, err)
			}
			lo, hi := sd.ShardRange()
			if lo != next {
				t.Fatalf("shard %d starts at %d, want %d (gap/overlap)", i, lo, next)
			}
			next = hi
			if !sd.IsSharded() || sd.NumShards() != shards || sd.ShardIndex() != i {
				t.Fatalf("shard %d identity: sharded=%v %d/%d", i, sd.IsSharded(), sd.ShardIndex(), sd.NumShards())
			}
			if sd.NumNodes() != full.NumNodes() || sd.NumEdges() != full.NumEdges() {
				t.Fatalf("shard %d global counts %d/%d, want %d/%d", i, sd.NumNodes(), sd.NumEdges(), full.NumNodes(), full.NumEdges())
			}
			// Spot-check every 97th owned node: edge bytes and feature
			// bytes identical through the same global offsets.
			for v := lo; v < hi; v += 97 {
				st, en := full.Range(uint32(v))
				sst, sen := sd.Range(uint32(v))
				if st != sst || en != sen {
					t.Fatalf("shard %d node %d range (%d,%d) != full (%d,%d)", i, v, sst, sen, st, en)
				}
				if n := en - st; n > 0 {
					want := make([]byte, n*storage.EntryBytes)
					got := make([]byte, n*storage.EntryBytes)
					if _, err := full.ReadAt(want, st*storage.EntryBytes); err != nil {
						t.Fatal(err)
					}
					if _, err := sd.ReadAt(got, st*storage.EntryBytes); err != nil {
						t.Fatalf("shard %d node %d edge read: %v", i, v, err)
					}
					if string(want) != string(got) {
						t.Fatalf("shard %d node %d edge bytes differ", i, v)
					}
				}
				stride := full.FeatureStride()
				want := make([]byte, stride)
				got := make([]byte, stride)
				if _, err := full.FeatureReadAt(want, v*stride); err != nil {
					t.Fatal(err)
				}
				if _, err := sd.FeatureReadAt(got, v*stride); err != nil {
					t.Fatalf("shard %d node %d feature read: %v", i, v, err)
				}
				if string(want) != string(got) {
					t.Fatalf("shard %d node %d feature bytes differ", i, v)
				}
			}
			if shards > 1 {
				// A non-owned node's bytes are absent: the translated read
				// lands outside the local file and must error, not fabricate.
				var out uint32
				if lo > 0 {
					out = 0
				} else {
					out = uint32(hi)
				}
				st, en := full.Range(out)
				if n := en - st; n > 0 {
					buf := make([]byte, n*storage.EntryBytes)
					if _, err := sd.ReadAt(buf, st*storage.EntryBytes); err == nil && lo > 0 {
						t.Fatalf("shard %d served non-owned node %d's edge bytes", i, out)
					}
				}
				if sd.Owns(out) {
					t.Fatalf("shard %d claims to own %d outside [%d,%d)", i, out, lo, hi)
				}
			}
			sd.Close()
		}
		if next != full.NumNodes() {
			t.Fatalf("%d shards cover [0,%d), want [0,%d)", shards, next, full.NumNodes())
		}
	}
}

// TestPartitionRejectsTamperedShard: the strict open-time validation
// still bites on shard datasets — a truncated local edge file is
// rejected at open.
func TestPartitionRejectsTamperedShard(t *testing.T) {
	src := filepath.Join(t.TempDir(), "g")
	if _, err := Generate(src, "part", "rmat", 500, 5000, 3); err != nil {
		t.Fatal(err)
	}
	dirs, err := Partition(src, filepath.Join(t.TempDir(), "shards"), 2)
	if err != nil {
		t.Fatal(err)
	}
	edge := filepath.Join(dirs[1], storage.EdgesFile)
	fi, err := os.Stat(edge)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(edge, fi.Size()-storage.EntryBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Open(dirs[1]); err == nil {
		t.Fatal("Open accepted a truncated shard edge file")
	}

	// LoadEdges is a whole-graph operation; a shard must refuse it.
	sd, err := storage.Open(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if _, err := sd.LoadEdges(); err == nil {
		t.Fatal("LoadEdges succeeded on a shard dataset")
	}
}

// TestPartitionCarriesFullLabels is the regression test for the
// labels × sharding interaction: every shard of a labeled dataset must
// open cleanly (the partition self-check would reject a shard whose
// labels.bin is missing or partial) and serve the WHOLE graph's label
// array byte-identically — not just its owned range — because a
// training consumer behind the router looks up every target's label
// locally.
func TestPartitionCarriesFullLabels(t *testing.T) {
	src := filepath.Join(t.TempDir(), "g")
	if _, err := GenerateWith(src, "partlab", "rmat", 1500, 20_000, 13,
		Options{FeatureDim: 5, NumClasses: 4}); err != nil {
		t.Fatal(err)
	}
	full, err := storage.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	want, err := full.Labels()
	if err != nil {
		t.Fatal(err)
	}

	dirs, err := Partition(src, filepath.Join(t.TempDir(), "shards"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, dir := range dirs {
		sd, err := storage.Open(dir)
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		if !sd.HasLabels() || sd.NumClasses() != full.NumClasses() {
			t.Fatalf("shard %d labels: has=%v classes=%d, want %d",
				i, sd.HasLabels(), sd.NumClasses(), full.NumClasses())
		}
		got, err := sd.Labels()
		if err != nil {
			t.Fatalf("shard %d labels: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d has %d labels, want the full graph's %d", i, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("shard %d label[%d] = %d, want %d", i, v, got[v], want[v])
			}
		}
		sd.Close()
	}

	// A shard stripped of its label file must be rejected at open with a
	// clear error, never served label-less.
	if err := os.Remove(filepath.Join(dirs[1], storage.LabelsFile)); err != nil {
		t.Fatal(err)
	}
	if ds, err := storage.Open(dirs[1]); err == nil {
		ds.Close()
		t.Fatal("shard with deleted labels.bin opened cleanly")
	}
}

// TestGenerateLabelsDeterministicAndBalanced: labels are a pure
// function of (seed, node), every class shows up on a reasonably sized
// graph, and regeneration is byte-identical.
func TestGenerateLabelsDeterministicAndBalanced(t *testing.T) {
	const classes = 5
	opts := Options{FeatureDim: 6, NumClasses: classes}
	dirA := filepath.Join(t.TempDir(), "a")
	manA, err := GenerateWith(dirA, "lab", "rmat", 3000, 9000, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	if manA.NumClasses != classes || manA.LabelChecksum == "" {
		t.Fatalf("manifest labels: classes=%d checksum=%q", manA.NumClasses, manA.LabelChecksum)
	}
	dirB := filepath.Join(t.TempDir(), "b")
	manB, err := GenerateWith(dirB, "lab", "rmat", 3000, 9000, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	if manA.LabelChecksum != manB.LabelChecksum {
		t.Fatalf("regeneration changed labels: %s vs %s", manA.LabelChecksum, manB.LabelChecksum)
	}
	ds, err := storage.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	labels, err := ds.Labels()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, classes)
	for _, lab := range labels {
		counts[lab]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never assigned across %d nodes: %v", c, len(labels), counts)
		}
	}
}

// TestGenerateLabelOptionsValidation: labels without features, and
// degenerate class counts, are rejected up front.
func TestGenerateLabelOptionsValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := GenerateWith(filepath.Join(dir, "a"), "x", "rmat", 100, 200, 1,
		Options{NumClasses: 4}); err == nil {
		t.Fatal("labels without features accepted")
	}
	if _, err := GenerateWith(filepath.Join(dir, "b"), "x", "rmat", 100, 200, 1,
		Options{FeatureDim: 4, NumClasses: 1}); err == nil {
		t.Fatal("single-class labeling accepted")
	}
}
