// Package gen generates synthetic graphs at any scale: the Graph500
// Kronecker (R-MAT) generator behind the paper's skewed datasets and a
// uniform generator for contrast. Generators stream edges through a
// callback so graphs larger than memory never materialize; the
// preprocessing pipeline (external sort + offset-index build) keeps the
// rest of the path out-of-core too.
package gen

import (
	"fmt"
	"math/bits"

	"ringsampler/internal/sample"
)

// Params are the R-MAT quadrant probabilities (a+b+c+d = 1). Larger a
// concentrates edges on low-ID nodes, producing the heavy-tailed
// degree distributions of real web/citation graphs.
type Params struct {
	A, B, C, D float64
}

// RMATParams are the quadrant probabilities used for the paper-shaped
// datasets. They are deliberately more skewed than Graph500's
// (0.57/0.19/0.19/0.05): at 1/20000 scale a graph keeps its |E|/|V|
// ratio but loses absolute hub mass, so the extra skew restores the
// hub-dominated frontiers that ogbn-papers exhibits at full scale —
// the regime offset-based sampling is designed for.
var RMATParams = Params{A: 0.68, B: 0.15, C: 0.15, D: 0.02}

// RMAT streams exactly `edges` directed edges of an R-MAT graph over
// node IDs [0, nodes) to emit. Deterministic for a fixed seed.
// Endpoints outside [0, nodes) (the recursion works on a power-of-two
// grid) are rejected and redrawn, preserving the skew shape.
func RMAT(nodes int64, edges int64, seed uint64, p Params, emit func(src, dst uint32)) error {
	if nodes <= 0 || nodes > 1<<32-1 {
		return fmt.Errorf("gen: node count %d out of range", nodes)
	}
	if edges < 0 {
		return fmt.Errorf("gen: negative edge count %d", edges)
	}
	scale := bits.Len64(uint64(nodes - 1))
	if nodes == 1 {
		scale = 1
	}
	r := sample.NewRNG(seed)
	ab := p.A + p.B
	acNorm := p.A / (p.A + p.C) // P(left | top) == P(top | left) by symmetry of the draw below
	_ = acNorm
	for i := int64(0); i < edges; i++ {
		for {
			src, dst := rmatOne(&r, scale, p, ab)
			if int64(src) < nodes && int64(dst) < nodes {
				emit(uint32(src), uint32(dst))
				break
			}
		}
	}
	return nil
}

func rmatOne(r *sample.RNG, scale int, p Params, ab float64) (uint64, uint64) {
	var src, dst uint64
	for level := 0; level < scale; level++ {
		f := r.Float64()
		var sbit, dbit uint64
		switch {
		case f < p.A:
			// top-left: both bits 0
		case f < ab:
			dbit = 1
		case f < ab+p.C:
			sbit = 1
		default:
			sbit, dbit = 1, 1
		}
		src = src<<1 | sbit
		dst = dst<<1 | dbit
	}
	return src, dst
}

// Uniform streams `edges` directed edges with independently uniform
// endpoints (an Erdős–Rényi-style multigraph). Deterministic for a
// fixed seed.
func Uniform(nodes int64, edges int64, seed uint64, emit func(src, dst uint32)) error {
	if nodes <= 0 || nodes > 1<<32-1 {
		return fmt.Errorf("gen: node count %d out of range", nodes)
	}
	r := sample.NewRNG(seed)
	n := uint32(nodes)
	for i := int64(0); i < edges; i++ {
		emit(r.Uint32n(n), r.Uint32n(n))
	}
	return nil
}
