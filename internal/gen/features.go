package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
)

// featureSalt decorrelates the per-node feature RNG streams from the
// edge-generation streams that mix the same seed.
const featureSalt = 0xfea7f11e

// writeFeatures emits dir/features.bin: one dim-wide f32 vector per
// node, values in [0,1), node v's vector derived from a node-local RNG
// seeded Mix(seed^featureSalt, v). Node-local seeding makes every
// vector a pure function of (seed, v) — independent of write order —
// which is what the conformance suite's byte-identity assertions anchor
// on. Returns the byte count and FNV-1a 64 hex checksum for the
// manifest.
func writeFeatures(dir string, nodes int64, dim int, seed uint64) (int64, string, error) {
	if dim <= 0 {
		return 0, "", fmt.Errorf("gen: feature dim %d must be positive", dim)
	}
	f, err := os.Create(filepath.Join(dir, storage.FeaturesFile))
	if err != nil {
		return 0, "", fmt.Errorf("gen: create feature file: %w", err)
	}
	h := fnv.New64a()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<16)
	var rec [storage.FeatureElemBytes]byte
	for v := int64(0); v < nodes; v++ {
		rng := sample.NewRNG(sample.Mix(seed^featureSalt, uint64(v)))
		for d := 0; d < dim; d++ {
			// Top 24 bits of the draw -> f32 in [0,1) with full mantissa
			// coverage.
			val := float32(rng.Next()>>40) / (1 << 24)
			binary.LittleEndian.PutUint32(rec[:], math.Float32bits(val))
			if _, err := bw.Write(rec[:]); err != nil {
				f.Close()
				return 0, "", fmt.Errorf("gen: write feature file: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("gen: flush feature file: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, "", fmt.Errorf("gen: close feature file: %w", err)
	}
	return nodes * int64(dim) * storage.FeatureElemBytes, fmt.Sprintf("%016x", h.Sum64()), nil
}
