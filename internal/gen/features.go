package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
)

// featureSalt decorrelates the per-node feature RNG streams from the
// edge-generation streams that mix the same seed.
const featureSalt = 0xfea7f11e

// nodeFeature fills vec with node v's feature vector: len(vec) f32
// values in [0,1) drawn from a node-local RNG seeded
// Mix(seed^featureSalt, v). Node-local seeding makes every vector a
// pure function of (seed, v) — independent of write order — which is
// what the conformance suite's byte-identity assertions anchor on, and
// what lets the label generator rederive a node's vector without
// reading features.bin.
func nodeFeature(seed uint64, v int64, vec []float32) {
	rng := sample.NewRNG(sample.Mix(seed^featureSalt, uint64(v)))
	for d := range vec {
		// Top 24 bits of the draw -> f32 in [0,1) with full mantissa
		// coverage.
		vec[d] = float32(rng.Next()>>40) / (1 << 24)
	}
}

// writeFeatures emits dir/features.bin: one dim-wide f32 vector per
// node, values from nodeFeature. Returns the byte count and FNV-1a 64
// hex checksum for the manifest.
func writeFeatures(dir string, nodes int64, dim int, seed uint64) (int64, string, error) {
	if dim <= 0 {
		return 0, "", fmt.Errorf("gen: feature dim %d must be positive", dim)
	}
	f, err := os.Create(filepath.Join(dir, storage.FeaturesFile))
	if err != nil {
		return 0, "", fmt.Errorf("gen: create feature file: %w", err)
	}
	h := fnv.New64a()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<16)
	vec := make([]float32, dim)
	var rec [storage.FeatureElemBytes]byte
	for v := int64(0); v < nodes; v++ {
		nodeFeature(seed, v, vec)
		for _, val := range vec {
			binary.LittleEndian.PutUint32(rec[:], math.Float32bits(val))
			if _, err := bw.Write(rec[:]); err != nil {
				f.Close()
				return 0, "", fmt.Errorf("gen: write feature file: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("gen: flush feature file: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, "", fmt.Errorf("gen: close feature file: %w", err)
	}
	return nodes * int64(dim) * storage.FeatureElemBytes, fmt.Sprintf("%016x", h.Sum64()), nil
}
