package simtime

import "testing"

// TestClockMonotone: virtual time never rewinds — negative advances and
// backward AdvanceTo are ignored.
func TestClockMonotone(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
	c.Advance(1.5)
	c.Advance(-100)
	if c.Now() != 1.5 {
		t.Fatalf("negative Advance moved the clock to %v", c.Now())
	}
	c.AdvanceTo(1.0)
	if c.Now() != 1.5 {
		t.Fatalf("backward AdvanceTo moved the clock to %v", c.Now())
	}
	c.AdvanceTo(3.0)
	if c.Now() != 3.0 {
		t.Fatalf("AdvanceTo(3) landed at %v", c.Now())
	}
	c.Advance(0)
	if c.Now() != 3.0 {
		t.Fatalf("Advance(0) moved the clock to %v", c.Now())
	}
}

// TestPipelineOverlap: dispatched I/O runs concurrently with subsequent
// compute; WaitIO only charges the remaining tail.
func TestPipelineOverlap(t *testing.T) {
	var p Pipeline
	p.Compute(1)
	p.Dispatch(4) // I/O spans [1, 5)
	p.Compute(2)  // CPU at 3, overlapped with the I/O
	p.WaitIO()    // CPU joins the I/O horizon at 5
	if p.Now() != 5 {
		t.Fatalf("overlapped pipeline at %v, want 5", p.Now())
	}
	// Fully-hidden I/O: compute longer than the I/O costs nothing extra.
	var q Pipeline
	q.Dispatch(1)
	q.Compute(10)
	q.WaitIO()
	if q.Now() != 10 {
		t.Fatalf("hidden I/O pipeline at %v, want 10", q.Now())
	}
}

// TestPipelineInOrderIO: I/Os on one actor's queue complete in order —
// a later dispatch cannot start before the previous one finished.
func TestPipelineInOrderIO(t *testing.T) {
	var p Pipeline
	p.Dispatch(2) // [0, 2)
	p.Dispatch(3) // queued: starts at 2, done at 5
	p.WaitIO()
	if p.Now() != 5 {
		t.Fatalf("queued I/O pipeline at %v, want 5", p.Now())
	}
	// An I/O dispatched after the CPU passed the queue's horizon starts
	// at the CPU time, not earlier.
	var q Pipeline
	q.Dispatch(1)
	q.Compute(10)
	q.Dispatch(2) // starts at 10, done at 12
	q.WaitIO()
	if q.Now() != 12 {
		t.Fatalf("late-dispatch pipeline at %v, want 12", q.Now())
	}
}

// TestPipelineWaitIdempotent: WaitIO with nothing outstanding is free,
// and time stays monotone across arbitrary interleavings.
func TestPipelineWaitIdempotent(t *testing.T) {
	var p Pipeline
	p.WaitIO()
	if p.Now() != 0 {
		t.Fatalf("WaitIO on idle pipeline moved time to %v", p.Now())
	}
	prev := 0.0
	steps := []func(){
		func() { p.Compute(0.5) },
		func() { p.Dispatch(0.25) },
		func() { p.WaitIO() },
		func() { p.Dispatch(1) },
		func() { p.Compute(0.1) },
		func() { p.WaitIO() },
		func() { p.WaitIO() },
	}
	for i, step := range steps {
		step()
		if p.Now() < prev {
			t.Fatalf("step %d rewound time: %v < %v", i, p.Now(), prev)
		}
		prev = p.Now()
	}
}
