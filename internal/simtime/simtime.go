// Package simtime provides the small virtual-time pieces the modeled
// experiments share: per-actor clocks that advance by charged costs,
// with an explicit in-flight horizon for modeling overlapped I/O.
// Virtual time is float64 seconds — one coherent unit across CPU
// costs, device models and reported results, deterministic by
// construction.
package simtime

// Clock is one actor's virtual clock (a sampler thread, a device
// stream). The zero value starts at t=0.
type Clock struct {
	t float64
}

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.t }

// Advance moves the clock forward by d seconds (negative d is ignored:
// virtual time never rewinds).
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.t += d
	}
}

// AdvanceTo moves the clock to at least t.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.t {
		c.t = t
	}
}

// Pipeline models one actor overlapping compute with asynchronous I/O:
// Compute charges CPU work on the clock, Dispatch starts an I/O whose
// completion lands on a single ordered horizon (one device queue per
// actor — exactly the per-thread ring of the engine), and Drain waits
// for everything outstanding.
type Pipeline struct {
	cpu    Clock
	ioDone float64
}

// Compute charges d seconds of CPU work.
func (p *Pipeline) Compute(d float64) { p.cpu.Advance(d) }

// Dispatch submits an I/O taking d seconds of device time. The I/O
// starts when both the CPU has issued it and the previous I/O on this
// actor's queue has finished (in-order completion, like a ring with
// ordered harvesting).
func (p *Pipeline) Dispatch(d float64) {
	start := p.cpu.Now()
	if p.ioDone > start {
		start = p.ioDone
	}
	p.ioDone = start + d
}

// WaitIO blocks the CPU until all dispatched I/O has completed — the
// synchronous pipeline calls this after every group, the asynchronous
// pipeline only at layer barriers.
func (p *Pipeline) WaitIO() { p.cpu.AdvanceTo(p.ioDone) }

// Now returns the actor's CPU-side virtual time.
func (p *Pipeline) Now() float64 { return p.cpu.Now() }
