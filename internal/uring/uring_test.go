package uring

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// testFile writes n little-endian u32s (value == index) and opens it.
func testFile(t *testing.T, n int) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.bin")
	buf := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(i))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestProbeNeverPanics(t *testing.T) {
	// Whatever the environment, Probe must return (not panic) and be
	// stable across calls.
	a := Probe()
	b := Probe()
	if a != b {
		t.Fatalf("Probe unstable: %v then %v", a, b)
	}
	t.Logf("io_uring available: %v", a)
}

func TestPoolBackendAlwaysAvailable(t *testing.T) {
	f := testFile(t, 64)
	r, err := New(BackendPool, f, 8)
	if err != nil {
		t.Fatalf("pool backend must always construct: %v", err)
	}
	defer r.Close()
	if r.Entries() != 8 {
		t.Fatalf("Entries() = %d, want 8", r.Entries())
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	f := testFile(t, 4)
	if _, err := New(Backend("bogus"), f, 8); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestBackendsReadCorrectly drives every available backend through the
// same batched read workload and checks contents and result codes.
func TestBackendsReadCorrectly(t *testing.T) {
	backends := []Backend{BackendPool, BackendSim}
	if Probe().Ring {
		backends = append(backends, BackendIOURing)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			const n = 256
			f := testFile(t, n)
			r, err := New(be, f, 16)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// Read 40 scattered 2-entry runs through a 16-deep ring.
			const runs = 40
			bufs := make([][]byte, runs)
			next, completed := 0, 0
			inflight := 0
			for completed < runs {
				for next < runs {
					start := (next * 5) % (n - 2)
					bufs[next] = make([]byte, 8)
					if !r.PrepRead(uint64(next), int64(start)*4, bufs[next]) {
						break
					}
					next++
					inflight++
				}
				if _, err := r.Submit(); err != nil {
					t.Fatal(err)
				}
				cqes, err := r.Wait(1)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range cqes {
					if c.Res != 8 {
						t.Fatalf("request %d: Res = %d, want 8", c.ID, c.Res)
					}
					start := (int(c.ID) * 5) % (n - 2)
					got0 := binary.LittleEndian.Uint32(bufs[c.ID][0:])
					got1 := binary.LittleEndian.Uint32(bufs[c.ID][4:])
					if got0 != uint32(start) || got1 != uint32(start+1) {
						t.Fatalf("request %d: read (%d,%d), want (%d,%d)", c.ID, got0, got1, start, start+1)
					}
					completed++
				}
				inflight -= len(cqes)
			}
			if inflight != 0 {
				t.Fatalf("inflight = %d after drain", inflight)
			}
		})
	}
}

func TestIOURingConstructorGated(t *testing.T) {
	f := testFile(t, 4)
	r, err := New(BackendIOURing, f, 8)
	if Probe().Ring {
		if err != nil {
			t.Fatalf("Probe()=true but io_uring backend failed: %v", err)
		}
		r.Close()
	} else if err == nil {
		r.Close()
		t.Fatal("Probe()=false but io_uring backend constructed")
	}
}
