// Package uring is the submission/completion ring abstraction the
// RingSampler engine is written against. Three backends implement it:
//
//   - BackendIOURing: a from-scratch Linux io_uring binding (raw
//     io_uring_setup/io_uring_enter/io_uring_register syscalls + mmap'd
//     SQ/CQ rings, no cgo, no liburing). The paper's real I/O path,
//     with optional fast-path knobs: registered fixed buffers
//     (IORING_OP_READ_FIXED), registered files (IOSQE_FIXED_FILE), and
//     SQPOLL submission.
//   - BackendPool: a portable pread worker pool with the same batched
//     SQ/CQ semantics. Always available; this is what keeps the engine
//     running on non-Linux platforms and inside seccomp sandboxes.
//   - BackendSim: a deterministic synchronous backend (reads happen at
//     Submit, completions drain FIFO) for reproducible tests.
//
// All backends share the io_uring shape deliberately: requests are
// prepared into a bounded submission queue, published in one Submit,
// and harvested as a batch of completions — the asynchronous group
// pipeline of paper §3.2 depends on exactly these semantics.
package uring

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"unsafe"
)

// Backend names a ring implementation.
type Backend string

const (
	BackendIOURing Backend = "io_uring"
	BackendPool    Backend = "pool"
	BackendSim     Backend = "sim"
)

// CQE is one completion: the user-assigned request ID and the raw
// result (bytes read, or a negated errno on failure — io_uring's
// convention, kept across all backends).
type CQE struct {
	ID  uint64
	Res int32
}

// Ring is a single-owner SQ/CQ pair. Rings are NOT safe for concurrent
// use: the engine gives each worker thread a private ring (paper
// Fig 3a), which is also what makes the real io_uring mapping sound.
//
// The ring contract — what every backend (real io_uring, pread pool,
// deterministic sim, and the fault-injecting wrapper) guarantees and
// what consumers must absorb. The conformance suites
// (internal/uring/conformance_test.go, internal/core/conformance_test.go)
// execute this contract against all backends:
//
//   - Exactly-once completion: every request accepted by PrepRead and
//     published by Submit produces exactly one CQE carrying its ID.
//     Completions may arrive in ANY order and spread over any number of
//     Wait calls.
//   - Result convention: Res >= 0 is bytes read into the buffer prefix
//     buf[:Res]; Res in [0, len(buf)) is a short read (the prefix is
//     valid data — reading at or past EOF yields the truncated count,
//     exactly like pread(2)). Res < 0 is a negated errno; no bytes are
//     valid. Backends report real errnos (-EINTR, -EAGAIN, -EBADF,
//     ...), never a collapsed stand-in.
//   - Transient results: -EINTR and -EAGAIN, like short reads, are
//     retryable — the request did not happen (or only partially
//     happened) and the consumer is expected to resubmit the remaining
//     byte range. Consumers that cannot retry must treat them as hard
//     failures.
//   - Backpressure: PrepRead returning false is not an error; it means
//     the SQ is full or too many requests are in flight. Submit and/or
//     Wait, then retry. A ring never refuses a PrepRead while it is
//     completely idle (nothing staged or in flight).
//   - Wait(min) with min larger than the in-flight count is clamped;
//     Wait(0) is a non-blocking poll.
//   - Fixed-buffer reads: PrepReadFixed stages a read whose destination
//     must lie inside the registered buffer named by bufIndex (see
//     Options.FixedBuffers). A request referencing an unregistered
//     index, or a destination outside that buffer's bounds, is still
//     accepted and completes with -EINVAL / -EFAULT — io_uring's own
//     convention — never a panic or a silent success. Backends without
//     kernel-side fixed buffers (pool, sim) emulate: they validate the
//     index and bounds, then read exactly like PrepRead.
type Ring interface {
	// PrepRead stages a read of len(buf) bytes at byte offset off into
	// the submission queue. It returns false when the SQ is full or too
	// many requests are in flight — the caller should Submit and/or
	// Wait, then retry.
	PrepRead(id uint64, off int64, buf []byte) bool
	// PrepReadFixed stages a read like PrepRead, but through the
	// registered fixed buffer bufIndex: buf must be a sub-slice of the
	// arena passed at that index in Options.FixedBuffers. Invalid
	// references complete with -EINVAL (unregistered index) or -EFAULT
	// (out of the arena's bounds).
	PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool
	// Submit publishes all staged requests and returns how many were
	// accepted.
	Submit() (int, error)
	// Wait blocks until at least min completions are available, then
	// returns every completion currently available. min 0 polls. The
	// returned slice is reused by the next Wait call.
	Wait(min int) ([]CQE, error)
	// Entries returns the submission-queue capacity.
	Entries() int
	// Close tears the ring down. In-flight requests are drained first.
	Close() error
}

// Syscalls counts a ring's kernel crossings: Submits is submission-side
// syscalls (io_uring_enter with work to publish — or SQPOLL wakeups,
// which drop to zero in steady state; one pread(2) per request for the
// pool and sim backends, their true submission cost), Waits is blocking
// completion-side syscalls (io_uring_enter GETEVENTS; zero for pool/sim,
// which complete in user space). The benchmark harness divides these by
// batch count to report syscalls-per-batch honestly per knob combo.
type Syscalls struct {
	Submits int64
	Waits   int64
}

// SyscallReporter is implemented by rings that track their kernel
// crossings. Wrappers (the fault ring) forward to the wrapped ring.
type SyscallReporter interface {
	Syscalls() Syscalls
}

// Caps is the per-feature capability set of the real io_uring backend
// in this environment, as probed at first use. Ring false means the
// base binding doesn't work at all (non-Linux, old kernel, seccomp) and
// every other field is false too.
type Caps struct {
	// Ring: io_uring_setup, the three ring mmaps, and io_uring_enter all
	// work. The gate for BackendIOURing.
	Ring bool
	// ReadFixed: IORING_REGISTER_BUFFERS succeeds, so
	// IORING_OP_READ_FIXED into registered arenas is usable.
	ReadFixed bool
	// RegisteredFiles: IORING_REGISTER_FILES succeeds, so SQEs can carry
	// IOSQE_FIXED_FILE and skip the per-SQE fd lookup.
	RegisteredFiles bool
	// SQPoll: IORING_SETUP_SQPOLL rings can be created (kernel 5.11+
	// unprivileged, or CAP_SYS_NICE), so steady-state submission costs
	// zero syscalls.
	SQPoll bool
}

// String renders the capability set compactly, e.g.
// "ring+read_fixed+reg_files+sqpoll" or "unavailable".
func (c Caps) String() string {
	if !c.Ring {
		return "unavailable"
	}
	parts := []string{"ring"}
	if c.ReadFixed {
		parts = append(parts, "read_fixed")
	}
	if c.RegisteredFiles {
		parts = append(parts, "reg_files")
	}
	if c.SQPoll {
		parts = append(parts, "sqpoll")
	}
	return strings.Join(parts, "+")
}

// Options configures ring construction beyond the SQ depth. The zero
// value is the plain path every backend has always provided.
type Options struct {
	// Entries is the SQ capacity (<= 0 selects DefaultEntries).
	Entries int
	// FixedBuffers are workspace arenas to register at setup
	// (IORING_REGISTER_BUFFERS). PrepReadFixed destinations must lie
	// inside the arena named by their index. The real backend fails
	// construction when registration is refused (probe Caps.ReadFixed
	// first); pool and sim emulate — they validate indexes and bounds
	// and otherwise read normally.
	FixedBuffers [][]byte
	// RegisterFile registers the ring's file at setup
	// (IORING_REGISTER_FILES) and makes every SQE use the fixed-file
	// index instead of the raw fd. Accepted and ignored by pool/sim,
	// which hold the *os.File directly.
	RegisterFile bool
	// SQPoll requests IORING_SETUP_SQPOLL: a kernel thread consumes the
	// SQ, so steady-state Submit is a shared-memory store with no
	// syscall (a wakeup enter only after the thread idles out).
	// Accepted and ignored by pool/sim.
	SQPoll bool
	// SQPollIdleMS is the SQPOLL kernel thread's spin-down timeout in
	// milliseconds (0 selects 100). Longer keeps submission free across
	// bursts at the cost of a busy kernel thread.
	SQPollIdleMS uint32
}

// DefaultEntries is the paper's default ring size.
const DefaultEntries = 512

// New opens a plain ring over f with the given SQ capacity (entries
// <= 0 selects DefaultEntries). Shorthand for NewWith with only
// Entries set.
func New(be Backend, f *os.File, entries int) (Ring, error) {
	return NewWith(be, f, Options{Entries: entries})
}

// NewWith opens a ring over f with explicit Options. The real backend
// enables exactly what the options ask for and fails when the kernel
// refuses a requested feature — callers gate requests on Probe() and
// fall back themselves, so a downgrade is always a visible decision,
// never a silent one. Pool and sim emulate fixed buffers and accept-
// and-ignore the remaining knobs (documented per field).
func NewWith(be Backend, f *os.File, o Options) (Ring, error) {
	if o.Entries <= 0 {
		o.Entries = DefaultEntries
	}
	switch be {
	case BackendPool:
		return newPool(f, o), nil
	case BackendSim:
		return newSim(f, o), nil
	case BackendIOURing:
		return newIOURing(f, o)
	default:
		return nil, fmt.Errorf("uring: unknown backend %q", be)
	}
}

var (
	probeOnce sync.Once
	probeCaps Caps
)

// Probe reports the real io_uring backend's per-feature capability set
// in this environment: whether the base binding works (syscalls exist,
// the sandbox permits them, the ring mmaps succeed) and which fast-path
// knobs (fixed buffers, registered files, SQPOLL) the kernel grants.
// It never panics and caches its result — sandboxes and older kernels
// simply report fewer capabilities, and the engine downgrades to the
// plain path (or BackendPool when even Caps.Ring is false).
func Probe() Caps {
	probeOnce.Do(func() {
		defer func() {
			if recover() != nil {
				probeCaps = Caps{}
			}
		}()
		probeCaps = probe()
	})
	return probeCaps
}

// sliceWithin reports whether inner is a non-empty sub-slice of outer's
// backing bytes — the bounds check pool/sim use to emulate the kernel's
// fixed-buffer validation.
func sliceWithin(outer, inner []byte) bool {
	if len(outer) == 0 || len(inner) == 0 {
		return false
	}
	o0 := uintptr(unsafe.Pointer(&outer[0]))
	i0 := uintptr(unsafe.Pointer(&inner[0]))
	return i0 >= o0 && i0+uintptr(len(inner)) <= o0+uintptr(len(outer))
}
