// Package uring is the submission/completion ring abstraction the
// RingSampler engine is written against. Three backends implement it:
//
//   - BackendIOURing: a from-scratch Linux io_uring binding (raw
//     io_uring_setup/io_uring_enter syscalls + mmap'd SQ/CQ rings, no
//     cgo, no liburing). The paper's real I/O path.
//   - BackendPool: a portable pread worker pool with the same batched
//     SQ/CQ semantics. Always available; this is what keeps the engine
//     running on non-Linux platforms and inside seccomp sandboxes.
//   - BackendSim: a deterministic synchronous backend (reads happen at
//     Submit, completions drain FIFO) for reproducible tests.
//
// All backends share the io_uring shape deliberately: requests are
// prepared into a bounded submission queue, published in one Submit,
// and harvested as a batch of completions — the asynchronous group
// pipeline of paper §3.2 depends on exactly these semantics.
package uring

import (
	"fmt"
	"os"
	"sync"
)

// Backend names a ring implementation.
type Backend string

const (
	BackendIOURing Backend = "io_uring"
	BackendPool    Backend = "pool"
	BackendSim     Backend = "sim"
)

// CQE is one completion: the user-assigned request ID and the raw
// result (bytes read, or a negated errno on failure — io_uring's
// convention, kept across all backends).
type CQE struct {
	ID  uint64
	Res int32
}

// Ring is a single-owner SQ/CQ pair. Rings are NOT safe for concurrent
// use: the engine gives each worker thread a private ring (paper
// Fig 3a), which is also what makes the real io_uring mapping sound.
//
// The ring contract — what every backend (real io_uring, pread pool,
// deterministic sim, and the fault-injecting wrapper) guarantees and
// what consumers must absorb. The conformance suites
// (internal/uring/conformance_test.go, internal/core/conformance_test.go)
// execute this contract against all backends:
//
//   - Exactly-once completion: every request accepted by PrepRead and
//     published by Submit produces exactly one CQE carrying its ID.
//     Completions may arrive in ANY order and spread over any number of
//     Wait calls.
//   - Result convention: Res >= 0 is bytes read into the buffer prefix
//     buf[:Res]; Res in [0, len(buf)) is a short read (the prefix is
//     valid data — reading at or past EOF yields the truncated count,
//     exactly like pread(2)). Res < 0 is a negated errno; no bytes are
//     valid. Backends report real errnos (-EINTR, -EAGAIN, -EBADF,
//     ...), never a collapsed stand-in.
//   - Transient results: -EINTR and -EAGAIN, like short reads, are
//     retryable — the request did not happen (or only partially
//     happened) and the consumer is expected to resubmit the remaining
//     byte range. Consumers that cannot retry must treat them as hard
//     failures.
//   - Backpressure: PrepRead returning false is not an error; it means
//     the SQ is full or too many requests are in flight. Submit and/or
//     Wait, then retry. A ring never refuses a PrepRead while it is
//     completely idle (nothing staged or in flight).
//   - Wait(min) with min larger than the in-flight count is clamped;
//     Wait(0) is a non-blocking poll.
type Ring interface {
	// PrepRead stages a read of len(buf) bytes at byte offset off into
	// the submission queue. It returns false when the SQ is full or too
	// many requests are in flight — the caller should Submit and/or
	// Wait, then retry.
	PrepRead(id uint64, off int64, buf []byte) bool
	// Submit publishes all staged requests and returns how many were
	// accepted.
	Submit() (int, error)
	// Wait blocks until at least min completions are available, then
	// returns every completion currently available. min 0 polls. The
	// returned slice is reused by the next Wait call.
	Wait(min int) ([]CQE, error)
	// Entries returns the submission-queue capacity.
	Entries() int
	// Close tears the ring down. In-flight requests are drained first.
	Close() error
}

// DefaultEntries is the paper's default ring size.
const DefaultEntries = 512

// New opens a ring over f with the given SQ capacity (entries <= 0
// selects DefaultEntries).
func New(be Backend, f *os.File, entries int) (Ring, error) {
	if entries <= 0 {
		entries = DefaultEntries
	}
	switch be {
	case BackendPool:
		return newPool(f, entries), nil
	case BackendSim:
		return newSim(f, entries), nil
	case BackendIOURing:
		return newIOURing(f, entries)
	default:
		return nil, fmt.Errorf("uring: unknown backend %q", be)
	}
}

var (
	probeOnce sync.Once
	probeOK   bool
)

// Probe reports whether the real io_uring backend works here: the
// syscalls exist, the sandbox permits them, and the ring mmaps
// succeed. It never panics and caches its result — sandboxes and older
// kernels simply get false, and the engine falls back to BackendPool.
func Probe() bool {
	probeOnce.Do(func() {
		defer func() {
			if recover() != nil {
				probeOK = false
			}
		}()
		probeOK = probe()
	})
	return probeOK
}
