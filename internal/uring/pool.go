package uring

import (
	"os"
	"sync"
)

// poolWorkers is the number of pread goroutines per pool ring. Each
// ring is owned by one sampler worker, so this is per-worker I/O
// parallelism — the portable stand-in for io_uring's in-kernel async.
const poolWorkers = 16

// poolRing implements Ring with a goroutine worker pool issuing
// pread(2) (via ReadAt). Channel capacities cover the maximum
// in-flight count, so workers never block on the completion side and
// Submit never blocks on the work side.
type poolRing struct {
	f       *os.File
	entries int
	cqCap   int

	staged   []poolReq
	work     chan poolReq
	results  chan CQE
	inflight int
	cq       []CQE

	closeOnce sync.Once
	wg        sync.WaitGroup
}

type poolReq struct {
	id  uint64
	off int64
	buf []byte
}

func newPool(f *os.File, entries int) *poolRing {
	r := &poolRing{
		f:       f,
		entries: entries,
		cqCap:   2 * entries, // matches io_uring's default CQ = 2x SQ
	}
	r.work = make(chan poolReq, r.cqCap)
	r.results = make(chan CQE, r.cqCap)
	workers := poolWorkers
	if workers > entries {
		workers = entries
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

func (r *poolRing) worker() {
	defer r.wg.Done()
	for rq := range r.work {
		n, err := r.f.ReadAt(rq.buf, rq.off)
		r.results <- CQE{ID: rq.id, Res: errnoResult(n, err)}
	}
}

func (r *poolRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if len(r.staged) >= r.entries || r.inflight+len(r.staged) >= r.cqCap {
		return false
	}
	r.staged = append(r.staged, poolReq{id: id, off: off, buf: buf})
	return true
}

func (r *poolRing) Submit() (int, error) {
	n := len(r.staged)
	for _, rq := range r.staged {
		r.work <- rq
	}
	r.inflight += n
	r.staged = r.staged[:0]
	return n, nil
}

func (r *poolRing) Wait(min int) ([]CQE, error) {
	if min > r.inflight {
		min = r.inflight
	}
	r.cq = r.cq[:0]
	for len(r.cq) < min {
		c := <-r.results
		r.cq = append(r.cq, c)
		r.inflight--
	}
	for {
		select {
		case c := <-r.results:
			r.cq = append(r.cq, c)
			r.inflight--
		default:
			return r.cq, nil
		}
	}
}

func (r *poolRing) Entries() int { return r.entries }

func (r *poolRing) Close() error {
	r.closeOnce.Do(func() {
		// Drain anything in flight so workers aren't writing into
		// buffers the caller is about to recycle.
		for r.inflight > 0 {
			<-r.results
			r.inflight--
		}
		close(r.work)
		r.wg.Wait()
	})
	return nil
}
