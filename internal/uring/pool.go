package uring

import (
	"os"
	"sync"
	"sync/atomic"
)

// poolWorkers is the number of pread goroutines per pool ring. Each
// ring is owned by one sampler worker, so this is per-worker I/O
// parallelism — the portable stand-in for io_uring's in-kernel async.
const poolWorkers = 16

// poolRing implements Ring with a goroutine worker pool issuing
// pread(2) (via ReadAt). Channel capacities cover the maximum
// in-flight count, so workers never block on the completion side and
// Submit never blocks on the work side.
//
// Fixed buffers are emulated: arenas from Options.FixedBuffers are
// retained only to validate PrepReadFixed references (index in range,
// destination inside the arena); a valid fixed read then proceeds
// exactly like a plain read, and an invalid one completes with
// -EINVAL/-EFAULT after Submit, matching the kernel. RegisterFile and
// SQPoll are accepted and ignored — the pool holds the *os.File
// directly and has no submission syscall to elide.
type poolRing struct {
	f       *os.File
	entries int
	cqCap   int
	arenas  [][]byte

	staged   []poolReq
	synth    []CQE // invalid fixed-read completions awaiting Submit
	work     chan poolReq
	results  chan CQE
	inflight int
	cq       []CQE

	preads atomic.Int64

	closeOnce sync.Once
	wg        sync.WaitGroup
}

type poolReq struct {
	id  uint64
	off int64
	buf []byte
}

func newPool(f *os.File, o Options) *poolRing {
	r := &poolRing{
		f:       f,
		entries: o.Entries,
		cqCap:   2 * o.Entries, // matches io_uring's default CQ = 2x SQ
		arenas:  o.FixedBuffers,
	}
	r.work = make(chan poolReq, r.cqCap)
	r.results = make(chan CQE, r.cqCap)
	workers := poolWorkers
	if workers > r.entries {
		workers = r.entries
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

func (r *poolRing) worker() {
	defer r.wg.Done()
	for rq := range r.work {
		n, err := r.f.ReadAt(rq.buf, rq.off)
		r.preads.Add(1)
		r.results <- CQE{ID: rq.id, Res: errnoResult(n, err)}
	}
}

func (r *poolRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if len(r.staged)+len(r.synth) >= r.entries ||
		r.inflight+len(r.staged)+len(r.synth) >= r.cqCap {
		return false
	}
	r.staged = append(r.staged, poolReq{id: id, off: off, buf: buf})
	return true
}

func (r *poolRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	if res := fixedCheck(r.arenas, buf, bufIndex); res != 0 {
		if len(r.staged)+len(r.synth) >= r.entries ||
			r.inflight+len(r.staged)+len(r.synth) >= r.cqCap {
			return false
		}
		r.synth = append(r.synth, CQE{ID: id, Res: res})
		return true
	}
	return r.PrepRead(id, off, buf)
}

func (r *poolRing) Submit() (int, error) {
	n := len(r.staged) + len(r.synth)
	for _, rq := range r.staged {
		r.work <- rq
	}
	for _, c := range r.synth {
		r.results <- c
	}
	r.inflight += n
	r.staged = r.staged[:0]
	r.synth = r.synth[:0]
	return n, nil
}

func (r *poolRing) Wait(min int) ([]CQE, error) {
	if min > r.inflight {
		min = r.inflight
	}
	r.cq = r.cq[:0]
	for len(r.cq) < min {
		c := <-r.results
		r.cq = append(r.cq, c)
		r.inflight--
	}
	for {
		select {
		case c := <-r.results:
			r.cq = append(r.cq, c)
			r.inflight--
		default:
			return r.cq, nil
		}
	}
}

func (r *poolRing) Entries() int { return r.entries }

// Syscalls reports one submission-side syscall per pread issued — the
// pool's honest kernel-crossing count (completions are user-space).
func (r *poolRing) Syscalls() Syscalls {
	return Syscalls{Submits: r.preads.Load()}
}

func (r *poolRing) Close() error {
	r.closeOnce.Do(func() {
		// Drain anything in flight so workers aren't writing into
		// buffers the caller is about to recycle.
		for r.inflight > 0 {
			<-r.results
			r.inflight--
		}
		close(r.work)
		r.wg.Wait()
	})
	return nil
}
