package uring

import (
	"errors"
	"io"
	"io/fs"
	"syscall"
)

// errnoResult converts a ReadAt outcome into the ring result convention
// shared by every backend: a non-negative byte count (short reads
// included — EOF is reported as the bytes that were read, exactly like
// the kernel), or a negated errno on failure.
//
// When ReadAt made partial progress before failing, the partial count
// is reported as a short read: the consumer's resubmit path will run
// into the error again at the failing offset, where it surfaces with no
// bytes to hide behind. Errors that carry no errno (e.g. a closed file,
// which os reports as fs.ErrClosed rather than EBADF) are mapped to the
// nearest real errno; only truly opaque failures fall back to EIO.
func errnoResult(n int, err error) int32 {
	if err == nil || errors.Is(err, io.EOF) || n > 0 {
		return int32(n)
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		return -int32(errno)
	}
	if errors.Is(err, fs.ErrClosed) {
		return -int32(syscall.EBADF)
	}
	return -int32(syscall.EIO)
}
