package uring

import "os"

// simRing is the deterministic backend: reads execute synchronously in
// submission order at Submit time and completions drain FIFO. It keeps
// the exact SQ/CQ call shape so engine code paths are identical, but
// removes all scheduling nondeterminism — the backend of choice for
// bit-reproducibility tests.
type simRing struct {
	f       *os.File
	entries int
	staged  []poolReq
	done    []CQE
	cq      []CQE
}

func newSim(f *os.File, entries int) *simRing {
	return &simRing{f: f, entries: entries}
}

func (r *simRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if len(r.staged) >= r.entries || len(r.done)+len(r.staged) >= 2*r.entries {
		return false
	}
	r.staged = append(r.staged, poolReq{id: id, off: off, buf: buf})
	return true
}

func (r *simRing) Submit() (int, error) {
	n := len(r.staged)
	for _, rq := range r.staged {
		nn, err := r.f.ReadAt(rq.buf, rq.off)
		r.done = append(r.done, CQE{ID: rq.id, Res: errnoResult(nn, err)})
	}
	r.staged = r.staged[:0]
	return n, nil
}

func (r *simRing) Wait(min int) ([]CQE, error) {
	r.cq = append(r.cq[:0], r.done...)
	r.done = r.done[:0]
	return r.cq, nil
}

func (r *simRing) Entries() int { return r.entries }

func (r *simRing) Close() error { return nil }
