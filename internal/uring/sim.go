package uring

import "os"

// simRing is the deterministic backend: reads execute synchronously in
// submission order at Submit time and completions drain FIFO. It keeps
// the exact SQ/CQ call shape so engine code paths are identical, but
// removes all scheduling nondeterminism — the backend of choice for
// bit-reproducibility tests. Fixed buffers are emulated like the pool
// backend (validate index and bounds, then read normally; invalid
// references complete with -EINVAL/-EFAULT at Submit); RegisterFile
// and SQPoll are accepted and ignored.
type simRing struct {
	f       *os.File
	entries int
	arenas  [][]byte
	staged  []poolReq
	synth   []synthCQE
	done    []CQE
	cq      []CQE
	preads  int64
}

// synthCQE is an invalid fixed-read completion interleaved into the
// staged sequence so FIFO completion order is preserved exactly.
type synthCQE struct {
	pos int // index into the staged sequence
	c   CQE
}

func newSim(f *os.File, o Options) *simRing {
	return &simRing{f: f, entries: o.Entries, arenas: o.FixedBuffers}
}

func (r *simRing) stagedCount() int { return len(r.staged) + len(r.synth) }

func (r *simRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if r.stagedCount() >= r.entries || len(r.done)+r.stagedCount() >= 2*r.entries {
		return false
	}
	r.staged = append(r.staged, poolReq{id: id, off: off, buf: buf})
	return true
}

func (r *simRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	if res := fixedCheck(r.arenas, buf, bufIndex); res != 0 {
		if r.stagedCount() >= r.entries || len(r.done)+r.stagedCount() >= 2*r.entries {
			return false
		}
		r.synth = append(r.synth, synthCQE{pos: r.stagedCount(), c: CQE{ID: id, Res: res}})
		return true
	}
	return r.PrepRead(id, off, buf)
}

func (r *simRing) Submit() (int, error) {
	n := r.stagedCount()
	si := 0
	pos := 0
	for _, rq := range r.staged {
		for si < len(r.synth) && r.synth[si].pos == pos {
			r.done = append(r.done, r.synth[si].c)
			si++
			pos++
		}
		nn, err := r.f.ReadAt(rq.buf, rq.off)
		r.preads++
		r.done = append(r.done, CQE{ID: rq.id, Res: errnoResult(nn, err)})
		pos++
	}
	for si < len(r.synth) {
		r.done = append(r.done, r.synth[si].c)
		si++
	}
	r.staged = r.staged[:0]
	r.synth = r.synth[:0]
	return n, nil
}

func (r *simRing) Wait(min int) ([]CQE, error) {
	r.cq = append(r.cq[:0], r.done...)
	r.done = r.done[:0]
	return r.cq, nil
}

func (r *simRing) Entries() int { return r.entries }

func (r *simRing) Syscalls() Syscalls { return Syscalls{Submits: r.preads} }

func (r *simRing) Close() error { return nil }
