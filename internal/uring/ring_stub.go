//go:build !linux

package uring

import (
	"fmt"
	"os"
)

// io_uring is Linux-only; other platforms always use the pool backend.

func probe() bool { return false }

func newIOURing(f *os.File, entries int) (Ring, error) {
	return nil, fmt.Errorf("uring: io_uring is linux-only (use %s)", BackendPool)
}
