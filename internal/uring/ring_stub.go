//go:build !linux

package uring

import (
	"fmt"
	"os"
)

// io_uring is Linux-only; other platforms always use the pool backend
// and report an empty capability set.

func probe() Caps { return Caps{} }

func newIOURing(f *os.File, o Options) (Ring, error) {
	return nil, fmt.Errorf("uring: io_uring is linux-only (use %s)", BackendPool)
}
