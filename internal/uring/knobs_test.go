package uring

import (
	"bytes"
	"encoding/binary"
	"syscall"
	"testing"
)

func TestCapsString(t *testing.T) {
	cases := []struct {
		caps Caps
		want string
	}{
		{Caps{}, "unavailable"},
		{Caps{Ring: true}, "ring"},
		{Caps{Ring: true, ReadFixed: true}, "ring+read_fixed"},
		{Caps{Ring: true, ReadFixed: true, RegisteredFiles: true, SQPoll: true},
			"ring+read_fixed+reg_files+sqpoll"},
	}
	for _, c := range cases {
		if got := c.caps.String(); got != c.want {
			t.Fatalf("Caps%+v.String() = %q, want %q", c.caps, got, c.want)
		}
	}
}

// TestProbeCapsConsistent: sub-feature capabilities imply the base ring —
// a probe can never report read_fixed without a working ring under it.
func TestProbeCapsConsistent(t *testing.T) {
	caps := Probe()
	if (caps.ReadFixed || caps.RegisteredFiles || caps.SQPoll) && !caps.Ring {
		t.Fatalf("Probe() = %s: sub-feature granted without base ring", caps)
	}
	t.Logf("caps: %s", caps)
}

// drainOne submits whatever is staged and waits for exactly one CQE.
func drainOne(t *testing.T, r Ring) CQE {
	t.Helper()
	if _, err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	cqes, err := r.Wait(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 1 {
		t.Fatalf("Wait(1) returned %d CQEs, want 1", len(cqes))
	}
	return cqes[0]
}

// TestFixedReadEmulation drives the pool and sim backends' fixed-buffer
// emulation through the full contract: a valid fixed read returns the
// same bytes as a plain read, an unregistered index completes with
// -EINVAL, and a destination outside the arena completes with -EFAULT —
// structured CQEs after Submit, never a panic or a silent success.
func TestFixedReadEmulation(t *testing.T) {
	for _, be := range []Backend{BackendPool, BackendSim} {
		t.Run(string(be), func(t *testing.T) {
			f := testFile(t, 64)
			arena := make([]byte, 4096)
			r, err := NewWith(be, f, Options{Entries: 8, FixedBuffers: [][]byte{arena}})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// Valid: destination inside the registered arena.
			dst := arena[100:108]
			if !r.PrepReadFixed(1, 16, dst, 0) {
				t.Fatal("valid fixed read refused while idle")
			}
			c := drainOne(t, r)
			if c.ID != 1 || c.Res != 8 {
				t.Fatalf("valid fixed read: CQE %+v, want ID 1 Res 8", c)
			}
			if got := binary.LittleEndian.Uint32(dst); got != 4 {
				t.Fatalf("fixed read content = %d, want 4", got)
			}

			// Unregistered index: -EINVAL, exactly-once, no panic.
			if !r.PrepReadFixed(2, 0, dst, 3) {
				t.Fatal("bad-index fixed read refused (must complete with -EINVAL instead)")
			}
			if c := drainOne(t, r); c.ID != 2 || c.Res != -int32(syscall.EINVAL) {
				t.Fatalf("bad-index CQE %+v, want ID 2 Res %d", c, -int32(syscall.EINVAL))
			}

			// Destination outside the arena: -EFAULT.
			heap := make([]byte, 8)
			if !r.PrepReadFixed(3, 0, heap, 0) {
				t.Fatal("out-of-arena fixed read refused")
			}
			if c := drainOne(t, r); c.ID != 3 || c.Res != -int32(syscall.EFAULT) {
				t.Fatalf("out-of-arena CQE %+v, want ID 3 Res %d", c, -int32(syscall.EFAULT))
			}
		})
	}
}

// TestFixedReadNoArenas: a ring constructed without FixedBuffers must
// complete every PrepReadFixed with -EINVAL — the structured
// "unsupported" contract for backends asked to do fixed reads they were
// never configured for.
func TestFixedReadNoArenas(t *testing.T) {
	for _, be := range []Backend{BackendPool, BackendSim} {
		t.Run(string(be), func(t *testing.T) {
			f := testFile(t, 16)
			r, err := NewWith(be, f, Options{Entries: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 8)
			if !r.PrepReadFixed(7, 0, buf, 0) {
				t.Fatal("fixed read refused while idle")
			}
			if c := drainOne(t, r); c.ID != 7 || c.Res != -int32(syscall.EINVAL) {
				t.Fatalf("CQE %+v, want ID 7 Res %d", c, -int32(syscall.EINVAL))
			}
		})
	}
}

// TestFixedReadReal exercises IORING_OP_READ_FIXED against the kernel:
// a read through a registered buffer returns the same bytes as a plain
// read, and a reference to an unregistered buffer index completes with
// a negated errno CQE (the kernel's own validation), not an enter
// failure.
func TestFixedReadReal(t *testing.T) {
	if !Probe().ReadFixed {
		t.Skip("fixed buffers not grantable in this environment")
	}
	f := testFile(t, 64)
	arena := make([]byte, 4096)
	r, err := NewWith(BackendIOURing, f, Options{Entries: 8, FixedBuffers: [][]byte{arena}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	dst := arena[256:272]
	if !r.PrepReadFixed(1, 8, dst, 0) {
		t.Fatal("fixed read refused while idle")
	}
	c := drainOne(t, r)
	if c.ID != 1 || c.Res != 16 {
		t.Fatalf("fixed read CQE %+v, want ID 1 Res 16", c)
	}
	plain := make([]byte, 16)
	if !r.PrepRead(2, 8, plain) {
		t.Fatal("plain read refused")
	}
	if c := drainOne(t, r); c.Res != 16 {
		t.Fatalf("plain read CQE %+v", c)
	}
	if !bytes.Equal(dst, plain) {
		t.Fatalf("fixed read bytes differ from plain read:\n%x\n%x", dst, plain)
	}

	// Unregistered buffer index: the kernel posts an error CQE.
	if !r.PrepReadFixed(3, 0, dst, 9) {
		t.Fatal("bad-index fixed read refused")
	}
	if c := drainOne(t, r); c.ID != 3 || c.Res >= 0 {
		t.Fatalf("bad-index CQE %+v, want negative Res", c)
	}
}

// TestRegisteredFilesAndSQPollReal: reads through IOSQE_FIXED_FILE and
// through an SQPOLL ring must return the same bytes as the plain path.
func TestRegisteredFilesAndSQPollReal(t *testing.T) {
	caps := Probe()
	run := func(t *testing.T, o Options) {
		f := testFile(t, 64)
		r, err := NewWith(BackendIOURing, f, o)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		buf := make([]byte, 12)
		if !r.PrepRead(1, 4, buf) {
			t.Fatal("read refused while idle")
		}
		if c := drainOne(t, r); c.Res != 12 {
			t.Fatalf("CQE %+v, want Res 12", c)
		}
		for i := 0; i < 3; i++ {
			if got := binary.LittleEndian.Uint32(buf[i*4:]); got != uint32(i+1) {
				t.Fatalf("entry %d = %d, want %d", i, got, i+1)
			}
		}
	}
	t.Run("reg_files", func(t *testing.T) {
		if !caps.RegisteredFiles {
			t.Skip("registered files not grantable in this environment")
		}
		run(t, Options{Entries: 8, RegisterFile: true})
	})
	t.Run("sqpoll", func(t *testing.T) {
		if !caps.SQPoll {
			t.Skip("SQPOLL not grantable in this environment")
		}
		run(t, Options{Entries: 8, SQPoll: true, SQPollIdleMS: 10})
	})
	t.Run("all", func(t *testing.T) {
		if !caps.ReadFixed || !caps.RegisteredFiles || !caps.SQPoll {
			t.Skip("full knob set not grantable in this environment")
		}
		arena := make([]byte, 4096)
		run(t, Options{Entries: 8, FixedBuffers: [][]byte{arena}, RegisterFile: true, SQPoll: true, SQPollIdleMS: 10})
	})
}

// TestNewWithFailsFastOnUngrantedKnob: the real backend never silently
// downgrades — asking for a feature the probe says the kernel refuses
// must fail construction (callers gate on Probe() and decide the
// fallback themselves).
func TestNewWithFailsFastOnUngrantedKnob(t *testing.T) {
	caps := Probe()
	if !caps.Ring {
		t.Skip("io_uring unavailable")
	}
	f := testFile(t, 16)
	if !caps.ReadFixed {
		arena := make([]byte, 4096)
		if r, err := NewWith(BackendIOURing, f, Options{Entries: 8, FixedBuffers: [][]byte{arena}}); err == nil {
			r.Close()
			t.Fatal("fixed buffers constructed despite probe refusal")
		}
	}
	if !caps.SQPoll {
		if r, err := NewWith(BackendIOURing, f, Options{Entries: 8, SQPoll: true}); err == nil {
			r.Close()
			t.Fatal("SQPOLL ring constructed despite probe refusal")
		}
	}
	if caps.ReadFixed && caps.SQPoll {
		t.Skip("every knob grantable here; refusal path not reachable")
	}
}

// TestSyscallsReporter: pool and sim report one submission-side syscall
// per pread (their honest kernel-crossing cost) and zero blocking waits;
// the real ring reports at least one enter per submit-with-work and per
// blocking wait.
func TestSyscallsReporter(t *testing.T) {
	backends := []Backend{BackendPool, BackendSim}
	if Probe().Ring {
		backends = append(backends, BackendIOURing)
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			f := testFile(t, 64)
			r, err := NewWith(be, f, Options{Entries: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			sr, ok := r.(SyscallReporter)
			if !ok {
				t.Fatalf("%T does not implement SyscallReporter", r)
			}
			const n = 6
			done := 0
			for i := 0; i < n; i++ {
				buf := make([]byte, 8)
				if !r.PrepRead(uint64(i), int64(i)*8, buf) {
					t.Fatal("read refused while idle")
				}
				if _, err := r.Submit(); err != nil {
					t.Fatal(err)
				}
				cqes, err := r.Wait(1)
				if err != nil {
					t.Fatal(err)
				}
				done += len(cqes)
			}
			for done < n {
				cqes, err := r.Wait(1)
				if err != nil {
					t.Fatal(err)
				}
				done += len(cqes)
			}
			sys := sr.Syscalls()
			switch be {
			case BackendPool, BackendSim:
				if sys.Submits != n {
					t.Fatalf("Submits = %d, want %d (one pread per request)", sys.Submits, n)
				}
				if sys.Waits != 0 {
					t.Fatalf("Waits = %d, want 0 (user-space completion)", sys.Waits)
				}
			default:
				if sys.Submits == 0 {
					t.Fatalf("real ring reported zero submit syscalls: %+v", sys)
				}
			}
		})
	}
}

// TestFaultBadBufIndex: the fault ring's buffer-index corruption rewrites
// fixed reads to an unregistered index, and the wrapped backend must
// answer with -EINVAL CQEs while the stats count every injection.
func TestFaultBadBufIndex(t *testing.T) {
	f := testFile(t, 64)
	arena := make([]byte, 4096)
	inner, err := NewWith(BackendSim, f, Options{Entries: 8, FixedBuffers: [][]byte{arena}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewFault(inner, FaultPlan{Seed: 11, BadBufIndexRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.PrepReadFixed(1, 0, arena[:8], 0) {
		t.Fatal("fixed read refused while idle")
	}
	if c := drainOne(t, r); c.ID != 1 || c.Res != -int32(syscall.EINVAL) {
		t.Fatalf("CQE %+v, want ID 1 Res %d", c, -int32(syscall.EINVAL))
	}
	fs, ok := Faults(r)
	if !ok || fs.BadBufIndex != 1 {
		t.Fatalf("fault stats %+v (ok=%v), want BadBufIndex 1", fs, ok)
	}
	// Plain reads are untouched by this plan.
	buf := make([]byte, 8)
	if !r.PrepRead(2, 0, buf) {
		t.Fatal("plain read refused")
	}
	if c := drainOne(t, r); c.Res != 8 {
		t.Fatalf("plain read CQE %+v, want Res 8", c)
	}
}
