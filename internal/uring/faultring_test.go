package uring

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFaultPlanValidation(t *testing.T) {
	f := testFile(t, 8)
	inner := newSim(f, Options{Entries: 8})
	bad := []FaultPlan{
		{ShortReadRate: -0.1},
		{TransientRate: 1.5},
		{RejectRate: 2},
		{DelayRate: -1},
		{MaxDelay: -1},
		{ShortReadRate: 0.5, TransientRate: 0.4, HardErrRate: 0.3},
	}
	for i, p := range bad {
		if _, err := NewFault(inner, p); err == nil {
			t.Fatalf("plan %d (%+v) accepted", i, p)
		}
	}
	r, err := NewFault(inner, FaultPlan{Seed: 1, ShortReadRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Entries() != 8 {
		t.Fatalf("Entries() = %d, want inner's 8", r.Entries())
	}
}

// TestFaultRingDeterministic: equal seeds and call sequences inject the
// identical fault sequence (over the deterministic sim inner ring).
func TestFaultRingDeterministic(t *testing.T) {
	run := func() FaultStats {
		f := testFile(t, 128)
		inner := newSim(f, Options{Entries: 8})
		r, err := NewFault(inner, FaultPlan{
			Seed: 7, ShortReadRate: 0.2, TransientRate: 0.2, RejectRate: 0.2, DelayRate: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		driveConformance(t, r, conformancePlan(128), 64)
		st, _ := Faults(r)
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault injection not deterministic: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("20%% fault rates injected nothing")
	}
}

// TestFaultRingInjectsEachKind: with a plan that enables one fault kind
// at a time, that kind (and only the per-request kinds) shows up.
func TestFaultRingInjectsEachKind(t *testing.T) {
	drive := func(plan FaultPlan) FaultStats {
		f := testFile(t, 128)
		r, err := NewFault(newSim(f, Options{Entries: 8}), plan)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		driveConformance(t, r, conformancePlan(128), 256)
		st, _ := Faults(r)
		return st
	}
	if st := drive(FaultPlan{Seed: 3, ShortReadRate: 0.5}); st.ShortReads == 0 || st.Transient != 0 || st.Hard != 0 {
		t.Fatalf("short-read-only plan: %+v", st)
	}
	if st := drive(FaultPlan{Seed: 3, TransientRate: 0.5}); st.Transient == 0 || st.ShortReads != 0 {
		t.Fatalf("transient-only plan: %+v", st)
	}
	if st := drive(FaultPlan{Seed: 3, RejectRate: 0.5}); st.Rejected == 0 {
		t.Fatalf("reject-only plan: %+v", st)
	}
	if st := drive(FaultPlan{Seed: 3, DelayRate: 0.5}); st.Delayed == 0 {
		t.Fatalf("delay-only plan: %+v", st)
	}
}

// TestFaultRingHardError: a hard-error plan surfaces -EIO to the
// consumer (no silent retry, no corruption).
func TestFaultRingHardError(t *testing.T) {
	f := testFile(t, 16)
	r, err := NewFault(newSim(f, Options{Entries: 8}), FaultPlan{Seed: 1, HardErrRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 8)
	if !r.PrepRead(42, 0, buf) {
		t.Fatal("PrepRead refused on idle ring")
	}
	if _, err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	cqes, err := r.Wait(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 1 || cqes[0].ID != 42 || cqes[0].Res != -int32(syscall.EIO) {
		t.Fatalf("cqes = %+v, want one {ID:42 Res:-EIO}", cqes)
	}
}

// TestPoolRealErrno: the pool backend reports the kernel's actual errno
// (EBADF from a write-only fd), not a collapsed -EIO stand-in. The sim
// backend shares the mapping.
func TestPoolRealErrno(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wronly.bin")
	if err := os.WriteFile(path, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, be := range []Backend{BackendPool, BackendSim} {
		t.Run(string(be), func(t *testing.T) {
			r, err := New(be, f, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 8)
			if !r.PrepRead(1, 0, buf) {
				t.Fatal("PrepRead refused")
			}
			if _, err := r.Submit(); err != nil {
				t.Fatal(err)
			}
			cqes, err := r.Wait(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(cqes) != 1 || cqes[0].Res != -int32(syscall.EBADF) {
				t.Fatalf("cqes = %+v, want one Res=-EBADF(%d)", cqes, -int32(syscall.EBADF))
			}
		})
	}
}

// TestErrnoResultMapping pins the shared ReadAt→result translation.
func TestErrnoResultMapping(t *testing.T) {
	cases := []struct {
		name string
		n    int
		err  error
		want int32
	}{
		{"success", 64, nil, 64},
		{"eof-short", 3, errIO{}, 3}, // partial progress wins over the error
		{"errno", 0, &os.PathError{Op: "read", Err: syscall.EBADF}, -int32(syscall.EBADF)},
		{"wrapped-errno", 0, &os.PathError{Op: "read", Err: syscall.EINVAL}, -int32(syscall.EINVAL)},
		{"closed", 0, &os.PathError{Op: "read", Err: os.ErrClosed}, -int32(syscall.EBADF)},
		{"opaque", 0, errIO{}, -int32(syscall.EIO)},
	}
	for _, c := range cases {
		if got := errnoResult(c.n, c.err); got != c.want {
			t.Fatalf("%s: errnoResult(%d, %v) = %d, want %d", c.name, c.n, c.err, got, c.want)
		}
	}
}

type errIO struct{}

func (errIO) Error() string { return "opaque failure" }
