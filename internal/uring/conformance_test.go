package uring

import (
	"bytes"
	"os"
	"syscall"
	"testing"
)

// This file executes the Ring contract (see the Ring interface docs)
// against every backend: sim, pool, real io_uring when Probe() passes,
// and fault-injected wrappers over sim and pool. One fixed read plan is
// driven through a consumer-side retry loop; the assembled bytes must
// be identical to the file contents for every backend, every
// completion must arrive exactly once, and results must stay within
// the [negated errno, len(buf)] convention.

// confRead is one planned read of the conformance plan.
type confRead struct {
	off int64
	n   int
}

// conformancePlan is a fixed scattered-read plan over a file of
// fileEntries u32 entries: adjacent runs, single entries, odd spans,
// and a large tail read — deterministic, no RNG.
func conformancePlan(fileEntries int) []confRead {
	var plan []confRead
	for i := 0; i+9 < fileEntries; i += 7 {
		n := 4 * (1 + i%5)
		plan = append(plan, confRead{off: int64(i) * 4, n: n})
	}
	plan = append(plan, confRead{off: 0, n: 4 * (fileEntries / 2)})
	return plan
}

// driveConformance runs the plan through r with the same bounded
// retry-with-resubmit discipline the engine uses and returns each
// request's assembled bytes. It fails the test on contract violations:
// duplicate or unknown completion IDs, overlong results, or retry
// budgets exhausted by a backend that should not need them.
func driveConformance(t *testing.T, r Ring, plan []confRead, maxRetries int) [][]byte {
	t.Helper()
	type state struct {
		off      int64
		pos      int
		attempts int
	}
	bufs := make([][]byte, len(plan))
	sts := make([]state, len(plan))
	for i, p := range plan {
		bufs[i] = make([]byte, p.n)
		sts[i] = state{off: p.off}
	}
	outstanding := make(map[uint64]bool)
	var retryQ []int
	next, inflight, completed := 0, 0, 0
	for completed < len(plan) {
		staged := 0
		for len(retryQ) > 0 {
			id := retryQ[0]
			st := &sts[id]
			if !r.PrepRead(uint64(id), st.off, bufs[id][st.pos:]) {
				break
			}
			retryQ = retryQ[1:]
			outstanding[uint64(id)] = true
			staged++
		}
		if len(retryQ) == 0 {
			for next < len(plan) {
				st := &sts[next]
				if !r.PrepRead(uint64(next), st.off, bufs[next][st.pos:]) {
					break
				}
				outstanding[uint64(next)] = true
				next++
				staged++
			}
		}
		if staged > 0 {
			if _, err := r.Submit(); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			inflight += staged
		}
		cqes, err := r.Wait(1)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		for _, c := range cqes {
			if !outstanding[c.ID] {
				t.Fatalf("completion for ID %d that was not in flight", c.ID)
			}
			delete(outstanding, c.ID)
			st := &sts[c.ID]
			remain := len(bufs[c.ID]) - st.pos
			switch {
			case c.Res < 0:
				errno := syscall.Errno(-c.Res)
				if errno != syscall.EINTR && errno != syscall.EAGAIN {
					t.Fatalf("ID %d: non-transient errno %v from an in-bounds read", c.ID, errno)
				}
				if st.attempts++; st.attempts > maxRetries {
					t.Fatalf("ID %d: retry budget exhausted on transient errnos", c.ID)
				}
				retryQ = append(retryQ, int(c.ID))
			case int(c.Res) > remain:
				t.Fatalf("ID %d: overlong result %d for %d-byte window", c.ID, c.Res, remain)
			case int(c.Res) == remain:
				completed++
			default:
				st.off += int64(c.Res)
				st.pos += int(c.Res)
				if st.attempts++; st.attempts > maxRetries {
					t.Fatalf("ID %d: retry budget exhausted on short reads", c.ID)
				}
				retryQ = append(retryQ, int(c.ID))
			}
		}
		inflight -= len(cqes)
	}
	if inflight != 0 || len(outstanding) != 0 {
		t.Fatalf("drained with inflight=%d, outstanding=%d", inflight, len(outstanding))
	}
	return bufs
}

// conformanceBackends enumerates every constructible backend as a
// (name, open) pair; fault-wrapped variants cover increasingly nasty
// plans, all seeded and deterministic.
func conformanceBackends(t *testing.T) []struct {
	name string
	open func(f *os.File) (Ring, error)
} {
	t.Helper()
	const entries = 16
	wrap := func(be Backend, plan FaultPlan) func(f *os.File) (Ring, error) {
		return func(f *os.File) (Ring, error) {
			inner, err := New(be, f, entries)
			if err != nil {
				return nil, err
			}
			return NewFault(inner, plan)
		}
	}
	plain := func(be Backend) func(f *os.File) (Ring, error) {
		return func(f *os.File) (Ring, error) { return New(be, f, entries) }
	}
	mild := FaultPlan{Seed: 1, ShortReadRate: 0.05, TransientRate: 0.02, RejectRate: 0.05, DelayRate: 0.1}
	nasty := FaultPlan{Seed: 2, ShortReadRate: 0.25, TransientRate: 0.15, RejectRate: 0.2, DelayRate: 0.3, MaxDelay: 5}
	list := []struct {
		name string
		open func(f *os.File) (Ring, error)
	}{
		{"sim", plain(BackendSim)},
		{"pool", plain(BackendPool)},
		{"fault-sim-mild", wrap(BackendSim, mild)},
		{"fault-sim-nasty", wrap(BackendSim, nasty)},
		{"fault-pool-mild", wrap(BackendPool, mild)},
		{"fault-pool-nasty", wrap(BackendPool, nasty)},
	}
	if Probe().Ring {
		list = append(list,
			struct {
				name string
				open func(f *os.File) (Ring, error)
			}{"io_uring", plain(BackendIOURing)},
			struct {
				name string
				open func(f *os.File) (Ring, error)
			}{"fault-io_uring", wrap(BackendIOURing, mild)},
		)
	} else {
		t.Log("io_uring unavailable; real backend skipped")
	}
	return list
}

// TestRingConformance drives the fixed plan through every backend and
// asserts byte-identical assembled reads.
func TestRingConformance(t *testing.T) {
	const n = 512
	f := testFile(t, n)
	raw, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	plan := conformancePlan(n)
	want := make([][]byte, len(plan))
	for i, p := range plan {
		want[i] = raw[p.off : p.off+int64(p.n)]
	}
	for _, bk := range conformanceBackends(t) {
		t.Run(bk.name, func(t *testing.T) {
			r, err := bk.open(f)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			got := driveConformance(t, r, plan, 64)
			for i := range plan {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("request %d (off %d, %d bytes): bytes differ from file contents",
						i, plan[i].off, plan[i].n)
				}
			}
			if st, ok := Faults(r); ok {
				t.Logf("injected faults: %+v (total %d)", st, st.Total())
			}
		})
	}
}

// TestRingConformanceEOF pins the short-read-at-EOF convention: a read
// spanning the end of the file completes with the truncated byte count
// and a valid prefix on every backend.
func TestRingConformanceEOF(t *testing.T) {
	const n = 8
	f := testFile(t, n)
	raw, _ := os.ReadFile(f.Name())
	backends := []Backend{BackendSim, BackendPool}
	if Probe().Ring {
		backends = append(backends, BackendIOURing)
	}
	for _, be := range backends {
		t.Run(string(be), func(t *testing.T) {
			r, err := New(be, f, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 16)
			if !r.PrepRead(1, int64(n*4-8), buf) {
				t.Fatal("PrepRead refused on an idle ring")
			}
			if _, err := r.Submit(); err != nil {
				t.Fatal(err)
			}
			cqes, err := r.Wait(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(cqes) != 1 || cqes[0].Res != 8 {
				t.Fatalf("EOF-spanning read: cqes = %+v, want one Res=8", cqes)
			}
			if !bytes.Equal(buf[:8], raw[len(raw)-8:]) {
				t.Fatal("EOF-spanning read returned wrong prefix bytes")
			}
		})
	}
}

// TestRingConformanceIdlePrep pins the no-refusal-while-idle guarantee
// every retry loop depends on.
func TestRingConformanceIdlePrep(t *testing.T) {
	f := testFile(t, 16)
	for _, bk := range conformanceBackends(t) {
		t.Run(bk.name, func(t *testing.T) {
			r, err := bk.open(f)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 4)
			for i := 0; i < 50; i++ {
				if !r.PrepRead(uint64(i), 0, buf) {
					t.Fatalf("iteration %d: PrepRead refused on an idle ring", i)
				}
				if _, err := r.Submit(); err != nil {
					t.Fatal(err)
				}
				for done := 0; done < 1; {
					cqes, err := r.Wait(1)
					if err != nil {
						t.Fatal(err)
					}
					for _, c := range cqes {
						if c.Res != 4 {
							// Injected transient/short results still count as
							// the completion; resubmit to drain properly.
							if !r.PrepRead(c.ID, 0, buf) {
								t.Fatal("PrepRead refused during retry drain")
							}
							if _, err := r.Submit(); err != nil {
								t.Fatal(err)
							}
							continue
						}
						done++
					}
				}
			}
		})
	}
}
