package uring

import (
	"fmt"
	"syscall"

	"ringsampler/internal/sample"
)

// FaultPlan configures deterministic fault injection over a wrapped
// ring. All rates are probabilities in [0, 1]; the injection sequence
// is a pure function of (Seed, call sequence), so a failing run replays
// exactly. The injected faults are the real kernel behaviors the paper's
// SQ/CQ pipeline must absorb: short reads, transient negated errnos,
// hard I/O errors, SQ-full submission rejections, and delayed/reordered
// completions.
type FaultPlan struct {
	// Seed drives all injection randomness.
	Seed uint64
	// ShortReadRate truncates a read to a random non-empty prefix; the
	// prefix bytes are real data from the underlying ring, so consumers
	// must resubmit the remaining byte range (which may split mid-entry).
	ShortReadRate float64
	// TransientRate completes a request with -EINTR or -EAGAIN without
	// touching the underlying ring.
	TransientRate float64
	// HardErrRate completes a request with -EIO without touching the
	// underlying ring. Consumers are expected to fail the operation.
	HardErrRate float64
	// RejectRate makes PrepRead return false (SQ-full backpressure).
	// Rejections are only injected while work is staged or in flight and
	// are capped per call site, so a well-behaved consumer can always
	// make progress.
	RejectRate float64
	// DelayRate holds a completion back for 1..MaxDelay further Wait
	// calls, reordering it behind later completions.
	DelayRate float64
	// MaxDelay is the maximum number of Wait calls a delayed completion
	// is held (default 3 when zero).
	MaxDelay int
	// BadBufIndexRate corrupts a PrepReadFixed buffer index to an
	// unregistered one before forwarding, so the request completes with
	// the backend's structured -EINVAL instead of reading. Exercises the
	// consumer's hard-error path for fixed-buffer reads; has no effect
	// on plain PrepRead traffic.
	BadBufIndexRate float64
}

// badBufIndex is the corrupted index BadBufIndexRate injects — far
// above any registered arena count, and within uint16 range so the
// real backend's SQE encoding carries it through to the kernel intact.
const badBufIndex = 0xbad

func (p *FaultPlan) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ShortReadRate", p.ShortReadRate},
		{"TransientRate", p.TransientRate},
		{"HardErrRate", p.HardErrRate},
		{"RejectRate", p.RejectRate},
		{"DelayRate", p.DelayRate},
		{"BadBufIndexRate", p.BadBufIndexRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("uring: fault plan %s = %v outside [0,1]", r.name, r.v)
		}
	}
	if p.ShortReadRate+p.TransientRate+p.HardErrRate > 1 {
		return fmt.Errorf("uring: fault plan per-request rates sum to %v > 1",
			p.ShortReadRate+p.TransientRate+p.HardErrRate)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("uring: fault plan MaxDelay = %d negative", p.MaxDelay)
	}
	return nil
}

// FaultStats counts the faults a FaultRing actually injected.
type FaultStats struct {
	Rejected    int64 // PrepRead calls refused
	ShortReads  int64 // reads truncated
	Transient   int64 // -EINTR/-EAGAIN completions synthesized
	Hard        int64 // -EIO completions synthesized
	Delayed     int64 // completions held back at least one Wait
	BadBufIndex int64 // fixed-read buffer indexes corrupted
}

// Total returns the total number of injected fault events.
func (s FaultStats) Total() int64 {
	return s.Rejected + s.ShortReads + s.Transient + s.Hard + s.Delayed + s.BadBufIndex
}

// maxConsecReject bounds back-to-back injected PrepRead rejections so
// retry loops spin a bounded number of times per staging pass.
const maxConsecReject = 4

// faultRing wraps any Ring and injects faults per a FaultPlan while
// preserving the ring contract: every accepted request still completes
// exactly once, successful bytes are still real file bytes, and
// PrepRead is never refused while the ring is idle. It is the adversary
// the consumer-side retry path is tested against.
type faultRing struct {
	inner Ring
	plan  FaultPlan
	rng   sample.RNG
	stats FaultStats

	innerStaged   int   // requests staged into inner, not yet submitted
	innerInflight int   // requests submitted to inner, not yet harvested
	synthStaged   []CQE // synthesized completions awaiting Submit
	held          []heldCQE
	ready         []CQE
	inflight      int // total accepted-and-submitted, not yet returned
	consecReject  int
	cq            []CQE
}

type heldCQE struct {
	c   CQE
	ttl int // Wait calls remaining before release
}

// NewFault wraps inner with deterministic fault injection. The wrapped
// ring owns inner: Close closes it.
func NewFault(inner Ring, plan FaultPlan) (Ring, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.MaxDelay == 0 {
		plan.MaxDelay = 3
	}
	return &faultRing{
		inner: inner,
		plan:  plan,
		rng:   sample.NewRNG(sample.Mix(plan.Seed, 0xfa01)),
	}, nil
}

// Faults returns the injection counters of a ring created by NewFault.
func Faults(r Ring) (FaultStats, bool) {
	fr, ok := r.(*faultRing)
	if !ok {
		return FaultStats{}, false
	}
	return fr.stats, true
}

func (r *faultRing) PrepRead(id uint64, off int64, buf []byte) bool {
	return r.prepFault(id, buf, func(b []byte) bool {
		return r.inner.PrepRead(id, off, b)
	})
}

func (r *faultRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	// Buffer-index corruption: forward with an unregistered index so the
	// inner backend (real or emulated) produces its structured -EINVAL.
	if r.plan.BadBufIndexRate > 0 && r.rng.Float64() < r.plan.BadBufIndexRate {
		staged := r.innerStaged + len(r.synthStaged)
		if staged >= r.inner.Entries() || r.inflight+staged >= 2*r.inner.Entries() {
			return false
		}
		if !r.inner.PrepReadFixed(id, off, buf, badBufIndex) {
			return false
		}
		r.innerStaged++
		r.stats.BadBufIndex++
		r.consecReject = 0
		return true
	}
	return r.prepFault(id, buf, func(b []byte) bool {
		return r.inner.PrepReadFixed(id, off, b, bufIndex)
	})
}

// prepFault is the shared injection front-end for both prep flavors;
// fwd stages the (possibly truncated) destination into the inner ring.
func (r *faultRing) prepFault(id uint64, buf []byte, fwd func([]byte) bool) bool {
	// Capacity: synthesized completions bypass the inner ring, so the
	// wrapper enforces the SQ/CQ bounds itself.
	staged := r.innerStaged + len(r.synthStaged)
	if staged >= r.inner.Entries() || r.inflight+staged >= 2*r.inner.Entries() {
		return false
	}
	// Injected SQ-full rejection — never while idle, never unboundedly.
	if r.plan.RejectRate > 0 && r.consecReject < maxConsecReject &&
		(r.inflight > 0 || staged > 0) && r.rng.Float64() < r.plan.RejectRate {
		r.consecReject++
		r.stats.Rejected++
		return false
	}
	f := r.rng.Float64()
	switch {
	case f < r.plan.TransientRate:
		errno := syscall.EINTR
		if r.rng.Next()&1 == 0 {
			errno = syscall.EAGAIN
		}
		r.synthStaged = append(r.synthStaged, CQE{ID: id, Res: -int32(errno)})
		r.stats.Transient++
	case f < r.plan.TransientRate+r.plan.HardErrRate:
		r.synthStaged = append(r.synthStaged, CQE{ID: id, Res: -int32(syscall.EIO)})
		r.stats.Hard++
	case f < r.plan.TransientRate+r.plan.HardErrRate+r.plan.ShortReadRate && len(buf) >= 2:
		// Truncate to a random non-empty strict prefix; the inner ring
		// reads real bytes into it, so the completion is a genuine short
		// read (possibly splitting an entry mid-way).
		cut := 1 + r.rng.Intn(len(buf)-1)
		if !fwd(buf[:cut]) {
			return false
		}
		r.innerStaged++
		r.stats.ShortReads++
	default:
		if !fwd(buf) {
			return false
		}
		r.innerStaged++
	}
	r.consecReject = 0
	return true
}

func (r *faultRing) Submit() (int, error) {
	n := r.innerStaged + len(r.synthStaged)
	if r.innerStaged > 0 {
		if _, err := r.inner.Submit(); err != nil {
			return 0, err
		}
		r.innerInflight += r.innerStaged
		r.innerStaged = 0
	}
	// Synthesized completions become visible only after Submit, like
	// every other completion; some are additionally delayed.
	for _, c := range r.synthStaged {
		r.held = append(r.held, heldCQE{c: c, ttl: r.delayTTL()})
	}
	r.synthStaged = r.synthStaged[:0]
	r.inflight += n
	return n, nil
}

// delayTTL draws how many Wait calls a completion is held back: 0 means
// visible at the next Wait.
func (r *faultRing) delayTTL() int {
	if r.plan.DelayRate > 0 && r.rng.Float64() < r.plan.DelayRate {
		r.stats.Delayed++
		return 1 + r.rng.Intn(r.plan.MaxDelay)
	}
	return 0
}

// harvest pulls completions out of the inner ring (blocking for at
// least min of them) and routes each to ready or held.
func (r *faultRing) harvest(min int) error {
	if r.innerInflight == 0 {
		return nil
	}
	cqes, err := r.inner.Wait(min)
	if err != nil {
		return err
	}
	r.innerInflight -= len(cqes)
	for _, c := range cqes {
		if ttl := r.delayTTL(); ttl > 0 {
			r.held = append(r.held, heldCQE{c: c, ttl: ttl})
		} else {
			r.ready = append(r.ready, c)
		}
	}
	return nil
}

// mature ages held completions by one Wait call and releases the ones
// whose delay has elapsed, preserving hold order.
func (r *faultRing) mature() {
	kept := r.held[:0]
	for _, h := range r.held {
		h.ttl--
		if h.ttl <= 0 {
			r.ready = append(r.ready, h.c)
		} else {
			kept = append(kept, h)
		}
	}
	r.held = kept
}

func (r *faultRing) Wait(min int) ([]CQE, error) {
	if min > r.inflight {
		min = r.inflight
	}
	r.mature()
	if err := r.harvest(0); err != nil {
		return nil, err
	}
	for len(r.ready) < min {
		if r.innerInflight > 0 {
			if err := r.harvest(1); err != nil {
				return nil, err
			}
			continue
		}
		if len(r.held) == 0 {
			break
		}
		// Nothing left in flight below us: force-release held
		// completions (oldest first) to honor Wait's min contract.
		r.ready = append(r.ready, r.held[0].c)
		r.held = r.held[1:]
	}
	r.cq = append(r.cq[:0], r.ready...)
	r.ready = r.ready[:0]
	r.inflight -= len(r.cq)
	return r.cq, nil
}

func (r *faultRing) Entries() int { return r.inner.Entries() }

// Syscalls forwards to the wrapped ring's counters when it has them.
func (r *faultRing) Syscalls() Syscalls {
	if sr, ok := r.inner.(SyscallReporter); ok {
		return sr.Syscalls()
	}
	return Syscalls{}
}

func (r *faultRing) Close() error {
	// Drain everything below us so the inner ring is not writing into
	// caller buffers after Close returns.
	for r.innerInflight > 0 {
		if err := r.harvest(1); err != nil {
			break
		}
	}
	r.held = nil
	r.ready = nil
	r.synthStaged = nil
	r.inflight = 0
	return r.inner.Close()
}
