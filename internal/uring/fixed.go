package uring

import "syscall"

// fixedCheck emulates the kernel's fixed-buffer validation for the
// pool and sim backends: 0 means the reference is valid, otherwise the
// negated errno the request must complete with. Matches io_uring's own
// convention — an unregistered buffer index is -EINVAL, a destination
// outside the registered arena's bounds is -EFAULT — so consumer retry
// and error paths behave identically across backends.
func fixedCheck(arenas [][]byte, buf []byte, bufIndex int) int32 {
	if bufIndex < 0 || bufIndex >= len(arenas) {
		return -int32(syscall.EINVAL)
	}
	if !sliceWithin(arenas[bufIndex], buf) {
		return -int32(syscall.EFAULT)
	}
	return 0
}
