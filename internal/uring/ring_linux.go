//go:build linux

package uring

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Raw io_uring binding: io_uring_setup + io_uring_enter syscalls and
// mmap'd SQ/CQ rings, written directly against the kernel ABI (no cgo,
// no liburing). Only IORING_OP_READ is wired up — it is the one
// operation offset-based sampling needs. SQPOLL and registered files
// are config hooks for later; the plain path already gives the paper's
// one-syscall-per-group submission.

const (
	sysIOURingSetup = 425
	sysIOURingEnter = 426

	offSQRing = 0x0
	offCQRing = 0x8000000
	offSQEs   = 0x10000000

	enterGetEvents = 1 << 0

	opRead = 22 // IORING_OP_READ, kernel 5.6+

	sqeSize = 64
	cqeSize = 16
)

// Kernel ABI structs. Sizes are load-bearing: io_uring_setup writes
// through these layouts.
type sqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

// Compile-time ABI size checks (both arrays must have length 0).
var (
	_ [120 - unsafe.Sizeof(uringParams{})]byte
	_ [unsafe.Sizeof(uringParams{}) - 120]byte
	_ [40 - unsafe.Sizeof(sqringOffsets{})]byte
	_ [40 - unsafe.Sizeof(cqringOffsets{})]byte
)

// iouRing implements Ring on a real kernel ring pair.
type iouRing struct {
	fd   int
	file *os.File

	sqRing []byte
	cqRing []byte
	sqes   []byte

	sqHead    *uint32
	sqTail    *uint32
	sqMask    uint32
	sqEntries uint32
	sqArray   []uint32

	cqHead    *uint32
	cqTail    *uint32
	cqMask    uint32
	cqEntries uint32
	cqesBase  unsafe.Pointer

	localTail uint32 // SQEs written but not yet published
	staged    uint32
	inflight  uint32

	// bufs pins the destination buffers of in-flight reads so the GC
	// keeps them alive while only the kernel holds their address.
	bufs map[uint64][]byte
	cq   []CQE
}

func setupRing(entries uint32, p *uringParams) (int, error) {
	fd, _, errno := syscall.Syscall(sysIOURingSetup, uintptr(entries), uintptr(unsafe.Pointer(p)), 0)
	if errno != 0 {
		return -1, fmt.Errorf("uring: io_uring_setup: %w", errno)
	}
	return int(fd), nil
}

func enter(fd int, toSubmit, minComplete, flags uint32) (int, error) {
	for {
		n, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(fd),
			uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, fmt.Errorf("uring: io_uring_enter: %w", errno)
		}
		return int(n), nil
	}
}

func newRawRing(entries int) (*iouRing, error) {
	var p uringParams
	fd, err := setupRing(uint32(entries), &p)
	if err != nil {
		return nil, err
	}
	r := &iouRing{fd: fd, bufs: make(map[uint64][]byte)}
	fail := func(err error) (*iouRing, error) {
		r.Close()
		return nil, err
	}

	sqSize := int(p.sqOff.array + p.sqEntries*4)
	r.sqRing, err = syscall.Mmap(fd, offSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap sq ring: %w", err))
	}
	cqSize := int(p.cqOff.cqes + p.cqEntries*cqeSize)
	r.cqRing, err = syscall.Mmap(fd, offCQRing, cqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap cq ring: %w", err))
	}
	r.sqes, err = syscall.Mmap(fd, offSQEs, int(p.sqEntries)*sqeSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap sqes: %w", err))
	}

	sq := unsafe.Pointer(&r.sqRing[0])
	r.sqHead = (*uint32)(unsafe.Add(sq, p.sqOff.head))
	r.sqTail = (*uint32)(unsafe.Add(sq, p.sqOff.tail))
	r.sqMask = *(*uint32)(unsafe.Add(sq, p.sqOff.ringMask))
	r.sqEntries = p.sqEntries
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Add(sq, p.sqOff.array)), p.sqEntries)

	cq := unsafe.Pointer(&r.cqRing[0])
	r.cqHead = (*uint32)(unsafe.Add(cq, p.cqOff.head))
	r.cqTail = (*uint32)(unsafe.Add(cq, p.cqOff.tail))
	r.cqMask = *(*uint32)(unsafe.Add(cq, p.cqOff.ringMask))
	r.cqEntries = p.cqEntries
	r.cqesBase = unsafe.Add(cq, p.cqOff.cqes)

	r.localTail = atomic.LoadUint32(r.sqTail)
	return r, nil
}

func newIOURing(f *os.File, entries int) (Ring, error) {
	if !Probe() {
		return nil, fmt.Errorf("uring: io_uring unavailable in this environment (use %s)", BackendPool)
	}
	r, err := newRawRing(entries)
	if err != nil {
		return nil, err
	}
	r.file = f
	return r, nil
}

// probe verifies the full real path: setup, all three mmaps, teardown.
// Returning any error means callers fall back to the pool backend.
func probe() bool {
	r, err := newRawRing(8)
	if err != nil {
		return false
	}
	r.Close()
	return true
}

func (r *iouRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if r.staged >= r.sqEntries || r.inflight+r.staged >= r.cqEntries {
		return false
	}
	head := atomic.LoadUint32(r.sqHead)
	if r.localTail-head >= r.sqEntries {
		return false
	}
	idx := r.localTail & r.sqMask
	sqe := unsafe.Pointer(&r.sqes[idx*sqeSize])
	// Zero the slot, then fill the IORING_OP_READ fields.
	*(*[sqeSize]byte)(sqe) = [sqeSize]byte{}
	*(*uint8)(sqe) = opRead                                                    // opcode
	*(*int32)(unsafe.Add(sqe, 4)) = int32(r.file.Fd())                         // fd
	*(*uint64)(unsafe.Add(sqe, 8)) = uint64(off)                               // off
	*(*uint64)(unsafe.Add(sqe, 16)) = uint64(uintptr(unsafe.Pointer(&buf[0]))) // addr
	*(*uint32)(unsafe.Add(sqe, 24)) = uint32(len(buf))                         // len
	*(*uint64)(unsafe.Add(sqe, 32)) = id                                       // user_data
	r.sqArray[idx] = idx
	r.localTail++
	r.staged++
	r.bufs[id] = buf
	return true
}

func (r *iouRing) Submit() (int, error) {
	atomic.StoreUint32(r.sqTail, r.localTail)
	total := 0
	for r.staged > 0 {
		n, err := enter(r.fd, r.staged, 0, 0)
		if err != nil {
			return total, err
		}
		if n <= 0 {
			return total, fmt.Errorf("uring: kernel accepted 0 of %d staged sqes", r.staged)
		}
		r.staged -= uint32(n)
		r.inflight += uint32(n)
		total += n
	}
	return total, nil
}

// drainCQ moves every completion currently visible in the CQ ring into
// r.cq — a pure shared-memory poll, no syscall (paper §3.2's
// completion polling).
func (r *iouRing) drainCQ() {
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	for head != tail {
		c := unsafe.Add(r.cqesBase, (head&r.cqMask)*cqeSize)
		id := *(*uint64)(c)
		res := *(*int32)(unsafe.Add(c, 8))
		r.cq = append(r.cq, CQE{ID: id, Res: res})
		delete(r.bufs, id)
		r.inflight--
		head++
	}
	atomic.StoreUint32(r.cqHead, head)
}

func (r *iouRing) Wait(min int) ([]CQE, error) {
	if uint32(min) > r.inflight {
		min = int(r.inflight)
	}
	r.cq = r.cq[:0]
	r.drainCQ()
	for len(r.cq) < min {
		if _, err := enter(r.fd, 0, uint32(min-len(r.cq)), enterGetEvents); err != nil {
			return r.cq, err
		}
		r.drainCQ()
	}
	return r.cq, nil
}

func (r *iouRing) Entries() int { return int(r.sqEntries) }

func (r *iouRing) Close() error {
	// Drain in-flight completions so the kernel is not writing into
	// buffers after we return.
	for r.inflight > 0 {
		if _, err := r.Wait(1); err != nil {
			break
		}
	}
	if r.sqes != nil {
		syscall.Munmap(r.sqes)
		r.sqes = nil
	}
	if r.cqRing != nil {
		syscall.Munmap(r.cqRing)
		r.cqRing = nil
	}
	if r.sqRing != nil {
		syscall.Munmap(r.sqRing)
		r.sqRing = nil
	}
	if r.fd >= 0 {
		syscall.Close(r.fd)
		r.fd = -1
	}
	return nil
}
