//go:build linux

package uring

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Raw io_uring binding: io_uring_setup / io_uring_enter /
// io_uring_register syscalls and mmap'd SQ/CQ rings, written directly
// against the kernel ABI (no cgo, no liburing). Two read opcodes are
// wired up — IORING_OP_READ for the plain path and IORING_OP_READ_FIXED
// for reads into registered arenas — plus the three setup-time fast-path
// knobs the paper's hot loop wants: IORING_REGISTER_BUFFERS (skip
// per-read page pinning), IORING_REGISTER_FILES + IOSQE_FIXED_FILE
// (skip per-SQE fd lookup), and IORING_SETUP_SQPOLL (kernel-side SQ
// consumption; steady-state submission is a shared-memory store).

const (
	sysIOURingSetup    = 425
	sysIOURingEnter    = 426
	sysIOURingRegister = 427

	offSQRing = 0x0
	offCQRing = 0x8000000
	offSQEs   = 0x10000000

	setupSQPoll = 1 << 1 // IORING_SETUP_SQPOLL

	sqNeedWakeup = 1 << 0 // IORING_SQ_NEED_WAKEUP, in the SQ ring flags word

	enterGetEvents = 1 << 0 // IORING_ENTER_GETEVENTS
	enterSQWakeup  = 1 << 1 // IORING_ENTER_SQ_WAKEUP

	registerBuffers = 0 // IORING_REGISTER_BUFFERS
	registerFiles   = 2 // IORING_REGISTER_FILES

	opReadFixed = 4  // IORING_OP_READ_FIXED, kernel 5.1+
	opRead      = 22 // IORING_OP_READ, kernel 5.6+

	iosqeFixedFile = 1 << 0 // IOSQE_FIXED_FILE

	sqeSize = 64
	cqeSize = 16

	// defaultSQPollIdleMS is the SQPOLL thread spin-down timeout when
	// Options leaves it zero: long enough to span a batch's submit
	// cadence, short enough not to burn a core across idle epochs.
	defaultSQPollIdleMS = 100
)

// Kernel ABI structs. Sizes are load-bearing: io_uring_setup writes
// through these layouts.
type sqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

// Compile-time ABI size checks (both arrays must have length 0).
var (
	_ [120 - unsafe.Sizeof(uringParams{})]byte
	_ [unsafe.Sizeof(uringParams{}) - 120]byte
	_ [40 - unsafe.Sizeof(sqringOffsets{})]byte
	_ [40 - unsafe.Sizeof(cqringOffsets{})]byte
)

// iouRing implements Ring on a real kernel ring pair.
type iouRing struct {
	fd   int
	file *os.File

	sqRing []byte
	cqRing []byte
	sqes   []byte

	sqHead    *uint32
	sqTail    *uint32
	sqFlags   *uint32
	sqMask    uint32
	sqEntries uint32
	sqArray   []uint32

	cqHead    *uint32
	cqTail    *uint32
	cqMask    uint32
	cqEntries uint32
	cqesBase  unsafe.Pointer

	localTail uint32 // SQEs written but not yet published
	staged    uint32
	inflight  uint32

	sqpoll    bool
	fixedFile bool // file registered at fixed-file index 0

	// fixed pins the registered arenas for the ring's lifetime: the
	// kernel holds their pages pinned, so the GC must not reclaim them.
	fixed [][]byte
	// bufs pins the destination buffers of in-flight reads so the GC
	// keeps them alive while only the kernel holds their address.
	bufs map[uint64][]byte
	cq   []CQE

	sys Syscalls
}

func setupRing(entries uint32, p *uringParams) (int, error) {
	fd, _, errno := syscall.Syscall(sysIOURingSetup, uintptr(entries), uintptr(unsafe.Pointer(p)), 0)
	if errno != 0 {
		return -1, fmt.Errorf("uring: io_uring_setup: %w", errno)
	}
	return int(fd), nil
}

func enter(fd int, toSubmit, minComplete, flags uint32) (int, error) {
	for {
		n, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(fd),
			uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, fmt.Errorf("uring: io_uring_enter: %w", errno)
		}
		return int(n), nil
	}
}

func register(fd int, opcode uint32, arg unsafe.Pointer, nrArgs uint32) error {
	_, _, errno := syscall.Syscall6(sysIOURingRegister, uintptr(fd),
		uintptr(opcode), uintptr(arg), uintptr(nrArgs), 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

// newRawRing sets up a kernel ring per Options, maps the three rings,
// and performs the requested registrations. f may be nil only when
// RegisterFile is false (the capability probe).
func newRawRing(f *os.File, o Options) (*iouRing, error) {
	var p uringParams
	if o.SQPoll {
		p.flags |= setupSQPoll
		p.sqThreadIdle = o.SQPollIdleMS
		if p.sqThreadIdle == 0 {
			p.sqThreadIdle = defaultSQPollIdleMS
		}
	}
	fd, err := setupRing(uint32(o.Entries), &p)
	if err != nil {
		return nil, err
	}
	r := &iouRing{fd: fd, sqpoll: o.SQPoll, bufs: make(map[uint64][]byte)}
	fail := func(err error) (*iouRing, error) {
		r.Close()
		return nil, err
	}

	sqSize := int(p.sqOff.array + p.sqEntries*4)
	r.sqRing, err = syscall.Mmap(fd, offSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap sq ring: %w", err))
	}
	cqSize := int(p.cqOff.cqes + p.cqEntries*cqeSize)
	r.cqRing, err = syscall.Mmap(fd, offCQRing, cqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap cq ring: %w", err))
	}
	r.sqes, err = syscall.Mmap(fd, offSQEs, int(p.sqEntries)*sqeSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("uring: mmap sqes: %w", err))
	}

	sq := unsafe.Pointer(&r.sqRing[0])
	r.sqHead = (*uint32)(unsafe.Add(sq, p.sqOff.head))
	r.sqTail = (*uint32)(unsafe.Add(sq, p.sqOff.tail))
	r.sqFlags = (*uint32)(unsafe.Add(sq, p.sqOff.flags))
	r.sqMask = *(*uint32)(unsafe.Add(sq, p.sqOff.ringMask))
	r.sqEntries = p.sqEntries
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Add(sq, p.sqOff.array)), p.sqEntries)

	cq := unsafe.Pointer(&r.cqRing[0])
	r.cqHead = (*uint32)(unsafe.Add(cq, p.cqOff.head))
	r.cqTail = (*uint32)(unsafe.Add(cq, p.cqOff.tail))
	r.cqMask = *(*uint32)(unsafe.Add(cq, p.cqOff.ringMask))
	r.cqEntries = p.cqEntries
	r.cqesBase = unsafe.Add(cq, p.cqOff.cqes)

	r.localTail = atomic.LoadUint32(r.sqTail)

	if len(o.FixedBuffers) > 0 {
		iovs := make([]syscall.Iovec, len(o.FixedBuffers))
		for i, b := range o.FixedBuffers {
			if len(b) == 0 {
				return fail(fmt.Errorf("uring: fixed buffer %d is empty", i))
			}
			iovs[i].Base = &b[0]
			iovs[i].SetLen(len(b))
		}
		if err := register(fd, registerBuffers, unsafe.Pointer(&iovs[0]), uint32(len(iovs))); err != nil {
			return fail(fmt.Errorf("uring: IORING_REGISTER_BUFFERS: %w", err))
		}
		r.fixed = o.FixedBuffers
		runtime.KeepAlive(iovs)
	}
	if o.RegisterFile {
		fds := [1]int32{int32(f.Fd())}
		if err := register(fd, registerFiles, unsafe.Pointer(&fds[0]), 1); err != nil {
			return fail(fmt.Errorf("uring: IORING_REGISTER_FILES: %w", err))
		}
		r.fixedFile = true
	}
	return r, nil
}

// newIOURing opens a real ring over f. Every requested knob must be
// granted: construction fails (rather than silently downgrading) when
// the kernel refuses one — callers gate on Probe() so a fallback is an
// explicit, logged decision at the Config layer.
func newIOURing(f *os.File, o Options) (Ring, error) {
	caps := Probe()
	if !caps.Ring {
		return nil, fmt.Errorf("uring: io_uring unavailable in this environment (use %s)", BackendPool)
	}
	if len(o.FixedBuffers) > 0 && !caps.ReadFixed {
		return nil, fmt.Errorf("uring: fixed buffers requested but IORING_REGISTER_BUFFERS unavailable (caps %s)", caps)
	}
	if o.RegisterFile && !caps.RegisteredFiles {
		return nil, fmt.Errorf("uring: registered files requested but IORING_REGISTER_FILES unavailable (caps %s)", caps)
	}
	if o.SQPoll && !caps.SQPoll {
		return nil, fmt.Errorf("uring: SQPOLL requested but IORING_SETUP_SQPOLL unavailable (caps %s)", caps)
	}
	r, err := newRawRing(f, o)
	if err != nil {
		return nil, err
	}
	r.file = f
	return r, nil
}

// probe verifies the real path feature by feature: base setup + all
// three mmaps, buffer registration, file registration (against a pipe
// fd, so no filesystem contact), and an SQPOLL ring. Each failure just
// clears that capability — callers downgrade, never error.
func probe() Caps {
	var c Caps
	r, err := newRawRing(nil, Options{Entries: 8})
	if err != nil {
		return c
	}
	c.Ring = true

	arena := make([]byte, 4096)
	var iov syscall.Iovec
	iov.Base = &arena[0]
	iov.SetLen(len(arena))
	if register(r.fd, registerBuffers, unsafe.Pointer(&iov), 1) == nil {
		c.ReadFixed = true
	}
	runtime.KeepAlive(arena)

	var pipeFDs [2]int
	if syscall.Pipe(pipeFDs[:]) == nil {
		fds := [1]int32{int32(pipeFDs[0])}
		if register(r.fd, registerFiles, unsafe.Pointer(&fds[0]), 1) == nil {
			c.RegisteredFiles = true
		}
		syscall.Close(pipeFDs[0])
		syscall.Close(pipeFDs[1])
	}
	r.Close()

	if rs, err := newRawRing(nil, Options{Entries: 8, SQPoll: true, SQPollIdleMS: 1}); err == nil {
		c.SQPoll = true
		rs.Close()
	}
	return c
}

// prep stages one SQE. bufIndex is only meaningful for opReadFixed.
func (r *iouRing) prep(id uint64, off int64, buf []byte, opcode uint8, bufIndex uint16) bool {
	if r.staged >= r.sqEntries || r.inflight+r.staged >= r.cqEntries {
		return false
	}
	head := atomic.LoadUint32(r.sqHead)
	if r.localTail-head >= r.sqEntries {
		return false
	}
	idx := r.localTail & r.sqMask
	sqe := unsafe.Pointer(&r.sqes[idx*sqeSize])
	// Zero the slot, then fill the read fields.
	*(*[sqeSize]byte)(sqe) = [sqeSize]byte{}
	*(*uint8)(sqe) = opcode // opcode
	if r.fixedFile {
		*(*uint8)(unsafe.Add(sqe, 1)) = iosqeFixedFile // flags
		*(*int32)(unsafe.Add(sqe, 4)) = 0              // fixed-file index
	} else {
		*(*int32)(unsafe.Add(sqe, 4)) = int32(r.file.Fd()) // fd
	}
	*(*uint64)(unsafe.Add(sqe, 8)) = uint64(off)                               // off
	*(*uint64)(unsafe.Add(sqe, 16)) = uint64(uintptr(unsafe.Pointer(&buf[0]))) // addr
	*(*uint32)(unsafe.Add(sqe, 24)) = uint32(len(buf))                         // len
	*(*uint64)(unsafe.Add(sqe, 32)) = id                                       // user_data
	*(*uint16)(unsafe.Add(sqe, 40)) = bufIndex                                 // buf_index
	r.sqArray[idx] = idx
	r.localTail++
	r.staged++
	r.bufs[id] = buf
	return true
}

func (r *iouRing) PrepRead(id uint64, off int64, buf []byte) bool {
	return r.prep(id, off, buf, opRead, 0)
}

func (r *iouRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	// Out-of-range indexes are still staged: the kernel completes them
	// with a negative CQE (-EINVAL/-EFAULT) per the ring contract.
	return r.prep(id, off, buf, opReadFixed, uint16(bufIndex))
}

func (r *iouRing) Submit() (int, error) {
	atomic.StoreUint32(r.sqTail, r.localTail)
	if r.sqpoll {
		// The SQPOLL kernel thread consumes the ring; publishing the new
		// tail is the submission. Only an idled-out thread needs an enter.
		n := int(r.staged)
		r.inflight += r.staged
		r.staged = 0
		if atomic.LoadUint32(r.sqFlags)&sqNeedWakeup != 0 {
			r.sys.Submits++
			if _, err := enter(r.fd, 0, 0, enterSQWakeup); err != nil {
				return n, err
			}
		}
		return n, nil
	}
	total := 0
	for r.staged > 0 {
		r.sys.Submits++
		n, err := enter(r.fd, r.staged, 0, 0)
		if err != nil {
			return total, err
		}
		if n <= 0 {
			return total, fmt.Errorf("uring: kernel accepted 0 of %d staged sqes", r.staged)
		}
		r.staged -= uint32(n)
		r.inflight += uint32(n)
		total += n
	}
	return total, nil
}

// drainCQ moves every completion currently visible in the CQ ring into
// r.cq — a pure shared-memory poll, no syscall (paper §3.2's
// completion polling).
func (r *iouRing) drainCQ() {
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	for head != tail {
		c := unsafe.Add(r.cqesBase, (head&r.cqMask)*cqeSize)
		id := *(*uint64)(c)
		res := *(*int32)(unsafe.Add(c, 8))
		r.cq = append(r.cq, CQE{ID: id, Res: res})
		delete(r.bufs, id)
		r.inflight--
		head++
	}
	atomic.StoreUint32(r.cqHead, head)
}

func (r *iouRing) Wait(min int) ([]CQE, error) {
	if uint32(min) > r.inflight {
		min = int(r.inflight)
	}
	r.cq = r.cq[:0]
	r.drainCQ()
	for len(r.cq) < min {
		r.sys.Waits++
		if _, err := enter(r.fd, 0, uint32(min-len(r.cq)), enterGetEvents); err != nil {
			return r.cq, err
		}
		r.drainCQ()
	}
	return r.cq, nil
}

func (r *iouRing) Entries() int { return int(r.sqEntries) }

func (r *iouRing) Syscalls() Syscalls { return r.sys }

func (r *iouRing) Close() error {
	// Drain in-flight completions so the kernel is not writing into
	// buffers after we return.
	for r.inflight > 0 {
		if _, err := r.Wait(1); err != nil {
			break
		}
	}
	if r.sqes != nil {
		syscall.Munmap(r.sqes)
		r.sqes = nil
	}
	if r.cqRing != nil {
		syscall.Munmap(r.cqRing)
		r.cqRing = nil
	}
	if r.sqRing != nil {
		syscall.Munmap(r.sqRing)
		r.sqRing = nil
	}
	if r.fd >= 0 {
		syscall.Close(r.fd)
		r.fd = -1
	}
	r.fixed = nil
	return nil
}
