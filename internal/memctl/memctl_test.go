package memctl

import "testing"

func TestBudgetChargeRelease(t *testing.T) {
	b := New(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(40); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 100 || b.HighWater() != 100 || b.Remaining() != 0 {
		t.Fatalf("used=%d high=%d remaining=%d", b.Used(), b.HighWater(), b.Remaining())
	}
	err := b.Charge(1)
	if err == nil {
		t.Fatal("over-budget charge accepted")
	}
	if !IsOOM(err) {
		t.Fatalf("over-budget error not an OOM: %v", err)
	}
	b.Release(50)
	if b.Used() != 50 || b.HighWater() != 100 {
		t.Fatalf("after release: used=%d high=%d", b.Used(), b.HighWater())
	}
	if err := b.Charge(50); err != nil {
		t.Fatalf("charge after release: %v", err)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	b := New(0)
	if err := b.Charge(1 << 50); err != nil {
		t.Fatal(err)
	}
	if b.Limit() != 0 {
		t.Fatalf("Limit() = %d, want 0", b.Limit())
	}
}

func TestIsOOMOnOtherErrors(t *testing.T) {
	if IsOOM(nil) {
		t.Fatal("IsOOM(nil) = true")
	}
}
