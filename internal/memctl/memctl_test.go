package memctl

import "testing"

func TestBudgetChargeRelease(t *testing.T) {
	b := New(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(40); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 100 || b.HighWater() != 100 || b.Remaining() != 0 {
		t.Fatalf("used=%d high=%d remaining=%d", b.Used(), b.HighWater(), b.Remaining())
	}
	err := b.Charge(1)
	if err == nil {
		t.Fatal("over-budget charge accepted")
	}
	if !IsOOM(err) {
		t.Fatalf("over-budget error not an OOM: %v", err)
	}
	b.Release(50)
	if b.Used() != 50 || b.HighWater() != 100 {
		t.Fatalf("after release: used=%d high=%d", b.Used(), b.HighWater())
	}
	if err := b.Charge(50); err != nil {
		t.Fatalf("charge after release: %v", err)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	b := New(0)
	if err := b.Charge(1 << 50); err != nil {
		t.Fatal(err)
	}
	if b.Limit() != 0 {
		t.Fatalf("Limit() = %d, want 0", b.Limit())
	}
}

func TestIsOOMOnOtherErrors(t *testing.T) {
	if IsOOM(nil) {
		t.Fatal("IsOOM(nil) = true")
	}
}

// TestNegativeCharge: a negative charge is a caller bug — rejected
// without mutating the accountant, and not classified as OOM.
func TestNegativeCharge(t *testing.T) {
	b := New(100)
	if err := b.Charge(30); err != nil {
		t.Fatal(err)
	}
	err := b.Charge(-1)
	if err == nil {
		t.Fatal("negative charge accepted")
	}
	if IsOOM(err) {
		t.Fatalf("negative-charge error misclassified as OOM: %v", err)
	}
	if b.Used() != 30 || b.HighWater() != 30 {
		t.Fatalf("negative charge mutated state: used=%d high=%d", b.Used(), b.HighWater())
	}
}

// TestExactFit: a charge landing exactly on the limit succeeds; the
// next byte does not, and the failed charge leaves nothing charged.
func TestExactFit(t *testing.T) {
	b := New(64)
	if err := b.Charge(64); err != nil {
		t.Fatalf("exact-fit charge rejected: %v", err)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining() = %d at exact fit, want 0", b.Remaining())
	}
	if err := b.Charge(1); !IsOOM(err) {
		t.Fatalf("one byte past the limit: err = %v, want OOM", err)
	}
	if b.Used() != 64 {
		t.Fatalf("failed charge leaked: used = %d, want 64", b.Used())
	}
	// Zero-byte charges are free at any fill level.
	if err := b.Charge(0); err != nil {
		t.Fatalf("zero charge at full budget rejected: %v", err)
	}
}

// TestReleaseFloor: over-releasing clamps at zero instead of going
// negative (which would silently widen the budget), and the high-water
// mark is unaffected by releases.
func TestReleaseFloor(t *testing.T) {
	b := New(100)
	if err := b.Charge(10); err != nil {
		t.Fatal(err)
	}
	b.Release(50)
	if b.Used() != 0 {
		t.Fatalf("over-release: used = %d, want 0", b.Used())
	}
	if b.Remaining() != 100 {
		t.Fatalf("Remaining() = %d after clamped release, want 100", b.Remaining())
	}
	if b.HighWater() != 10 {
		t.Fatalf("release moved the high-water mark: %d", b.HighWater())
	}
	// The clamp must not have created phantom headroom.
	if err := b.Charge(100); err != nil {
		t.Fatalf("full-budget charge after clamp: %v", err)
	}
	if err := b.Charge(1); !IsOOM(err) {
		t.Fatalf("budget widened by over-release: err = %v, want OOM", err)
	}
}

// TestRemainingUnlimited: an unlimited budget reports -1 remaining at
// any fill level and still tracks Used/HighWater.
func TestRemainingUnlimited(t *testing.T) {
	b := New(0)
	if b.Remaining() != -1 {
		t.Fatalf("Remaining() = %d on unlimited budget, want -1", b.Remaining())
	}
	if err := b.Charge(1 << 40); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != -1 {
		t.Fatalf("Remaining() = %d after charge on unlimited budget, want -1", b.Remaining())
	}
	if b.Used() != 1<<40 || b.HighWater() != 1<<40 {
		t.Fatalf("unlimited budget lost accounting: used=%d high=%d", b.Used(), b.HighWater())
	}
}
