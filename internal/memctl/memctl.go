// Package memctl is the repo's cgroup substitute: an explicit memory
// budget every modeled system allocates through. Exceeding the budget
// yields ErrOOM — the modeled equivalent of the kernel OOM-killing a
// paper baseline (Figures 4/5) — and the high-water mark feeds the
// memory-proportionality claims.
package memctl

import (
	"errors"
	"fmt"
)

// ErrOOM marks an allocation that exceeded the budget.
var ErrOOM = errors.New("memctl: out of memory")

// Budget is a memory accountant. A limit of 0 means unlimited. Not
// safe for concurrent use; modeled runs are single-goroutine.
type Budget struct {
	limit int64
	used  int64
	high  int64
}

// New returns a budget with the given byte limit (0 = unlimited).
func New(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Charge allocates n bytes, failing with ErrOOM if the budget would be
// exceeded. On failure nothing is charged.
func (b *Budget) Charge(n int64) error {
	if n < 0 {
		return fmt.Errorf("memctl: negative charge %d", n)
	}
	if b.limit > 0 && b.used+n > b.limit {
		return fmt.Errorf("%w: %d used + %d requested > %d limit", ErrOOM, b.used, n, b.limit)
	}
	b.used += n
	if b.used > b.high {
		b.high = b.used
	}
	return nil
}

// Release frees n bytes.
func (b *Budget) Release(n int64) {
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
}

// Used returns the current charge.
func (b *Budget) Used() int64 { return b.used }

// HighWater returns the maximum charge ever held.
func (b *Budget) HighWater() int64 { return b.high }

// Limit returns the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Remaining returns how much can still be charged, or -1 if unlimited.
func (b *Budget) Remaining() int64 {
	if b.limit <= 0 {
		return -1
	}
	return b.limit - b.used
}

// IsOOM reports whether err is (or wraps) an out-of-memory failure.
func IsOOM(err error) bool { return errors.Is(err, ErrOOM) }
