// Package simrun holds the shared unit helpers and calibrated CPU cost
// constants of the modeled experiments. Memory budgets are expressed
// in paper-scale bytes (a "4 GB cgroup" is GBytes(4)); the scale
// divisor of a run maps graph-proportional structures back to paper
// scale before charging them (DESIGN.md §1).
package simrun

// GBytes converts paper-scale gigabytes to bytes.
func GBytes(gb float64) int64 { return int64(gb * (1 << 30)) }

// MBytes converts paper-scale megabytes to bytes.
func MBytes(mb float64) int64 { return int64(mb * (1 << 20)) }

// CPU cost constants for the modeled sampler, in seconds. They are
// calibrated to commodity-server magnitudes: drawing a fanout index is
// a few RNG multiplies plus a duplicate scan, preparing an SQE is a
// 64-byte fill plus bookkeeping, completion harvesting is a shared-
// memory poll per CQE, and frontier building is a sort touch per
// entry. The async-vs-sync pipeline gap (Fig 3b) emerges from these:
// preparation work is the term the asynchronous design overlaps with
// device time.
const (
	// CPUSampleEntrySec: choose one fanout index (Floyd draw + dedup
	// scan) and later copy the completed entry out.
	CPUSampleEntrySec = 120e-9
	// CPUPrepOpSec: stage one read request (SQE fill, offset math,
	// coalescing check).
	CPUPrepOpSec = 150e-9
	// CPUCompleteOpSec: harvest one completion from the CQ.
	CPUCompleteOpSec = 80e-9
	// CPUSortEntrySec: per-entry cost of the between-layer sort+dedup.
	CPUSortEntrySec = 40e-9
	// CPUTargetSec: per-frontier-node fixed cost (offset lookup,
	// degree clamp).
	CPUTargetSec = 60e-9
)
