package sample

import "testing"

func TestFloydWithoutReplacementInRange(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, n := range []int{1, 5, 64, 1000} {
			for _, k := range []int{0, 1, n / 2, n, n + 3} {
				r := NewRNG(seed)
				got := Floyd(&r, n, k, nil)
				want := k
				if want > n {
					want = n
				}
				if len(got) != want {
					t.Fatalf("seed %d n=%d k=%d: got %d picks, want %d", seed, n, k, len(got), want)
				}
				seen := make(map[int]bool, len(got))
				for _, idx := range got {
					if idx < 0 || idx >= n {
						t.Fatalf("seed %d n=%d k=%d: pick %d out of range", seed, n, k, idx)
					}
					if seen[idx] {
						t.Fatalf("seed %d n=%d k=%d: pick %d repeated", seed, n, k, idx)
					}
					seen[idx] = true
				}
			}
		}
	}
}

func TestFloydDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r1 := NewRNG(seed)
		r2 := NewRNG(seed)
		for trial := 0; trial < 10; trial++ {
			a := Floyd(&r1, 100, 15, nil)
			b := Floyd(&r2, 100, 15, nil)
			if len(a) != len(b) {
				t.Fatalf("seed %d: lengths differ", seed)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d trial %d: pick %d differs: %d vs %d", seed, trial, i, a[i], b[i])
				}
			}
		}
	}
}

func TestSortDedup(t *testing.T) {
	in := []uint32{9, 3, 3, 7, 0, 9, 9, 1, 7}
	got := SortDedup(append([]uint32(nil), in...))
	want := []uint32{0, 1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := SortDedup(nil); len(out) != 0 {
		t.Fatalf("SortDedup(nil) = %v, want empty", out)
	}
}

func TestRNGDeterministicAndMixStreams(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if Mix(7, 0) == Mix(7, 1) {
		t.Fatal("Mix streams collide")
	}
	// Zero seed must still produce a working generator.
	z := NewRNG(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

// TestReseedRestoresStream: Reseed fully discards consumed state — a
// reseeded generator replays NewRNG(seed) exactly, which is what makes
// per-batch reseeding erase worker history in the epoch runner.
func TestReseedRestoresStream(t *testing.T) {
	fresh := NewRNG(42)
	used := NewRNG(7)
	for i := 0; i < 57; i++ {
		used.Next()
	}
	used.Reseed(42)
	for i := 0; i < 100; i++ {
		if fresh.Next() != used.Next() {
			t.Fatalf("reseeded stream diverged at draw %d", i)
		}
	}
	// Zero-seed remapping applies through Reseed too.
	var a, b RNG
	a = NewRNG(0)
	b.Reseed(0)
	if a.Next() != b.Next() {
		t.Fatal("Reseed(0) disagrees with NewRNG(0)")
	}
}

func TestStateRestoreResumesStream(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 31; i++ {
		r.Next()
	}
	st := r.State()
	want := make([]uint64, 64)
	for i := range want {
		want[i] = r.Next()
	}
	// A fresh generator restored to the captured state continues the
	// exact same stream — the property the shard router relies on when
	// it hands mid-chunk RNG state to the next layer's shards.
	var other RNG
	other.Restore(st)
	for i, w := range want {
		if got := other.Next(); got != w {
			t.Fatalf("restored stream diverged at draw %d: got %#x want %#x", i, got, w)
		}
	}
	// Zero state is remapped, not absorbed.
	var z RNG
	z.Restore(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Fatal("Restore(0) left an absorbing zero state")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		if v := r.Uint32n(13); v >= 13 {
			t.Fatalf("Uint32n(13) = %d out of range", v)
		}
	}
}
