// Package sample provides the seeded sampling primitives shared by the
// RingSampler engine and the modeled systems: a fast xorshift RNG,
// Floyd's without-replacement fanout selection, and the sort+dedup used
// to build between-layer frontiers (paper §2.1, Fig 1).
//
// Everything here is deterministic for a fixed seed, which is what lets
// tests assert bit-identical sample sets and lets the modeled
// experiments reproduce exactly.
package sample

import (
	"math/bits"
	"slices"
)

// RNG is a seeded xorshift64* generator. The zero value is not usable;
// construct with NewRNG. It is deliberately a value type so workers can
// embed private copies with no sharing.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed. A zero seed is
// remapped to a fixed non-zero constant (xorshift has an absorbing
// zero state).
func NewRNG(seed uint64) RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return RNG{state: seed}
}

// Reseed resets the generator to the state NewRNG(seed) would produce,
// discarding any consumed stream. The epoch runner reseeds a worker's
// RNG from Mix(seed, batchIndex) before every mini-batch so the drawn
// samples depend only on the batch index, never on which worker (or
// how many workers) happened to run it.
func (r *RNG) Reseed(seed uint64) { *r = NewRNG(seed) }

// State returns the generator's raw internal state. Together with
// Restore it lets one logical draw stream be threaded across process
// boundaries: the shard router captures the state after each sampled
// layer and replays it into every shard participating in the next, so
// N shards consume bit-identical streams to a single-node run.
func (r *RNG) State() uint64 { return r.state }

// Restore sets the generator to a state previously captured with
// State. A zero state (never produced by a healthy generator, but
// possible from a corrupt wire value) is remapped like NewRNG's zero
// seed rather than absorbing the stream.
func (r *RNG) Restore(state uint64) {
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	r.state = state
}

// Mix combines a seed with a stream index (batch number, thread id,
// request id ...) into an independent-looking seed, splitmix64-style.
func Mix(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). n must be > 0. Uses the
// fixed-point multiply reduction (no modulo bias worth caring about at
// graph scales, no division).
func (r *RNG) Intn(n int) int {
	hi, _ := bits.Mul64(r.Next(), uint64(n))
	return int(hi)
}

// Uint32n returns a uniform uint32 in [0, n). n must be > 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	hi, _ := bits.Mul64(r.Next(), uint64(n))
	return uint32(hi)
}

// Uint64n returns a uniform uint64 in [0, n). n must be > 0. For n
// that fits a uint32 this consumes the same single Next() and returns
// the same value as Uint32n — callers indexing node IDs can adopt it
// without perturbing any existing seeded stream.
func (r *RNG) Uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.Next(), n)
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Floyd appends k distinct integers drawn uniformly from [0, n) to out
// and returns the extended slice, using Floyd's sampling algorithm
// (O(k) draws, no allocation beyond out). If k >= n it appends all of
// [0, n). The appended order is Floyd's insertion order, which is
// deterministic for a fixed RNG state; callers that need sorted
// indices sort the suffix themselves.
//
// Duplicate detection scans the appended suffix linearly while k is
// small (fanouts default to at most 20, where the scan beats a map by
// a wide margin) and switches to a set above floydScanThreshold so
// large fanouts cost O(k) instead of O(k²). Both paths make identical
// accept/replace decisions on an identical RNG stream, so the appended
// values — and every digest derived from them — do not depend on which
// path ran.
func Floyd(r *RNG, n, k int, out []int) []int {
	if n <= 0 || k <= 0 {
		return out
	}
	if k >= n {
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	var seen map[int]struct{}
	if k > floydScanThreshold {
		seen = make(map[int]struct{}, k)
	}
	base := len(out)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		dup := false
		if seen != nil {
			_, dup = seen[t]
		} else {
			for _, v := range out[base:] {
				if v == t {
					dup = true
					break
				}
			}
		}
		if dup {
			t = j
		}
		out = append(out, t)
		if seen != nil {
			seen[t] = struct{}{}
		}
	}
	return out
}

// floydScanThreshold is the fanout size above which Floyd trades the
// linear duplicate scan for a set. The crossover sits well above the
// paper's default fanouts, so the common path stays allocation-free.
const floydScanThreshold = 64

// SortDedup sorts xs ascending and removes duplicates in place,
// returning the shortened slice. This is the between-layer frontier
// build of paper §2.1: sampled neighbors of layer l become the unique
// target set of layer l+1.
func SortDedup(xs []uint32) []uint32 {
	slices.Sort(xs)
	return slices.Compact(xs)
}
