package sample

import (
	"slices"
	"testing"
)

// floydLinearRef is the pre-threshold reference implementation: the
// same Floyd loop with the duplicate scan always linear. The fast path
// must match it byte for byte at every size, which pins the map-based
// detection to identical accept/replace decisions.
func floydLinearRef(r *RNG, n, k int, out []int) []int {
	if n <= 0 || k <= 0 {
		return out
	}
	if k >= n {
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	base := len(out)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		dup := false
		for _, v := range out[base:] {
			if v == t {
				dup = true
				break
			}
		}
		if dup {
			t = j
		}
		out = append(out, t)
	}
	return out
}

// TestFloydMatchesLinearReference: random (n, k, seed) triples spanning
// the floydScanThreshold crossover — the shipped Floyd and the linear
// reference must agree exactly, so switching duplicate detection never
// moves a digest.
func TestFloydMatchesLinearReference(t *testing.T) {
	meta := NewRNG(0xf107d)
	for trial := 0; trial < 300; trial++ {
		n := 1 + int(meta.Uint32n(4000))
		k := 1 + int(meta.Uint32n(uint32(2*floydScanThreshold)))
		seed := meta.Next()
		r1 := NewRNG(seed)
		r2 := NewRNG(seed)
		got := Floyd(&r1, n, k, nil)
		want := floydLinearRef(&r2, n, k, nil)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d (n=%d k=%d seed=%#x): Floyd diverges from linear reference\ngot  %v\nwant %v",
				trial, n, k, seed, got, want)
		}
		if r1.Next() != r2.Next() {
			t.Fatalf("trial %d (n=%d k=%d): RNG consumption differs between paths", trial, n, k)
		}
	}
	// Pin both sides of the crossover explicitly.
	for _, k := range []int{floydScanThreshold, floydScanThreshold + 1} {
		r1, r2 := NewRNG(7), NewRNG(7)
		if !slices.Equal(Floyd(&r1, 500, k, nil), floydLinearRef(&r2, 500, k, nil)) {
			t.Fatalf("k=%d: crossover boundary diverges", k)
		}
	}
}

// TestFloydLargeFanoutProperties: the map path keeps the without-
// replacement guarantees — distinct in-range picks, and full coverage
// of [0, n) when k ≥ n.
func TestFloydLargeFanoutProperties(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := NewRNG(seed)
		n, k := 1000, 3*floydScanThreshold
		got := Floyd(&r, n, k, nil)
		if len(got) != k {
			t.Fatalf("seed %d: got %d picks, want %d", seed, len(got), k)
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("seed %d: pick %d out of range", seed, v)
			}
			if seen[v] {
				t.Fatalf("seed %d: pick %d repeated", seed, v)
			}
			seen[v] = true
		}
	}
	// k ≥ n appends all of [0, n) in order, regardless of threshold.
	r := NewRNG(9)
	n := floydScanThreshold + 10
	got := Floyd(&r, n, n+5, nil)
	if len(got) != n {
		t.Fatalf("k>n: got %d picks, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("k>n: position %d holds %d, want identity", i, v)
		}
	}
}

// TestFloydSuffixOnlyMutation: Floyd appends — a pre-existing prefix is
// never read for duplicate detection nor modified, which is what lets
// the worker reuse one scratch slice across nodes.
func TestFloydSuffixOnlyMutation(t *testing.T) {
	for _, k := range []int{3, floydScanThreshold + 8} {
		// A prefix full of every value Floyd could draw: if the dup scan
		// looked at it, every draw would collide and degenerate to the
		// j-sequence; if Floyd wrote to it, the copy check fails.
		prefix := make([]int, 50)
		for i := range prefix {
			prefix[i] = i % 10
		}
		saved := slices.Clone(prefix)
		r1 := NewRNG(11)
		out := Floyd(&r1, 200, k, slices.Clone(prefix))
		if !slices.Equal(out[:len(prefix)], saved) {
			t.Fatalf("k=%d: Floyd mutated the prefix", k)
		}
		r2 := NewRNG(11)
		fresh := Floyd(&r2, 200, k, nil)
		if !slices.Equal(out[len(prefix):], fresh) {
			t.Fatalf("k=%d: suffix depends on the pre-existing prefix\ngot  %v\nwant %v",
				k, out[len(prefix):], fresh)
		}
	}
}

// TestSortDedupProperties: random multisets in, sorted unique sets out,
// with exactly the input's distinct values.
func TestSortDedupProperties(t *testing.T) {
	meta := NewRNG(0x5d)
	for trial := 0; trial < 200; trial++ {
		n := int(meta.Uint32n(300))
		in := make([]uint32, n)
		distinct := make(map[uint32]bool, n)
		for i := range in {
			in[i] = meta.Uint32n(64) // small domain forces duplicates
			distinct[in[i]] = true
		}
		got := SortDedup(slices.Clone(in))
		if len(got) != len(distinct) {
			t.Fatalf("trial %d: %d values out, want %d distinct", trial, len(got), len(distinct))
		}
		for i, v := range got {
			if !distinct[v] {
				t.Fatalf("trial %d: output value %d not in input", trial, v)
			}
			if i > 0 && got[i-1] >= v {
				t.Fatalf("trial %d: output not strictly ascending at %d", trial, i)
			}
		}
	}
}

// TestUint64nMatchesUint32n pins the adoption guarantee the experiment
// helpers rely on: for any bound that fits a uint32, Uint64n consumes
// the same single draw and returns the same value as Uint32n.
func TestUint64nMatchesUint32n(t *testing.T) {
	a, b := NewRNG(31), NewRNG(31)
	for i := 0; i < 1000; i++ {
		n := uint32(1 + i*37)
		x := a.Uint32n(n)
		y := b.Uint64n(uint64(n))
		if uint64(x) != y {
			t.Fatalf("draw %d: Uint32n(%d) = %d but Uint64n = %d", i, n, x, y)
		}
	}
	if a.Next() != b.Next() {
		t.Fatal("Uint64n consumed a different stream length than Uint32n")
	}
	// And the 64-bit range actually works past the 32-bit boundary.
	r := NewRNG(5)
	sawHigh := false
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(1 << 40)
		if v >= 1<<40 {
			t.Fatalf("Uint64n(2^40) = %d out of range", v)
		}
		if v > 1<<32 {
			sawHigh = true
		}
	}
	if !sawHigh {
		t.Fatal("Uint64n(2^40) never exceeded 2^32 in 1000 draws — high bits lost")
	}
}
