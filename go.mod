module ringsampler

go 1.23
