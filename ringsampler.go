// Package ringsampler is the public surface of the RingSampler
// reproduction: build or open an on-disk graph dataset, then sample
// GraphSAGE-style neighborhoods through per-thread rings with
// offset-based reads (paper: "RingSampler: GNN sampling on large-scale
// graphs with io_uring", HotStorage '25).
//
//	err := ringsampler.GenerateDataset("data/g", "rmat", 100_000, 1_600_000, 1)
//	ds, err := ringsampler.Open("data/g")
//	defer ds.Close()
//	s, err := ringsampler.NewSampler(ds, ringsampler.DefaultConfig())
//	w, err := s.NewWorker(0)
//	defer w.Close()
//	batch, err := w.SampleBatch([]uint32{1, 2, 3})
package ringsampler

import (
	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Dataset is an opened on-disk graph (edge file + in-memory offset
// index).
type Dataset = storage.Dataset

// Config configures the sampling engine.
type Config = core.Config

// Sampler is the engine; Worker is one sampling thread with a private
// ring; Batch is one mini-batch's layered sample result.
type (
	Sampler = core.Sampler
	Worker  = core.Worker
	Batch   = core.Batch
	Layer   = core.Layer
)

// DefaultConfig returns the paper's default configuration: fanouts
// {20,15,10}, ring size 512, offset sampling and the asynchronous
// pipeline enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// GenerateDataset builds a synthetic dataset in dir: kind "rmat"
// (skewed, paper-shaped) or "uniform", with the given node and edge
// counts. Deterministic for a fixed seed; the preprocessing pipeline
// (generate -> external sort -> edge file + offset index) is fully
// out-of-core.
func GenerateDataset(dir, kind string, nodes, edges int64, seed uint64) error {
	_, err := gen.Generate(dir, kind, kind, nodes, edges, seed)
	return err
}

// Open opens and validates a dataset directory.
func Open(dir string) (*Dataset, error) { return storage.Open(dir) }

// NewSampler binds the engine to ds using the best ring backend
// available: real io_uring when the kernel and sandbox allow it, the
// portable pread pool otherwise.
func NewSampler(ds *Dataset, cfg Config) (*Sampler, error) {
	be := uring.BackendPool
	if uring.Probe() {
		be = uring.BackendIOURing
	}
	return core.New(ds, cfg, be)
}
