// Package ringsampler is the public surface of the RingSampler
// reproduction: build or open an on-disk graph dataset, then sample
// GraphSAGE-style neighborhoods through per-thread rings with
// offset-based reads (paper: "RingSampler: GNN sampling on large-scale
// graphs with io_uring", HotStorage '25).
//
//	err := ringsampler.GenerateDataset("data/g", "rmat", 100_000, 1_600_000, 1)
//	ds, err := ringsampler.Open("data/g")
//	defer ds.Close()
//	s, err := ringsampler.NewSampler(ds, ringsampler.DefaultConfig())
//	stats, err := ringsampler.RunEpoch(s, targets, func(i int, b *ringsampler.Batch) error {
//		return train(b) // batches arrive strictly in order
//	})
//
// RunEpoch fans mini-batches out across Config.Threads OS-thread-pinned
// workers and is thread-count-invariant: the sampled stream is a pure
// function of (dataset, config, seed, targets). For single-batch or
// custom scheduling, drive a Worker directly via s.NewWorker +
// w.SampleBatch.
package ringsampler

import (
	"context"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

// Dataset is an opened on-disk graph (edge file + in-memory offset
// index).
type Dataset = storage.Dataset

// Config configures the sampling engine.
type Config = core.Config

// Sampler is the engine; Worker is one sampling thread with a private
// ring; Batch is one mini-batch's layered sample result; EpochStats is
// the aggregated result of a RunEpoch.
type (
	Sampler    = core.Sampler
	Worker     = core.Worker
	Batch      = core.Batch
	Layer      = core.Layer
	EpochStats = core.EpochStats
)

// DefaultConfig returns the paper's default configuration: fanouts
// {20,15,10}, ring size 512, offset sampling and the asynchronous
// pipeline enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// GenerateDataset builds a synthetic dataset in dir: kind "rmat"
// (skewed, paper-shaped) or "uniform", with the given node and edge
// counts. Deterministic for a fixed seed; the preprocessing pipeline
// (generate -> external sort -> edge file + offset index) is fully
// out-of-core.
func GenerateDataset(dir, kind string, nodes, edges int64, seed uint64) error {
	_, err := gen.Generate(dir, kind, kind, nodes, edges, seed)
	return err
}

// GenOptions are the optional extras of dataset generation; the
// interesting knob is FeatureDim, which adds a fixed-stride f32 node
// feature file (features.bin) sampled deterministically per node.
type GenOptions = gen.Options

// GenerateDatasetWith is GenerateDataset with explicit options —
// notably GenOptions.FeatureDim to emit per-node feature vectors that
// workers can fetch through the ring pipeline (Config.FetchFeatures or
// BatchOpts.Features).
func GenerateDatasetWith(dir, kind string, nodes, edges int64, seed uint64, o GenOptions) error {
	_, err := gen.GenerateWith(dir, kind, kind, nodes, edges, seed, o)
	return err
}

// BatchOpts are per-batch sampling options for Worker.SampleBatchOpts
// (explicit fanouts, seed, and the feature-fetch stage).
type BatchOpts = core.BatchOpts

// OpenOptions configures how a dataset's edge file is opened; the
// interesting knob is Direct (O_DIRECT with probed alignment, falling
// back to buffered when unsupported).
type OpenOptions = storage.OpenOptions

// Open opens and validates a dataset directory.
func Open(dir string) (*Dataset, error) { return storage.Open(dir) }

// OpenWith opens and validates a dataset directory with explicit open
// options (e.g. O_DIRECT edge-file reads).
func OpenWith(dir string, opts OpenOptions) (*Dataset, error) {
	return storage.OpenWith(dir, opts)
}

// Probe reports the per-feature io_uring capability set of this
// environment (base ring, fixed buffers, registered files, SQPOLL).
func Probe() uring.Caps { return uring.Probe() }

// NewSampler binds the engine to ds using the best ring backend
// available: real io_uring when the kernel and sandbox allow it, the
// portable pread pool otherwise.
func NewSampler(ds *Dataset, cfg Config) (*Sampler, error) {
	be := uring.BackendPool
	if uring.Probe().Ring {
		be = uring.BackendIOURing
	}
	return core.New(ds, cfg, be)
}

// RunEpoch samples every target through s: the stream is sharded into
// Config.BatchSize mini-batches fanned out to Config.Threads
// OS-thread-pinned workers. Output is thread-count-invariant — each
// batch's RNG is reseeded from (Config.Seed, batchIndex), so the same
// (dataset, config, seed, targets) yields a byte-identical Batch
// stream at every thread count. onBatch (optional, may be nil) is
// invoked strictly in batch order on the calling goroutine.
func RunEpoch(s *Sampler, targets []uint32, onBatch func(index int, b *Batch) error) (*EpochStats, error) {
	return s.RunEpoch(targets, onBatch)
}

// RunEpochCtx is RunEpoch with graceful cancellation: when ctx is
// canceled mid-epoch no further batches are dispatched, in-flight
// batches finish, and the partial stats drained so far are returned
// alongside the context's error (EpochStats.Completed says how many
// batches actually ran).
func RunEpochCtx(ctx context.Context, s *Sampler, targets []uint32, onBatch func(index int, b *Batch) error) (*EpochStats, error) {
	return s.RunEpochCtx(ctx, targets, onBatch)
}
