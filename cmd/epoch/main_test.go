package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringsampler/internal/gen"
	"ringsampler/internal/uring"
)

// testGraphDir generates a small R-MAT graph once per test.
func testGraphDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.Generate(dir, "cli-test", "rmat", 2000, 30000, 11); err != nil {
		t.Fatal(err)
	}
	return dir
}

// flipRing corrupts exactly one successful read: the low byte of the
// first completed buffer is XOR-ed with 1, nudging one sampled neighbor
// id by ±1 — the smallest perturbation a digest diff must catch.
type flipRing struct {
	inner uring.Ring
	bufs  map[uint64][]byte
	done  bool
}

func (r *flipRing) PrepRead(id uint64, off int64, buf []byte) bool {
	if !r.inner.PrepRead(id, off, buf) {
		return false
	}
	r.bufs[id] = buf
	return true
}
func (r *flipRing) PrepReadFixed(id uint64, off int64, buf []byte, bufIndex int) bool {
	if !r.inner.PrepReadFixed(id, off, buf, bufIndex) {
		return false
	}
	r.bufs[id] = buf
	return true
}
func (r *flipRing) Submit() (int, error) { return r.inner.Submit() }
func (r *flipRing) Entries() int         { return r.inner.Entries() }
func (r *flipRing) Close() error         { return r.inner.Close() }

func (r *flipRing) Wait(min int) ([]uring.CQE, error) {
	cqes, err := r.inner.Wait(min)
	for _, c := range cqes {
		if !r.done && c.Res > 0 {
			r.bufs[c.ID][0] ^= 1
			r.done = true
		}
	}
	return cqes, err
}

// TestRunInvarianceHappyPath: the full pipeline — including the cache —
// passes the invariance diff and exits cleanly.
func TestRunInvarianceHappyPath(t *testing.T) {
	dir := testGraphDir(t)
	err := run([]string{
		"-data", dir, "-backend", "sim", "-targets", "256", "-batch", "64",
		"-threads", "4", "-cache-mb", "1", "-invariance",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunInvarianceDetectsPerturbation: when one read in the -threads
// run is perturbed (and the 1/2-thread reruns are clean), -invariance
// must fail — the non-zero-exit contract CI relies on. main wraps the
// returned error in log.Fatal, so a non-nil error IS a non-zero exit.
func TestRunInvarianceDetectsPerturbation(t *testing.T) {
	dir := testGraphDir(t)
	testWrapRing = func(threads int) func(uring.Ring, int) (uring.Ring, error) {
		if threads != 4 {
			return nil // reruns at 1 and 2 threads stay clean
		}
		return func(r uring.Ring, workerID int) (uring.Ring, error) {
			return &flipRing{inner: r, bufs: make(map[uint64][]byte)}, nil
		}
	}
	defer func() { testWrapRing = nil }()
	err := run([]string{
		"-data", dir, "-backend", "sim", "-targets", "256", "-batch", "64",
		"-threads", "4", "-invariance",
	}, io.Discard)
	if err == nil {
		t.Fatal("perturbed -invariance run exited clean")
	}
	if !strings.Contains(err.Error(), "invariance VIOLATED") {
		t.Fatalf("err = %v, want an invariance violation", err)
	}
}

// TestRunBenchJSON: -bench-json writes the two-point (0 and 64 MiB)
// summary; 64 MiB swallows the whole test graph, so the cached point
// must show a full hit rate and zero device bytes.
func TestRunBenchJSON(t *testing.T) {
	dir := testGraphDir(t)
	path := filepath.Join(t.TempDir(), "BENCH_epoch.json")
	err := run([]string{
		"-data", dir, "-backend", "pool", "-targets", "256", "-batch", "64",
		"-threads", "2", "-bench-json", path,
	}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(bf.Points) != 2 || bf.Points[0].CacheMB != 0 || bf.Points[1].CacheMB != 64 {
		t.Fatalf("unexpected points: %+v", bf.Points)
	}
	p0, p64 := bf.Points[0], bf.Points[1]
	if p0.EntriesPerSec <= 0 || p64.EntriesPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", bf.Points)
	}
	if p0.CacheHitRate != 0 || p0.CacheNodes != 0 {
		t.Fatalf("cache-off point reports cache activity: %+v", p0)
	}
	if p64.CacheHitRate != 1 || p64.DeviceBytes != 0 {
		t.Fatalf("64 MiB point should fully cache the test graph: %+v", p64)
	}
	if p0.Sampled != p64.Sampled {
		t.Fatalf("cache changed the sampled-entry count: %d vs %d", p0.Sampled, p64.Sampled)
	}
}

// TestRunRejectsBadFlags: flag-level errors surface as errors (non-zero
// exit), not silent acceptance.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-backend", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-cache-mb", "-3"}, io.Discard); err == nil {
		t.Fatal("negative cache budget accepted")
	}
}

// TestRunProbe: -probe prints the per-feature capability set and exits
// cleanly without touching a dataset.
func TestRunProbe(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-probe"}, &sb); err != nil {
		t.Fatalf("run -probe: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"io_uring capabilities:", "fixed buffers:", "registered files:", "sqpoll:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("probe output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "io_uring capabilities: "+uring.Probe().String()) {
		t.Fatalf("probe output disagrees with uring.Probe() = %s:\n%s", uring.Probe(), out)
	}
}

// TestRunKnobFlags: the knob flags thread through to a working epoch on
// every backend, downgrading (not failing) where a knob has no effect.
func TestRunKnobFlags(t *testing.T) {
	dir := testGraphDir(t)
	err := run([]string{
		"-data", dir, "-backend", "pool", "-targets", "256", "-batch", "64",
		"-threads", "2", "-uring-fixed", "-uring-regfiles", "-uring-sqpoll",
		"-odirect", "-depth", "8",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run with knob flags: %v", err)
	}
}

// TestRunBenchUring: the quick knob sweep writes a two-point
// (plain, fixed) JSON summary with identical digests and positive
// throughput.
func TestRunBenchUring(t *testing.T) {
	dir := testGraphDir(t)
	path := filepath.Join(t.TempDir(), "BENCH_uring.json")
	err := run([]string{
		"-data", dir, "-backend", "pool", "-targets", "256", "-batch", "64",
		"-threads", "2", "-bench-uring", path, "-bench-uring-quick",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run -bench-uring: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sf struct {
		Backend string `json:"backend"`
		Caps    string `json:"caps"`
		Points  []struct {
			Combo         string  `json:"combo"`
			Active        string  `json:"active"`
			EntriesPerSec float64 `json:"entries_per_sec"`
			FixedReads    int64   `json:"fixed_reads"`
			Digest        uint64  `json:"digest"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &sf); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(sf.Points) != 2 || sf.Points[0].Combo != "plain" || sf.Points[1].Combo != "fixed" {
		t.Fatalf("unexpected points: %+v", sf.Points)
	}
	if sf.Points[0].Digest != sf.Points[1].Digest {
		t.Fatal("quick sweep digests differ between plain and fixed")
	}
	for _, p := range sf.Points {
		if p.EntriesPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
	if sf.Points[1].FixedReads == 0 {
		t.Fatal("fixed point recorded no fixed reads")
	}
	if sf.Caps == "" {
		t.Fatal("sweep file missing probed caps")
	}
}

// labeledGraphDir generates a small featured+labeled R-MAT graph.
func labeledGraphDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "cli-train", "rmat", 2000, 30000, 11,
		gen.Options{FeatureDim: 8, NumClasses: 4}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunTrain: -train on a labeled dataset prints the per-epoch table
// and exits cleanly in both pipeline modes; the final weight digests of
// the two modes agree (the determinism contract at the CLI surface).
func TestRunTrain(t *testing.T) {
	dir := labeledGraphDir(t)
	digest := func(serial bool) string {
		var sb strings.Builder
		args := []string{
			"-data", dir, "-backend", "pool", "-targets", "256", "-batch", "64",
			"-threads", "2", "-train", "-train-epochs", "2",
			"-train-hidden", "8", "-train-lr", "0.5",
		}
		if serial {
			args = append(args, "-train-serial")
		}
		if err := run(args, &sb); err != nil {
			t.Fatalf("run -train (serial=%v): %v\n%s", serial, err, sb.String())
		}
		out := sb.String()
		if !strings.Contains(out, "labels: 4 classes") {
			t.Fatalf("startup log missing label line:\n%s", out)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		last := lines[len(lines)-1]
		if !strings.Contains(last, "epoch  1:") || !strings.Contains(last, "weights ") {
			t.Fatalf("missing final epoch line:\n%s", out)
		}
		return last[strings.LastIndex(last, " ")+1:]
	}
	if over, ser := digest(false), digest(true); over != ser {
		t.Fatalf("overlapped and serialized final weights differ: %s vs %s", over, ser)
	}
}

// TestRunTrainTempGraph: -train with no -data defaults the temporary
// graph to a trainable shape (features + labels) instead of failing.
func TestRunTrainTempGraph(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-backend", "pool", "-nodes", "1500", "-edges", "20000",
		"-targets", "128", "-batch", "64", "-threads", "2",
		"-train", "-train-epochs", "1", "-train-hidden", "8",
	}, &sb)
	if err != nil {
		t.Fatalf("run -train on temp graph: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "16-dim features, 8 classes") {
		t.Fatalf("temp graph did not default to a trainable shape:\n%s", sb.String())
	}
}

// TestRunTrainRejections: training on a shard, an unlabeled dataset, or
// with bad label flags fails with a clear error instead of degrading.
func TestRunTrainRejections(t *testing.T) {
	labeled := labeledGraphDir(t)
	shards, err := gen.Partition(labeled, filepath.Join(t.TempDir(), "shards"), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-data", shards[0], "-backend", "pool", "-targets", "64", "-train"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unsharded") {
		t.Fatalf("shard dataset accepted for training: %v", err)
	}

	plain := testGraphDir(t) // edge-only
	err = run([]string{"-data", plain, "-backend", "pool", "-targets", "64", "-train"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "needs node features") {
		t.Fatalf("feature-less dataset accepted for training: %v", err)
	}

	if err := run([]string{"-classes", "-1"}, io.Discard); err == nil {
		t.Fatal("negative -classes accepted")
	}
	if err := run([]string{"-data", labeled, "-classes", "4"}, io.Discard); err == nil {
		t.Fatal("-classes with -data accepted")
	}
	if err := run([]string{"-data", labeled, "-backend", "pool", "-train", "-train-epochs", "0"}, io.Discard); err == nil {
		t.Fatal("-train-epochs 0 accepted")
	}
}

// TestRunProbeLabels: -probe -data reports label presence and class
// count for labeled datasets and "none" for edge-only ones.
func TestRunProbeLabels(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-probe", "-data", labeledGraphDir(t)}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "labels:           4 classes") {
		t.Fatalf("probe output missing label report:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-probe", "-data", testGraphDir(t)}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "labels:           none") {
		t.Fatalf("probe output missing labels-none report:\n%s", sb.String())
	}
}

// TestRunBenchTrain: the quick training sweep writes the four-point
// JSON summary with bit-identical final weights across all points.
func TestRunBenchTrain(t *testing.T) {
	dir := labeledGraphDir(t)
	path := filepath.Join(t.TempDir(), "BENCH_train.json")
	err := run([]string{
		"-data", dir, "-backend", "pool", "-targets", "256", "-batch", "64",
		"-threads", "2", "-train-epochs", "1", "-train-hidden", "8",
		"-bench-train", path, "-bench-train-quick",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run -bench-train: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		Classes int `json:"classes"`
		Points  []struct {
			Serialized    bool    `json:"serialized"`
			FeatCache     bool    `json:"featCache"`
			FinalDigest   string  `json:"finalDigest"`
			EntriesPerSec float64 `json:"entriesPerSec"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if tf.Classes != 4 || len(tf.Points) != 4 {
		t.Fatalf("unexpected sweep file: classes %d, %d points", tf.Classes, len(tf.Points))
	}
	for _, p := range tf.Points {
		if p.FinalDigest != tf.Points[0].FinalDigest {
			t.Fatalf("final weights differ across points: %+v", tf.Points)
		}
		if p.EntriesPerSec <= 0 {
			t.Fatalf("non-positive training throughput: %+v", p)
		}
	}
}
