// Command epoch drives the real-engine parallel epoch runner: it
// shards a uniform target workload into mini-batches, fans them out to
// -threads OS-thread-pinned workers, and prints the aggregated
// EpochStats — throughput, merged and per-worker I/O counters, and the
// batch-latency histogram — plus the folded sample digest.
//
// With -invariance it reruns the identical workload at 1 and 2 threads
// and diffs the per-batch digest streams against the -threads run,
// demonstrating the thread-count-invariance guarantee on real I/O.
//
// -cache-mb pins the hottest neighbor lists in a memory-budgeted cache
// (see DESIGN.md §7); digests are identical with the cache on or off.
// -bench-json additionally reruns the workload at cache budgets 0 and
// 64 MiB and writes the machine-readable throughput summary the bench
// harness tracks.
//
// -features runs the post-draw feature-fetch stage (the dataset needs a
// feature file; generate a temporary one with -feature-dim);
// -feature-cache-mb pins the hottest nodes' vectors under a second
// memory budget. -bench-features runs the feature cache-budget ablation
// and writes benchdata/BENCH_features.json-shaped output, asserting the
// largest budget reaches zero device feature bytes. -probe with -data
// additionally reports the dataset's feature presence, dim and stride.
//
// The io_uring fast-path knobs are plumbed through as flags:
// -uring-fixed (registered buffers + READ_FIXED), -uring-regfiles
// (IOSQE_FIXED_FILE), -uring-sqpoll (kernel-thread submission),
// -odirect (page-cache bypass with probed alignment) and -depth
// (in-flight cap). -probe prints the per-feature capability set;
// -bench-uring runs the knob-ablation sweep and writes
// benchdata/BENCH_uring.json-shaped output with digest identity
// enforced across combinations.
//
// -train trains a minimal GraphSAGE node classifier end to end through
// the double-buffered sample→fetch→train pipeline (workers sample and
// fetch batch i+1 while the trainer computes on batch i); -train-serial
// is the no-overlap reference, bit-identical in weights (DESIGN.md
// §13). The dataset needs features and labels (temporary graphs default
// to 16-dim features / 8 classes under -train; tune with -feature-dim
// and -classes). -bench-train runs the {overlapped, serialized} ×
// {feature cache off, full} sweep and writes
// benchdata/BENCH_train.json-shaped output.
//
// Usage:
//
//	go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 -threads 8 -targets 4096
//	go run ./cmd/epoch -train -train-epochs 5        # temporary labeled graph
//	go run ./cmd/epoch -targets 2048 -bench-train benchdata/BENCH_train.json
//	go run ./cmd/epoch -targets 8192 -invariance   # generates a temporary R-MAT graph
//	go run ./cmd/epoch -targets 4096 -cache-mb 64 -bench-json benchdata/BENCH_epoch.json
//	go run ./cmd/epoch -probe
//	go run ./cmd/epoch -targets 4096 -uring-fixed -uring-sqpoll -odirect
//	go run ./cmd/epoch -targets 2048 -bench-uring benchdata/BENCH_uring.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ringsampler/internal/core"
	"ringsampler/internal/exp"
	"ringsampler/internal/gen"
	"ringsampler/internal/graph"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/train"
	"ringsampler/internal/uring"
)

func genTemp(dir string, nodes, edges int64, seed uint64, featureDim, classes int) (graph.Manifest, error) {
	return gen.GenerateWith(dir, "epoch-tmp", "rmat", nodes, edges, seed,
		gen.Options{FeatureDim: featureDim, NumClasses: classes})
}

// testWrapRing, when non-nil, decorates each run's rings keyed by that
// run's thread count. It exists so the CLI tests can perturb a single
// read in one run of an -invariance pair and assert the command fails;
// production runs never set it.
var testWrapRing func(threads int) func(uring.Ring, int) (uring.Ring, error)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("epoch", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset directory (empty: generate a temporary R-MAT graph)")
		nodes       = fs.Int64("nodes", 50_000, "node count for the temporary graph (with empty -data)")
		edges       = fs.Int64("edges", 800_000, "edge count for the temporary graph (with empty -data)")
		threads     = fs.Int("threads", 0, "worker count (0: config default)")
		batch       = fs.Int("batch", 0, "mini-batch size (0: config default)")
		targets     = fs.Int("targets", 4096, "epoch target-node count")
		seed        = fs.Uint64("seed", 1, "sampling seed")
		backend     = fs.String("backend", "auto", "ring backend: auto, io_uring, pool, sim")
		invariance  = fs.Bool("invariance", false, "rerun at 1 and 2 threads and diff per-batch digests")
		cacheMB     = fs.Int64("cache-mb", 0, "hot-neighbor cache budget in MiB (0: cache off)")
		benchJSON   = fs.String("bench-json", "", "write a JSON throughput summary at cache budgets 0 and 64 MiB to this file")
		probe       = fs.Bool("probe", false, "print the probed io_uring capability set and exit")
		uringFixed  = fs.Bool("uring-fixed", false, "register worker arenas and read via IORING_OP_READ_FIXED (emulated on pool/sim)")
		uringReg    = fs.Bool("uring-regfiles", false, "register the edge file and submit with IOSQE_FIXED_FILE (real backend only)")
		uringSQP    = fs.Bool("uring-sqpoll", false, "create SQPOLL rings: kernel-thread submission, zero steady-state submit syscalls (real backend only)")
		odirect     = fs.Bool("odirect", false, "open the edge file O_DIRECT (falls back to buffered with a logged reason when unsupported)")
		depth       = fs.Int("depth", 0, "cap in-flight reads per worker (0: bounded only by the ring)")
		benchUring  = fs.String("bench-uring", "", "run the knob-ablation sweep and write its JSON summary to this file")
		benchQuick  = fs.Bool("bench-uring-quick", false, "shrink the knob sweep to the plain-vs-fixed smoke pair")
		featureDim  = fs.Int("feature-dim", 0, "per-node f32 feature dimension for the temporary graph (with empty -data; 0: no features)")
		features    = fs.Bool("features", false, "fetch feature vectors for every sampled node after each batch's draw")
		featMB      = fs.Int64("feature-cache-mb", 0, "hot-node feature cache budget in MiB (0: cache off)")
		benchFeat   = fs.String("bench-features", "", "run the feature cache-budget ablation and write its JSON summary to this file")
		benchFeatQ  = fs.Bool("bench-features-quick", false, "shrink the feature ablation to the cache-off/cache-all smoke pair")
		classes     = fs.Int("classes", 0, "per-node label class count for the temporary graph (with empty -data; 0: no labels)")
		trainMode   = fs.Bool("train", false, "train a GraphSAGE classifier through the double-buffered sample→fetch→train pipeline")
		trainEpochs = fs.Int("train-epochs", 3, "training epoch count (with -train)")
		trainHidden = fs.Int("train-hidden", 16, "GraphSAGE hidden width (with -train)")
		trainLayers = fs.Int("train-layers", 2, "GraphSAGE depth; must not exceed the sampling fanout depth (with -train)")
		trainLR     = fs.Float64("train-lr", 0.1, "SGD learning rate (with -train)")
		trainSerial = fs.Bool("train-serial", false, "serialize the pipeline: sample each batch to completion before training on it (with -train)")
		benchTrain  = fs.String("bench-train", "", "run the training pipeline sweep and write its JSON summary to this file")
		benchTrainQ = fs.Bool("bench-train-quick", false, "shrink the training sweep to a 1-epoch smoke run (skips the throughput assertion)")
		strategy    = fs.String("strategy", "", "sampling strategy: uniform, weighted, walk (empty: uniform)")
		benchStrat  = fs.String("bench-strategy", "", "run the strategy sweep (thread invariance enforced per strategy) and write its JSON summary to this file")
		benchStratQ = fs.Bool("bench-strategy-quick", false, "shrink the strategy sweep to the uniform-vs-walk smoke pair")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *probe {
		caps := uring.Probe()
		fmt.Fprintf(out, "io_uring capabilities: %s\n", caps)
		fmt.Fprintf(out, "  ring:             %v\n", caps.Ring)
		fmt.Fprintf(out, "  fixed buffers:    %v\n", caps.ReadFixed)
		fmt.Fprintf(out, "  registered files: %v\n", caps.RegisteredFiles)
		fmt.Fprintf(out, "  sqpoll:           %v\n", caps.SQPoll)
		// -probe with -data also inspects the dataset itself; before, the
		// flag was silently ignored here and a featureful dataset was
		// indistinguishable from an edge-only one.
		if *data != "" {
			man, err := graph.LoadManifest(filepath.Join(*data, storage.ManifestFile))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "dataset %s: %d nodes, %d edges\n", *data, man.NumNodes, man.NumEdges)
			if man.FeatureDim > 0 {
				fmt.Fprintf(out, "  features:         %d-dim f32, %d B/node stride, %d B total (checksum %s)\n",
					man.FeatureDim, man.FeatureDim*storage.FeatureElemBytes, man.FeatBytes, man.FeatChecksum)
			} else {
				fmt.Fprintf(out, "  features:         none\n")
			}
			if man.NumClasses > 0 {
				fmt.Fprintf(out, "  labels:           %d classes, %d B total (checksum %s)\n",
					man.NumClasses, man.NumNodes*storage.LabelBytes, man.LabelChecksum)
			} else {
				fmt.Fprintf(out, "  labels:           none\n")
			}
		}
		return nil
	}
	// SIGINT/SIGTERM drain the epoch gracefully: no further batches are
	// dispatched, in-flight ones finish, and the partial stats are still
	// printed before the command exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *cacheMB < 0 {
		return fmt.Errorf("-cache-mb %d must be non-negative", *cacheMB)
	}
	if *featMB < 0 {
		return fmt.Errorf("-feature-cache-mb %d must be non-negative", *featMB)
	}
	if *featureDim < 0 {
		return fmt.Errorf("-feature-dim %d must be non-negative", *featureDim)
	}
	if *featureDim > 0 && *data != "" {
		return fmt.Errorf("-feature-dim only applies to the temporary graph; %s already fixes its features", *data)
	}
	if *classes < 0 {
		return fmt.Errorf("-classes %d must be non-negative", *classes)
	}
	if *classes > 0 && *data != "" {
		return fmt.Errorf("-classes only applies to the temporary graph; %s already fixes its labels", *data)
	}
	training := *trainMode || *benchTrain != ""
	if training && *data == "" {
		// Training needs features and labels; default the temporary graph
		// to a trainable shape instead of failing on an edge-only one.
		if *featureDim == 0 {
			*featureDim = 16
		}
		if *classes == 0 {
			*classes = 8
		}
	}
	be, err := pickBackend(*backend)
	if err != nil {
		return err
	}

	dir := *data
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ringsampler-epoch-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "g")
		switch {
		case *featureDim > 0 && *classes > 0:
			fmt.Fprintf(out, "generating temporary R-MAT graph (%d nodes, %d edges, %d-dim features, %d classes) ...\n",
				*nodes, *edges, *featureDim, *classes)
		case *featureDim > 0:
			fmt.Fprintf(out, "generating temporary R-MAT graph (%d nodes, %d edges, %d-dim features) ...\n", *nodes, *edges, *featureDim)
		default:
			fmt.Fprintf(out, "generating temporary R-MAT graph (%d nodes, %d edges) ...\n", *nodes, *edges)
		}
		if _, err := genTemp(dir, *nodes, *edges, *seed, *featureDim, *classes); err != nil {
			return err
		}
	}
	ds, err := storage.OpenWith(dir, storage.OpenOptions{Direct: *odirect})
	if err != nil {
		return err
	}
	defer ds.Close()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Strategy = *strategy
	cfg.CacheBudgetBytes = *cacheMB << 20
	cfg.FixedBuffers = *uringFixed
	cfg.RegisteredFiles = *uringReg
	cfg.SQPoll = *uringSQP
	cfg.Depth = *depth
	cfg.FetchFeatures = *features
	cfg.FeatureCacheBudgetBytes = *featMB << 20
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	fmt.Fprintf(out, "dataset %s: %d nodes, %d edges; backend %s\n", dir, ds.NumNodes(), ds.NumEdges(), be)
	if ds.HasFeatures() {
		fmt.Fprintf(out, "features: %d-dim f32, %d B/node stride\n", ds.FeatureDim(), ds.FeatureStride())
	}
	if ds.HasLabels() {
		fmt.Fprintf(out, "labels: %d classes\n", ds.NumClasses())
	}
	if *odirect && ds.DirectAlign() > 0 {
		fmt.Fprintf(out, "O_DIRECT active: %d-byte alignment\n", ds.DirectAlign())
	}

	if training {
		// Training touches every target's label, but a shard dataset only
		// serves a node range — its neighbor lists point outside the shard
		// and gradient batches would silently mix shards. Labels are always
		// full-graph (see DESIGN.md §13), so the only thing to reject is
		// the partial adjacency.
		if ds.IsSharded() {
			return fmt.Errorf("training needs an unsharded dataset: %s is shard %d/%d (train against the unpartitioned source instead)",
				dir, ds.ShardIndex(), ds.NumShards())
		}
		if !ds.HasFeatures() {
			return fmt.Errorf("training needs node features: %s has no feature file (regenerate with a feature dim)", dir)
		}
		if !ds.HasLabels() {
			return fmt.Errorf("training needs node labels: %s has no label file (regenerate with a class count)", dir)
		}
		cfg.FetchFeatures = true
	}
	if *benchTrain != "" {
		return writeBenchTrain(out, *benchTrain, dir, ds, cfg, be, *targets, trainSweepOpts{
			epochs: *trainEpochs, hidden: *trainHidden, layers: *trainLayers,
			lr: float32(*trainLR), quick: *benchTrainQ,
		})
	}
	if *trainMode {
		return runTrain(ctx, out, ds, cfg, be, *targets, trainSweepOpts{
			epochs: *trainEpochs, hidden: *trainHidden, layers: *trainLayers,
			lr: float32(*trainLR),
		}, *trainSerial)
	}

	if *benchUring != "" {
		return writeBenchUring(out, *benchUring, dir, cfg, be, *targets, *benchQuick)
	}
	if *benchFeat != "" {
		return writeBenchFeatures(out, *benchFeat, dir, ds, cfg, be, *targets, *benchFeatQ)
	}
	if *benchStrat != "" {
		return writeBenchStrategy(out, *benchStrat, dir, ds, cfg, be, *targets, *benchStratQ)
	}

	rng := sample.NewRNG(sample.Mix(*seed, 0xe90c))
	epochTargets := exp.UniformTargets(&rng, ds.NumNodes(), *targets)

	ref, err := runOnce(ctx, out, ds, cfg, be, epochTargets)
	if err != nil {
		return err
	}
	if *invariance {
		for _, th := range []int{1, 2} {
			if th == cfg.Threads {
				continue
			}
			c := cfg
			c.Threads = th
			st, err := runOnce(ctx, out, ds, c, be, epochTargets)
			if err != nil {
				return err
			}
			for i := range ref.Digests {
				if ref.Digests[i] != st.Digests[i] {
					return fmt.Errorf("thread-count invariance VIOLATED: batch %d digest differs between %d and %d threads",
						i, cfg.Threads, th)
				}
			}
			fmt.Fprintf(out, "invariance: %d vs %d threads — all %d per-batch digests identical\n",
				cfg.Threads, th, len(ref.Digests))
		}
	}
	if *benchJSON != "" {
		return writeBenchJSON(ctx, out, *benchJSON, dir, ds, cfg, be, epochTargets)
	}
	return nil
}

func runOnce(ctx context.Context, out io.Writer, ds *storage.Dataset, cfg core.Config, be uring.Backend, targets []uint32) (*core.EpochStats, error) {
	if testWrapRing != nil {
		cfg.WrapRing = testWrapRing(cfg.Threads)
	}
	s, err := core.New(ds, cfg, be)
	if err != nil {
		return nil, err
	}
	st, err := s.RunEpochCtx(ctx, targets, nil)
	if err != nil && (st == nil || !errors.Is(err, context.Canceled)) {
		return nil, err
	}
	interrupted := err != nil
	var digest uint64
	for _, d := range st.Digests {
		digest = digest*0x100000001b3 ^ d
	}
	fmt.Fprintf(out, "\nthreads %d: %d targets in %d batches, %.4fs\n", cfg.Threads, st.Targets, st.Batches, st.Seconds)
	fmt.Fprintf(out, "  sampled   %d entries (%.0f entries/s, %.2f MB/s)\n", st.Sampled, st.EntriesPerSec, st.BytesPerSec/(1<<20))
	if cfg.CacheBudgetBytes > 0 {
		cn, cb := s.CacheInfo()
		fmt.Fprintf(out, "  cache     pinned %d nodes / %d B under a %d B budget; %d hits / %d misses, %d B served\n",
			cn, cb, cfg.CacheBudgetBytes, st.IO.CacheHits, st.IO.CacheMisses, st.IO.CacheBytes)
	}
	if cfg.FetchFeatures {
		fmt.Fprintf(out, "  features  %d ring reads, %d B from the device\n", st.IO.FeatReads, st.IO.FeatBytesRead)
		if cfg.FeatureCacheBudgetBytes > 0 {
			fn, fb := s.FeatureCacheInfo()
			fmt.Fprintf(out, "  featcache pinned %d nodes / %d B under a %d B budget; %d hits / %d misses, %d B served\n",
				fn, fb, cfg.FeatureCacheBudgetBytes, st.IO.FeatCacheHits, st.IO.FeatCacheMisses, st.IO.FeatCacheBytes)
		}
	}
	fmt.Fprintf(out, "  io        %+v\n", st.IO)
	for wid, ws := range st.PerWorker {
		fmt.Fprintf(out, "  worker %2d %+v\n", wid, ws)
	}
	fmt.Fprintf(out, "  latency   p50 ≤ %v  p90 ≤ %v  p99 ≤ %v\n",
		st.Latency.Quantile(0.50), st.Latency.Quantile(0.90), st.Latency.Quantile(0.99))
	fmt.Fprintf(out, "  buckets   %v\n", st.Latency.String())
	if interrupted {
		// Partial epochs have holes in the digest stream — flush the
		// drained counters above but don't print a misleading digest.
		fmt.Fprintf(out, "  INTERRUPTED after %d/%d batches (partial stats above)\n", st.Completed, st.Batches)
		return st, fmt.Errorf("epoch interrupted: %w", err)
	}
	fmt.Fprintf(out, "  digest    %#016x\n", digest)
	return st, nil
}

// benchPoint is one cache budget of the -bench-json summary.
type benchPoint struct {
	CacheMB       int64   `json:"cache_mb"`
	CacheNodes    int     `json:"cache_nodes"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	DeviceBytes   int64   `json:"device_bytes"`
	Sampled       int64   `json:"sampled_entries"`
}

type benchFile struct {
	Dataset   string       `json:"dataset"`
	Backend   string       `json:"backend"`
	Threads   int          `json:"threads"`
	BatchSize int          `json:"batch_size"`
	Targets   int          `json:"targets"`
	Points    []benchPoint `json:"points"`
}

// writeBenchJSON reruns the workload at cache budgets 0 and 64 MiB and
// writes the throughput/hit-rate summary the bench harness diffs across
// commits (benchdata/BENCH_epoch.json in CI).
func writeBenchJSON(ctx context.Context, out io.Writer, path, dir string, ds *storage.Dataset, cfg core.Config, be uring.Backend, targets []uint32) error {
	bf := benchFile{
		Dataset:   dir,
		Backend:   string(be),
		Threads:   cfg.Threads,
		BatchSize: cfg.BatchSize,
		Targets:   len(targets),
	}
	for _, mb := range []int64{0, 64} {
		c := cfg
		c.CacheBudgetBytes = mb << 20
		if testWrapRing != nil {
			c.WrapRing = testWrapRing(c.Threads)
		}
		s, err := core.New(ds, c, be)
		if err != nil {
			return err
		}
		st, err := s.RunEpochCtx(ctx, targets, nil)
		if err != nil {
			return err
		}
		p := benchPoint{
			CacheMB:       mb,
			EntriesPerSec: st.EntriesPerSec,
			BytesPerSec:   st.BytesPerSec,
			DeviceBytes:   st.IO.BytesRead,
			Sampled:       st.Sampled,
		}
		p.CacheNodes, _ = s.CacheInfo()
		if lookups := st.IO.CacheHits + st.IO.CacheMisses; lookups > 0 {
			p.CacheHitRate = float64(st.IO.CacheHits) / float64(lookups)
		}
		bf.Points = append(bf.Points, p)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench summary written to %s\n", path)
	return nil
}

// writeBenchUring runs the knob-ablation sweep (exp.UringSweep) on the
// dataset and writes the per-combination JSON summary
// (benchdata/BENCH_uring.json in CI): entries/s, syscalls-per-batch,
// and device bytes per knob combination, with digest identity enforced
// by the sweep itself.
func writeBenchUring(out io.Writer, path, dir string, cfg core.Config, be uring.Backend, targets int, quick bool) error {
	combos := exp.DefaultUringCombos(quick)
	reps := 3
	if quick {
		reps = 1
	}
	points, err := exp.UringSweep(dir, exp.Options{
		Targets:   targets,
		BatchSize: cfg.BatchSize,
		Threads:   cfg.Threads,
	}, be, combos, reps, cfg.Seed)
	if err != nil {
		return err
	}
	// The micro section isolates the ring I/O path from the (CPU-bound)
	// sampling work: raw 4 KiB reads at each submission depth and knob
	// combination, where deep batching and fixed buffers are visible
	// instead of diluted.
	micro, err := exp.UringMicro(dir, be, exp.DefaultUringMicroCombos(quick), 4096, 16384, reps, cfg.Seed)
	if err != nil {
		return err
	}
	type sweepFile struct {
		Dataset string                `json:"dataset"`
		Backend string                `json:"backend"`
		Caps    string                `json:"caps"`
		Threads int                   `json:"threads"`
		Targets int                   `json:"targets"`
		Points  []exp.UringPoint      `json:"points"`
		Micro   []exp.UringMicroPoint `json:"micro"`
	}
	sf := sweepFile{
		Dataset: dir,
		Backend: string(be),
		Caps:    uring.Probe().String(),
		Threads: cfg.Threads,
		Targets: targets,
	}
	sf.Points = points
	sf.Micro = micro
	for _, p := range points {
		fmt.Fprintf(out, "%-40s %12.0f entries/s  %8.1f syscalls/batch  %9d device B  (active %s)\n",
			p.Combo, p.EntriesPerSec, p.SyscallsPerBatch, p.DeviceBytes, p.Active)
	}
	for _, m := range micro {
		fmt.Fprintf(out, "micro %-34s %12.0f reads/s  %10.1f MB/s  %8.2f syscalls/read  (active %s)\n",
			m.Name, m.ReadsPerSec, m.MBPerSec, m.SyscallsPerRead, m.Active)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "uring knob sweep written to %s\n", path)
	return nil
}

// writeBenchFeatures runs the feature-store ablation (exp.FeatureSweep)
// and writes the per-budget JSON summary (benchdata/BENCH_features.json
// in CI): entries/s, feature hit rate, and device feature bytes at each
// feature-cache budget, with byte-identical payloads enforced by the
// sweep itself. The final budget is large enough to pin every node, so
// a healthy run ends at zero device feature bytes.
func writeBenchFeatures(out io.Writer, path, dir string, ds *storage.Dataset, cfg core.Config, be uring.Backend, targets int, quick bool) error {
	budgets := []int64{0, 1 << 20, 4 << 20, 1 << 30}
	if quick {
		budgets = []int64{0, 1 << 30}
	}
	points, err := exp.FeatureSweep(ds, exp.Options{
		Targets:   targets,
		BatchSize: cfg.BatchSize,
		Threads:   cfg.Threads,
	}, be, budgets, cfg.Seed)
	if err != nil {
		return err
	}
	type featPoint struct {
		BudgetMB        int64   `json:"budget_mb"`
		CacheNodes      int     `json:"cache_nodes"`
		CacheBytes      int64   `json:"cache_bytes"`
		FeatHitRate     float64 `json:"feat_hit_rate"`
		EntriesPerSec   float64 `json:"entries_per_sec"`
		DeviceFeatBytes int64   `json:"device_feat_bytes"`
		FeatReads       int64   `json:"feat_reads"`
		Digest          string  `json:"digest"`
	}
	type featFile struct {
		Dataset    string      `json:"dataset"`
		Backend    string      `json:"backend"`
		Threads    int         `json:"threads"`
		Targets    int         `json:"targets"`
		FeatureDim int         `json:"feature_dim"`
		Points     []featPoint `json:"points"`
	}
	ff := featFile{
		Dataset:    dir,
		Backend:    string(be),
		Threads:    cfg.Threads,
		Targets:    targets,
		FeatureDim: ds.FeatureDim(),
	}
	for _, p := range points {
		fp := featPoint{
			BudgetMB:        p.BudgetBytes >> 20,
			CacheNodes:      p.CacheNodes,
			CacheBytes:      p.CacheBytes,
			FeatHitRate:     p.HitRate,
			EntriesPerSec:   p.Stats.EntriesPerSec,
			DeviceFeatBytes: p.Stats.IO.FeatBytesRead,
			FeatReads:       p.Stats.IO.FeatReads,
			Digest:          fmt.Sprintf("%#016x", p.Digest),
		}
		ff.Points = append(ff.Points, fp)
		fmt.Fprintf(out, "feature cache %6d MB: %5d nodes pinned, hit rate %.3f, %9d device feature B, %12.0f entries/s\n",
			fp.BudgetMB, fp.CacheNodes, fp.FeatHitRate, fp.DeviceFeatBytes, fp.EntriesPerSec)
	}
	if last := ff.Points[len(ff.Points)-1]; last.DeviceFeatBytes != 0 {
		return fmt.Errorf("feature sweep's largest budget (%d MB) still read %d feature bytes from the device — cache admission is broken",
			last.BudgetMB, last.DeviceFeatBytes)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "feature ablation written to %s\n", path)
	return nil
}

// writeBenchStrategy runs the sampling-strategy sweep (exp.StrategySweep)
// and writes the per-strategy JSON summary (benchdata/BENCH_strategy.json
// in CI): entries/s, device bytes, and the folded digest of each
// strategy's epoch, with 1-thread vs multi-thread digest identity
// enforced per strategy by the sweep itself.
func writeBenchStrategy(out io.Writer, path, dir string, ds *storage.Dataset, cfg core.Config, be uring.Backend, targets int, quick bool) error {
	strategies := core.StrategyNames()
	if quick {
		strategies = []string{core.StrategyUniform, core.StrategyWalk}
	}
	points, err := exp.StrategySweep(ds, exp.Options{
		Targets:   targets,
		BatchSize: cfg.BatchSize,
		Threads:   cfg.Threads,
	}, be, strategies, cfg.Seed)
	if err != nil {
		return err
	}
	type stratPoint struct {
		Strategy      string  `json:"strategy"`
		Threads       int     `json:"threads"`
		EntriesPerSec float64 `json:"entries_per_sec"`
		DeviceBytes   int64   `json:"device_bytes"`
		Sampled       int64   `json:"sampled_entries"`
		Digest        string  `json:"digest"`
	}
	type stratFile struct {
		Dataset string       `json:"dataset"`
		Backend string       `json:"backend"`
		Threads int          `json:"threads"`
		Targets int          `json:"targets"`
		Points  []stratPoint `json:"points"`
	}
	sf := stratFile{
		Dataset: dir,
		Backend: string(be),
		Threads: cfg.Threads,
		Targets: targets,
	}
	for _, p := range points {
		sp := stratPoint{
			Strategy:      p.Strategy,
			Threads:       p.Threads,
			EntriesPerSec: p.Stats.EntriesPerSec,
			DeviceBytes:   p.Stats.IO.BytesRead,
			Sampled:       p.Stats.Sampled,
			Digest:        fmt.Sprintf("%#016x", p.Digest),
		}
		sf.Points = append(sf.Points, sp)
		fmt.Fprintf(out, "strategy %-9s %12.0f entries/s  %9d device B  %10d sampled  digest %s\n",
			sp.Strategy, sp.EntriesPerSec, sp.DeviceBytes, sp.Sampled, sp.Digest)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "strategy sweep written to %s\n", path)
	return nil
}

// trainSweepOpts bundles the -train-* model/optimizer flags.
type trainSweepOpts struct {
	epochs, hidden, layers int
	lr                     float32
	quick                  bool
}

// runTrain trains a GraphSAGE classifier for -train-epochs epochs and
// prints the per-epoch loss/accuracy/throughput table. The overlapped
// mode (default) trains batch i while the epoch runner's workers sample
// and fetch batch i+1; -train-serial is the no-overlap reference — both
// produce bit-identical weights (DESIGN.md §13).
func runTrain(ctx context.Context, out io.Writer, ds *storage.Dataset, cfg core.Config, be uring.Backend, numTargets int, o trainSweepOpts, serialized bool) error {
	labels, err := ds.Labels()
	if err != nil {
		return err
	}
	s, err := core.New(ds, cfg, be)
	if err != nil {
		return err
	}
	m, err := train.NewModel(train.Config{
		FeatureDim: ds.FeatureDim(),
		Hidden:     o.hidden,
		Classes:    ds.NumClasses(),
		Layers:     o.layers,
		LR:         o.lr,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return err
	}
	rng := sample.NewRNG(sample.Mix(cfg.Seed, 0x7ea14))
	targets := exp.UniformTargets(&rng, ds.NumNodes(), numTargets)
	mode := "overlapped"
	if serialized {
		mode = "serialized"
	}
	fmt.Fprintf(out, "training %d-layer GraphSAGE (hidden %d, lr %g) on %d targets, %s pipeline\n",
		o.layers, o.hidden, o.lr, len(targets), mode)
	tr := &train.Trainer{Model: m, Labels: labels}
	stats, err := tr.Run(ctx, s, targets, o.epochs, serialized)
	for _, st := range stats {
		fmt.Fprintf(out, "epoch %2d: loss %.4f  acc %.3f  %8.4fs (compute %.4fs, stall %.4fs, overlap %.2f)  %12.0f entries/s  weights %s\n",
			st.Epoch, st.Loss, st.Accuracy, st.Seconds, st.ComputeSeconds, st.StallSeconds,
			st.OverlapEfficiency, st.EntriesPerSec, st.WeightsDigest)
	}
	return err
}

// writeBenchTrain runs the training pipeline sweep (exp.TrainSweep) and
// writes the per-configuration JSON summary (benchdata/BENCH_train.json
// in CI): epochs-to-accuracy and end-to-end throughput for {overlapped,
// serialized} × {feature cache off, full}, with bit-identical weights
// enforced across all four points by the sweep itself. In full mode the
// sweep also asserts the overlapped pipeline's throughput strictly
// beats the serialized reference.
func writeBenchTrain(out io.Writer, path, dir string, ds *storage.Dataset, cfg core.Config, be uring.Backend, targets int, o trainSweepOpts) error {
	points, err := exp.TrainSweep(ds, exp.TrainOptions{
		Options: exp.Options{
			Targets:   targets,
			BatchSize: cfg.BatchSize,
			Threads:   cfg.Threads,
		},
		Epochs: o.epochs,
		Hidden: o.hidden,
		Layers: o.layers,
		LR:     o.lr,
		Quick:  o.quick,
	}, be, cfg.Seed)
	if err != nil {
		return err
	}
	type trainFile struct {
		Dataset    string           `json:"dataset"`
		Backend    string           `json:"backend"`
		Threads    int              `json:"threads"`
		Targets    int              `json:"targets"`
		Epochs     int              `json:"epochs"`
		FeatureDim int              `json:"feature_dim"`
		Classes    int              `json:"classes"`
		Hidden     int              `json:"hidden"`
		Layers     int              `json:"layers"`
		LR         float32          `json:"lr"`
		Points     []exp.TrainPoint `json:"points"`
	}
	tf := trainFile{
		Dataset:    dir,
		Backend:    string(be),
		Threads:    cfg.Threads,
		Targets:    targets,
		Epochs:     o.epochs,
		FeatureDim: ds.FeatureDim(),
		Classes:    ds.NumClasses(),
		Hidden:     o.hidden,
		Layers:     o.layers,
		LR:         o.lr,
		Points:     points,
	}
	for _, p := range points {
		mode := "overlapped"
		if p.Serialized {
			mode = "serialized"
		}
		cache := "cache off"
		if p.FeatCache {
			cache = "cache full"
		}
		fmt.Fprintf(out, "train %-10s %-10s loss %.4f  acc %.3f  %12.0f entries/s  weights %s\n",
			mode, cache, p.FinalLoss, p.FinalAccuracy, p.EntriesPerSec, p.FinalDigest)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "training sweep written to %s\n", path)
	return nil
}

func pickBackend(name string) (uring.Backend, error) {
	switch name {
	case "auto":
		if uring.Probe().Ring {
			return uring.BackendIOURing, nil
		}
		return uring.BackendPool, nil
	case "io_uring":
		return uring.BackendIOURing, nil
	case "pool":
		return uring.BackendPool, nil
	case "sim":
		return uring.BackendSim, nil
	default:
		return "", fmt.Errorf("unknown backend %q", name)
	}
}
