// Command epoch drives the real-engine parallel epoch runner: it
// shards a uniform target workload into mini-batches, fans them out to
// -threads OS-thread-pinned workers, and prints the aggregated
// EpochStats — throughput, merged and per-worker I/O counters, and the
// batch-latency histogram — plus the folded sample digest.
//
// With -invariance it reruns the identical workload at 1 and 2 threads
// and diffs the per-batch digest streams against the -threads run,
// demonstrating the thread-count-invariance guarantee on real I/O.
//
// Usage:
//
//	go run ./cmd/epoch -data benchdata/bench/ogbn-papers-div20000 -threads 8 -targets 4096
//	go run ./cmd/epoch -targets 8192 -invariance   # generates a temporary R-MAT graph
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ringsampler/internal/core"
	"ringsampler/internal/gen"
	"ringsampler/internal/graph"
	"ringsampler/internal/sample"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

func genTemp(dir string, nodes, edges int64, seed uint64) (graph.Manifest, error) {
	return gen.Generate(dir, "epoch-tmp", "rmat", nodes, edges, seed)
}

func main() {
	var (
		data       = flag.String("data", "", "dataset directory (empty: generate a temporary R-MAT graph)")
		nodes      = flag.Int64("nodes", 50_000, "node count for the temporary graph (with empty -data)")
		edges      = flag.Int64("edges", 800_000, "edge count for the temporary graph (with empty -data)")
		threads    = flag.Int("threads", 0, "worker count (0: config default)")
		batch      = flag.Int("batch", 0, "mini-batch size (0: config default)")
		targets    = flag.Int("targets", 4096, "epoch target-node count")
		seed       = flag.Uint64("seed", 1, "sampling seed")
		backend    = flag.String("backend", "auto", "ring backend: auto, io_uring, pool, sim")
		invariance = flag.Bool("invariance", false, "rerun at 1 and 2 threads and diff per-batch digests")
	)
	flag.Parse()

	dir := *data
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ringsampler-epoch-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "g")
		fmt.Printf("generating temporary R-MAT graph (%d nodes, %d edges) ...\n", *nodes, *edges)
		if _, err := genTemp(dir, *nodes, *edges, *seed); err != nil {
			log.Fatal(err)
		}
	}
	ds, err := storage.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	be, err := pickBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	fmt.Printf("dataset %s: %d nodes, %d edges; backend %s\n", dir, ds.NumNodes(), ds.NumEdges(), be)

	rng := sample.NewRNG(sample.Mix(*seed, 0xe90c))
	epochTargets := make([]uint32, *targets)
	for i := range epochTargets {
		epochTargets[i] = rng.Uint32n(uint32(ds.NumNodes()))
	}

	ref := runOnce(ds, cfg, be, epochTargets)
	if !*invariance {
		return
	}
	for _, th := range []int{1, 2} {
		if th == cfg.Threads {
			continue
		}
		c := cfg
		c.Threads = th
		st := runOnce(ds, c, be, epochTargets)
		for i := range ref.Digests {
			if ref.Digests[i] != st.Digests[i] {
				log.Fatalf("thread-count invariance VIOLATED: batch %d digest differs between %d and %d threads",
					i, cfg.Threads, th)
			}
		}
		fmt.Printf("invariance: %d vs %d threads — all %d per-batch digests identical\n",
			cfg.Threads, th, len(ref.Digests))
	}
}

func runOnce(ds *storage.Dataset, cfg core.Config, be uring.Backend, targets []uint32) *core.EpochStats {
	s, err := core.New(ds, cfg, be)
	if err != nil {
		log.Fatal(err)
	}
	st, err := s.RunEpoch(targets, nil)
	if err != nil {
		log.Fatal(err)
	}
	var digest uint64
	for _, d := range st.Digests {
		digest = digest*0x100000001b3 ^ d
	}
	fmt.Printf("\nthreads %d: %d targets in %d batches, %.4fs\n", cfg.Threads, st.Targets, st.Batches, st.Seconds)
	fmt.Printf("  sampled   %d entries (%.0f entries/s, %.2f MB/s)\n", st.Sampled, st.EntriesPerSec, st.BytesPerSec/(1<<20))
	fmt.Printf("  io        %+v\n", st.IO)
	for wid, ws := range st.PerWorker {
		fmt.Printf("  worker %2d %+v\n", wid, ws)
	}
	fmt.Printf("  latency   p50 ≤ %v  p90 ≤ %v  p99 ≤ %v\n",
		st.Latency.Quantile(0.50), st.Latency.Quantile(0.90), st.Latency.Quantile(0.99))
	fmt.Printf("  buckets   %v\n", st.Latency.String())
	fmt.Printf("  digest    %#016x\n", digest)
	return st
}

func pickBackend(name string) (uring.Backend, error) {
	switch name {
	case "auto":
		if uring.Probe() {
			return uring.BackendIOURing, nil
		}
		return uring.BackendPool, nil
	case "io_uring":
		return uring.BackendIOURing, nil
	case "pool":
		return uring.BackendPool, nil
	case "sim":
		return uring.BackendSim, nil
	default:
		return "", fmt.Errorf("unknown backend %q", name)
	}
}
