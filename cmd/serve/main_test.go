package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringsampler/internal/gen"
)

func testGraphDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.Generate(dir, "cli-test", "rmat", 2000, 30000, 11); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunBenchQuick drives the CLI's in-process load sweep end to end
// and checks the JSON it writes has the shape the bench harness diffs:
// every configured client count present, with successful traffic.
func TestRunBenchQuick(t *testing.T) {
	dir := testGraphDir(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var sb strings.Builder
	err := run([]string{
		"-data", dir,
		"-backend", "sim",
		"-threads", "2",
		"-batch", "64",
		"-bench-json", out,
		"-bench-quick",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Backend string `json:"backend"`
		Threads int    `json:"threads"`
		Points  []struct {
			Clients    int     `json:"clients"`
			Requests   int     `json:"requests"`
			OK         int     `json:"ok"`
			Throughput float64 `json:"throughput_rps"`
			P50        float64 `json:"p50_ms"`
			P99        float64 `json:"p99_ms"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	if bf.Backend != "sim" || bf.Threads != 2 {
		t.Fatalf("bench header = %q/%d, want sim/2", bf.Backend, bf.Threads)
	}
	if len(bf.Points) != 3 {
		t.Fatalf("bench has %d points, want 3", len(bf.Points))
	}
	for _, p := range bf.Points {
		if p.OK == 0 || p.Throughput <= 0 || p.P50 <= 0 || p.P99 < p.P50 {
			t.Fatalf("degenerate bench point: %+v", p)
		}
		if p.OK > p.Requests {
			t.Fatalf("point claims more successes than requests: %+v", p)
		}
	}
}

// TestRunBadFlags: invalid backend and negative cache budget fail fast.
func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "floppy"}, &sb); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-cache-mb", "-1"}, &sb); err == nil {
		t.Fatal("negative cache budget accepted")
	}
}

// TestRunReportsLabels: a labeled dataset's startup log includes the
// class count next to the feature line.
func TestRunReportsLabels(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	if _, err := gen.GenerateWith(dir, "cli-labeled", "rmat", 1500, 20000, 11,
		gen.Options{FeatureDim: 8, NumClasses: 4}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var sb strings.Builder
	err := run([]string{
		"-data", dir, "-backend", "sim", "-threads", "2", "-batch", "64",
		"-bench-json", out, "-bench-quick",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "labels: 4 classes") {
		t.Fatalf("startup log missing label line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "features: 8-dim f32") {
		t.Fatalf("startup log missing feature line:\n%s", sb.String())
	}
}
