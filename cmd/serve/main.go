// Command serve runs the online sampling service: an HTTP front end
// that coalesces concurrent sampling requests into the micro-batches
// the ring workers are built for, with admission control and a
// Prometheus metrics surface (see DESIGN.md §8).
//
//	POST /v1/sample  — {"targets":[...],"fanouts":[...],"seed":N,"features":bool,"strategy":"..."}
//	GET  /healthz    — liveness (503 while draining)
//	GET  /metrics    — Prometheus text format
//
// "strategy" picks the draw strategy per request — "uniform"
// (default), "weighted", or "walk" (DESIGN.md §11); unknown names are
// rejected 400 before any work is queued.
//
// With ?features=true (or "features":true in the body) each returned
// batch carries the sampled nodes' raw little-endian f32 vectors,
// fetched through the same ring pipeline as the adjacency reads. The
// dataset must have a feature file (-feature-dim on the temporary
// graph); -feature-cache-mb pins the hottest nodes' vectors in memory.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, new ones
// are refused, and the final I/O counters are flushed to stderr. A
// second signal (or -drain-timeout expiring) force-cancels what is
// left.
//
// With -bench-json the command skips serving and instead runs the
// closed-loop load sweep (exp.ServeLoad) against an in-process server,
// writing the machine-readable summary the bench harness tracks.
//
// Sharded serving (DESIGN.md §12): -shards N partitions the dataset by
// node range into N shards, runs every shard in-process, and serves
// the same /v1/sample API through the scatter/gather router — responses
// are byte-identical to a single-node run. -router url1,url2 instead
// fronts already-running shard servers (each a plain `serve -data
// <shard-dir>` whose dataset is one shard) over HTTP. -bench-shard-json
// runs the shard sweep (exp.ShardSweep): conformance at every shard
// count, then closed-loop throughput.
//
// Usage:
//
//	go run ./cmd/serve -data benchdata/bench/ogbn-papers-div20000 -addr :8080 -threads 8
//	go run ./cmd/serve -addr 127.0.0.1:8080        # temporary R-MAT graph
//	go run ./cmd/serve -bench-json benchdata/BENCH_serve.json
//	go run ./cmd/serve -shards 4                   # partitioned, router-fronted
//	go run ./cmd/serve -router http://s0:8080,http://s1:8080
//	go run ./cmd/serve -bench-shard-json benchdata/BENCH_shard.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ringsampler/internal/core"
	"ringsampler/internal/exp"
	"ringsampler/internal/gen"
	"ringsampler/internal/serve"
	"ringsampler/internal/shard"
	"ringsampler/internal/storage"
	"ringsampler/internal/uring"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		data         = fs.String("data", "", "dataset directory (empty: generate a temporary R-MAT graph)")
		nodes        = fs.Int64("nodes", 50_000, "node count for the temporary graph (with empty -data)")
		edges        = fs.Int64("edges", 800_000, "edge count for the temporary graph (with empty -data)")
		threads      = fs.Int("threads", 0, "worker-pool size (0: config default)")
		batch        = fs.Int("batch", 0, "engine mini-batch size / chunking granularity (0: config default)")
		cacheMB      = fs.Int64("cache-mb", 0, "hot-neighbor cache budget in MiB (0: cache off)")
		featMB       = fs.Int64("feature-cache-mb", 0, "hot-node feature cache budget in MiB (0: cache off)")
		featureDim   = fs.Int("feature-dim", 0, "per-node f32 feature dimension for the temporary graph (with empty -data; 0: no features)")
		queue        = fs.Int("queue", 0, "admission queue bound in jobs; full queue fast-fails 429 (0: default 256)")
		batchWindow  = fs.Duration("batch-window", 0, "max wait for more jobs before flushing a partial micro-batch (0: default 2ms)")
		maxBatch     = fs.Int("max-batch", 0, "flush a micro-batch at this many targets (0: engine batch size)")
		seed         = fs.Uint64("seed", 1, "seed for the temporary graph")
		backend      = fs.String("backend", "auto", "ring backend: auto, io_uring, pool, sim")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max graceful-drain wait on SIGINT/SIGTERM")
		benchJSON    = fs.String("bench-json", "", "run the closed-loop load sweep instead of serving; write the JSON summary to this file")
		benchShard   = fs.String("bench-shard-json", "", "run the shard conformance+throughput sweep instead of serving; write the JSON summary to this file")
		benchQuick   = fs.Bool("bench-quick", false, "shrink the load sweep to a smoke-test size")
		shards       = fs.Int("shards", 0, "partition the dataset into this many node-range shards and serve through the scatter/gather router (0: single-node)")
		routerURLs   = fs.String("router", "", "comma-separated shard server base URLs to front as a router (no local dataset)")
		uringFixed   = fs.Bool("uring-fixed", false, "register worker arenas and read via IORING_OP_READ_FIXED (emulated on pool/sim)")
		uringReg     = fs.Bool("uring-regfiles", false, "register the edge file and submit with IOSQE_FIXED_FILE (real backend only)")
		uringSQP     = fs.Bool("uring-sqpoll", false, "create SQPOLL rings: kernel-thread submission (real backend only)")
		odirect      = fs.Bool("odirect", false, "open the edge file O_DIRECT (falls back to buffered with a logged reason when unsupported)")
		depth        = fs.Int("depth", 0, "cap in-flight reads per worker (0: bounded only by the ring)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheMB < 0 {
		return fmt.Errorf("-cache-mb %d must be non-negative", *cacheMB)
	}
	if *featMB < 0 {
		return fmt.Errorf("-feature-cache-mb %d must be non-negative", *featMB)
	}
	if *featureDim < 0 {
		return fmt.Errorf("-feature-dim %d must be non-negative", *featureDim)
	}
	if *featureDim > 0 && *data != "" {
		return fmt.Errorf("-feature-dim only applies to the temporary graph; %s already fixes its features", *data)
	}
	be, err := pickBackend(*backend)
	if err != nil {
		return err
	}
	if *routerURLs != "" && (*shards != 0 || *data != "" || *benchJSON != "" || *benchShard != "") {
		return fmt.Errorf("-router fronts remote shard servers and combines with none of -shards/-data/-bench-json/-bench-shard-json")
	}
	if *shards < 0 || *shards == 1 {
		return fmt.Errorf("-shards %d: need 0 (single-node) or ≥ 2", *shards)
	}

	if *routerURLs != "" {
		// Pure router mode: resolve each shard's identity over HTTP and
		// serve the scatter/gather front end — no local graph bytes.
		cfg := serve.DefaultConfig()
		cfg.Backend = be
		if *threads > 0 {
			cfg.Core.Threads = *threads
		}
		if *batch > 0 {
			cfg.Core.BatchSize = *batch
		}
		var engines []shard.Engine
		for _, u := range strings.Split(*routerURLs, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			eng, err := shard.NewRemote(context.Background(), u, nil)
			if err != nil {
				return err
			}
			engines = append(engines, eng)
			info := eng.Info()
			fmt.Fprintf(out, "shard %d/%d at %s: nodes [%d,%d)\n", info.Index, info.Total, u, info.Lo, info.Hi)
		}
		srv, err := serve.NewRouter(engines, cfg)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		rt := srv.Router()
		fmt.Fprintf(out, "routing %d shards: %d nodes, %d edges\n", rt.Shards(), rt.NumNodes(), rt.NumEdges())
		fmt.Fprintf(out, "serving on http://%s\n", ln.Addr())
		return serveLoop(out, srv, ln, *drainTimeout)
	}

	dir := *data
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ringsampler-serve-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "g")
		if *featureDim > 0 {
			fmt.Fprintf(out, "generating temporary R-MAT graph (%d nodes, %d edges, %d-dim features) ...\n", *nodes, *edges, *featureDim)
		} else {
			fmt.Fprintf(out, "generating temporary R-MAT graph (%d nodes, %d edges) ...\n", *nodes, *edges)
		}
		if _, err := gen.GenerateWith(dir, "serve-tmp", "rmat", *nodes, *edges, *seed, gen.Options{FeatureDim: *featureDim}); err != nil {
			return err
		}
	}
	ds, err := storage.OpenWith(dir, storage.OpenOptions{Direct: *odirect})
	if err != nil {
		return err
	}
	defer ds.Close()

	cfg := serve.DefaultConfig()
	cfg.Backend = be
	cfg.Core.CacheBudgetBytes = *cacheMB << 20
	cfg.Core.FeatureCacheBudgetBytes = *featMB << 20
	cfg.Core.FixedBuffers = *uringFixed
	cfg.Core.RegisteredFiles = *uringReg
	cfg.Core.SQPoll = *uringSQP
	cfg.Core.Depth = *depth
	if *threads > 0 {
		cfg.Core.Threads = *threads
	}
	if *batch > 0 {
		cfg.Core.BatchSize = *batch
	}
	if *queue > 0 {
		cfg.QueueDepth = *queue
	}
	if *batchWindow > 0 {
		cfg.BatchWindow = *batchWindow
	}
	if *maxBatch > 0 {
		cfg.MaxBatchTargets = *maxBatch
	}

	if *benchShard != "" {
		ds.Close()
		return runShardBench(out, dir, cfg, *benchShard, *benchQuick)
	}
	if *benchJSON != "" {
		// The load sweep skips the listener, so report the dataset shape
		// (the feature/label lines the serving path prints) here.
		fmt.Fprintf(out, "dataset %s: %d nodes, %d edges; backend %s\n", dir, ds.NumNodes(), ds.NumEdges(), cfg.Backend)
		if ds.HasFeatures() {
			fmt.Fprintf(out, "features: %d-dim f32 per node; request them with POST /v1/sample?features=true\n", ds.FeatureDim())
		}
		if ds.HasLabels() {
			fmt.Fprintf(out, "labels: %d classes per node (training datasets carry the full label file)\n", ds.NumClasses())
		}
		return runBench(out, ds, cfg, *benchJSON, *benchQuick)
	}

	if *shards >= 2 {
		// Sharded-local mode: partition by node range, run every shard
		// in-process, serve through the router. Responses stay
		// byte-identical to the single-node server over the same files.
		tmp, err := os.MkdirTemp("", "ringsampler-shards-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		fmt.Fprintf(out, "partitioning %s into %d shards ...\n", dir, *shards)
		dirs, err := gen.Partition(dir, tmp, *shards)
		if err != nil {
			return err
		}
		ds.Close() // the shards carry their own handles
		engines := make([]shard.Engine, len(dirs))
		for i, sdir := range dirs {
			sds, err := storage.OpenWith(sdir, storage.OpenOptions{Direct: *odirect})
			if err != nil {
				return err
			}
			defer sds.Close()
			scfg := cfg.Core
			if !sds.HasFeatures() {
				scfg.FeatureCacheBudgetBytes = 0
			}
			eng, err := shard.NewLocal(sds, scfg, cfg.Backend)
			if err != nil {
				return err
			}
			engines[i] = eng
			lo, hi := sds.ShardRange()
			fmt.Fprintf(out, "shard %d/%d: nodes [%d,%d)\n", i, len(dirs), lo, hi)
		}
		srv, err := serve.NewRouter(engines, cfg)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		rt := srv.Router()
		fmt.Fprintf(out, "routing %d shards: %d nodes, %d edges; backend %s\n", rt.Shards(), rt.NumNodes(), rt.NumEdges(), cfg.Backend)
		fmt.Fprintf(out, "serving on http://%s\n", ln.Addr())
		return serveLoop(out, srv, ln, *drainTimeout)
	}

	srv, err := serve.New(ds, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	eff := srv.Config()
	fmt.Fprintf(out, "dataset %s: %d nodes, %d edges; backend %s\n", dir, ds.NumNodes(), ds.NumEdges(), eff.Backend)
	if ds.HasFeatures() {
		fmt.Fprintf(out, "features: %d-dim f32 per node; request them with POST /v1/sample?features=true\n", ds.FeatureDim())
	}
	if ds.HasLabels() {
		fmt.Fprintf(out, "labels: %d classes per node (training datasets carry the full label file)\n", ds.NumClasses())
	}
	if ds.IsSharded() {
		lo, hi := ds.ShardRange()
		fmt.Fprintf(out, "dataset is shard %d/%d (nodes [%d,%d)): serving /v1/shard/* for a router\n",
			ds.ShardIndex(), ds.NumShards(), lo, hi)
	}
	fmt.Fprintf(out, "serving on http://%s (%d workers, queue %d, window %v)\n",
		ln.Addr(), eff.Core.Threads, eff.QueueDepth, eff.BatchWindow)
	return serveLoop(out, srv, ln, *drainTimeout)
}

// server is the surface the drain loop needs; serve.Server and
// serve.RouterServer both provide it.
type server interface {
	Serve(net.Listener) error
	Shutdown(context.Context) error
	IOStats() core.IOStats
}

// serveLoop serves until SIGINT/SIGTERM, then drains gracefully. The
// first signal stops admission and lets in-flight requests finish
// (bounded by drainTimeout); a second signal force-cancels.
func serveLoop(out io.Writer, srv server, ln net.Listener, drainTimeout time.Duration) error {
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-sigCtx.Done():
	}
	stop() // restore default handling: a second signal kills the drain
	fmt.Fprintf(out, "signal received, draining (timeout %v) ...\n", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutErr := srv.Shutdown(ctx)
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.IOStats()
	fmt.Fprintf(out, "drained; final io %+v\n", st)
	if shutErr != nil {
		return fmt.Errorf("drain incomplete, outstanding requests were canceled: %w", shutErr)
	}
	return nil
}

// runBench runs the closed-loop offered-load sweep in-process and
// writes benchdata/BENCH_serve.json-shaped output.
func runBench(out io.Writer, ds *storage.Dataset, cfg serve.Config, path string, quick bool) error {
	lc := exp.ServeLoadConfig{
		Serve:             cfg,
		Clients:           []int{1, 4, 16, 64},
		RequestsPerClient: 32,
		TargetsPerRequest: 256,
		Fanouts:           []int{10, 10, 5},
		Seed:              7,
	}
	if quick {
		lc.Clients = []int{1, 4, 16}
		lc.RequestsPerClient = 8
		lc.TargetsPerRequest = 64
		lc.Fanouts = []int{5, 5}
	}
	res, err := exp.ServeLoad(ds, lc)
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		fmt.Fprintf(out, "clients %3d: %6.1f req/s  p50 %7.2fms  p99 %7.2fms  rejected %.1f%%  (%d ok / %d total in %.2fs)\n",
			p.Clients, p.Throughput, p.P50MS, p.P99MS, 100*p.RejectionRate, p.OK, p.Requests, p.Seconds)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "load sweep written to %s\n", path)
	return nil
}

// runShardBench runs the shard conformance + throughput sweep over the
// dataset directory and writes benchdata/BENCH_shard.json-shaped
// output. Every shard count is digest-checked against the single-node
// baseline before it is timed; a divergence aborts the sweep.
func runShardBench(out io.Writer, dir string, cfg serve.Config, path string, quick bool) error {
	sc := exp.ShardSweepConfig{
		Serve:             cfg,
		Shards:            []int{1, 2, 4},
		Clients:           16,
		RequestsPerClient: 16,
		TargetsPerRequest: 256,
		Fanouts:           []int{10, 10, 5},
		Seed:              7,
	}
	if quick {
		sc.Shards = []int{1, 2}
		sc.Clients = 4
		sc.RequestsPerClient = 4
		sc.TargetsPerRequest = 64
		sc.Fanouts = []int{5, 5}
	}
	res, err := exp.ShardSweep(dir, sc)
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		fmt.Fprintf(out, "shards %d: conformance %d/%d ok; %6.1f req/s  p50 %7.2fms  p99 %7.2fms  (%d ok / %d total in %.2fs)\n",
			p.Shards, p.ConformanceRequests, p.ConformanceRequests, p.Throughput, p.P50MS, p.P99MS, p.OK, p.Requests, p.Seconds)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "shard sweep written to %s\n", path)
	return nil
}

func pickBackend(name string) (uring.Backend, error) {
	switch strings.ToLower(name) {
	case "auto":
		if uring.Probe().Ring {
			return uring.BackendIOURing, nil
		}
		return uring.BackendPool, nil
	case "io_uring":
		return uring.BackendIOURing, nil
	case "pool":
		return uring.BackendPool, nil
	case "sim":
		return uring.BackendSim, nil
	default:
		return "", fmt.Errorf("unknown backend %q", name)
	}
}
