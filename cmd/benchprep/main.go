// Command benchprep (re)builds the checked-in benchmark datasets under
// benchdata/bench and prints the ablation statistics the benchmarks
// assert. Generation is deterministic, so running it on a clean
// checkout reproduces the committed files byte for byte.
//
// With -shards N the prepared dataset is additionally partitioned by
// node range into N shard datasets under <dataset>-shards/N/ — the
// on-disk layout the sharded serving mode (cmd/serve -router,
// DESIGN.md §12) deploys one shard server per directory over.
//
// Usage:
//
//	go run ./cmd/benchprep [-root benchdata/bench] [-divisor 20000] [-regen]
//	go run ./cmd/benchprep -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/exp"
	"ringsampler/internal/gen"
	"ringsampler/internal/simrun"
	"ringsampler/internal/storage"
)

func main() {
	root := flag.String("root", "benchdata/bench", "dataset root directory")
	divisor := flag.Int("divisor", 20_000, "paper-scale divisor")
	regen := flag.Bool("regen", false, "force regeneration even if files verify")
	shards := flag.Int("shards", 0, "also partition the prepared dataset into this many node-range shard datasets (0: skip)")
	flag.Parse()
	if *shards < 0 || *shards == 1 {
		log.Fatalf("-shards %d: need 0 (skip) or ≥ 2", *shards)
	}

	p, err := exp.Prepare(*root, "ogbn-papers", *divisor, *regen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d edges, %d bytes\n",
		p.Dir, p.Manifest.NumNodes, p.Manifest.NumEdges, p.Manifest.BinBytes)

	if *shards >= 2 {
		dst := filepath.Join(p.Dir+"-shards", fmt.Sprint(*shards))
		dirs, err := gen.Partition(p.Dir, dst, *shards)
		if err != nil {
			log.Fatal(err)
		}
		for i, sdir := range dirs {
			sds, err := storage.Open(sdir)
			if err != nil {
				log.Fatal(err)
			}
			lo, hi := sds.ShardRange()
			fmt.Printf("shard %d/%d %s: nodes [%d,%d), %d edge entries\n",
				i, len(dirs), sdir, lo, hi, sds.Manifest().BinBytes/storage.EntryBytes)
			sds.Close()
		}
	}

	ds, err := p.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	base := core.SimConfig{
		Config:       core.DefaultConfig(),
		ScaleDivisor: *divisor,
		BudgetBytes:  simrun.GBytes(1),
		Targets:      512,
		WorkloadSeed: 1,
	}
	base.Config.BatchSize = 128
	base.Config.Threads = 8
	for _, mode := range []struct {
		name   string
		offset bool
		async  bool
	}{
		{"offset+async", true, true},
		{"offset+sync", true, false},
		{"full-fetch", false, true},
	} {
		sc := base
		sc.Config.OffsetSampling = mode.offset
		sc.Config.AsyncPipeline = mode.async
		r := core.RunSim(ds, device.NVMe(), sc)
		if r.Err != nil {
			log.Fatalf("%s: %v", mode.name, r.Err)
		}
		fmt.Printf("%-14s modeled %.6fs  devOps %8d  devMB %8.2f  sampled %d\n",
			mode.name, r.ModeledSeconds, r.DeviceOps,
			float64(r.DeviceBytes)/(1<<20), r.Sampled)
	}
}
