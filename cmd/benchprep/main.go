// Command benchprep (re)builds the checked-in benchmark datasets under
// benchdata/bench and prints the ablation statistics the benchmarks
// assert. Generation is deterministic, so running it on a clean
// checkout reproduces the committed files byte for byte.
//
// Usage:
//
//	go run ./cmd/benchprep [-root benchdata/bench] [-divisor 20000] [-regen]
package main

import (
	"flag"
	"fmt"
	"log"

	"ringsampler/internal/core"
	"ringsampler/internal/device"
	"ringsampler/internal/exp"
	"ringsampler/internal/simrun"
)

func main() {
	root := flag.String("root", "benchdata/bench", "dataset root directory")
	divisor := flag.Int("divisor", 20_000, "paper-scale divisor")
	regen := flag.Bool("regen", false, "force regeneration even if files verify")
	flag.Parse()

	p, err := exp.Prepare(*root, "ogbn-papers", *divisor, *regen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d edges, %d bytes\n",
		p.Dir, p.Manifest.NumNodes, p.Manifest.NumEdges, p.Manifest.BinBytes)

	ds, err := p.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	base := core.SimConfig{
		Config:       core.DefaultConfig(),
		ScaleDivisor: *divisor,
		BudgetBytes:  simrun.GBytes(1),
		Targets:      512,
		WorkloadSeed: 1,
	}
	base.Config.BatchSize = 128
	base.Config.Threads = 8
	for _, mode := range []struct {
		name   string
		offset bool
		async  bool
	}{
		{"offset+async", true, true},
		{"offset+sync", true, false},
		{"full-fetch", false, true},
	} {
		sc := base
		sc.Config.OffsetSampling = mode.offset
		sc.Config.AsyncPipeline = mode.async
		r := core.RunSim(ds, device.NVMe(), sc)
		if r.Err != nil {
			log.Fatalf("%s: %v", mode.name, r.Err)
		}
		fmt.Printf("%-14s modeled %.6fs  devOps %8d  devMB %8.2f  sampled %d\n",
			mode.name, r.ModeledSeconds, r.DeviceOps,
			float64(r.DeviceBytes)/(1<<20), r.Sampled)
	}
}
